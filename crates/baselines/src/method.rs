//! A unified dispatcher over all evaluated methods, for the benchmark
//! harness.

use flashoverlap::runtime::{CommPattern, Instrumentation};
use flashoverlap::{FlashOverlapError, OverlapPlan, SystemSpec};
use gpu_sim::gemm::GemmDims;
use gpu_sim::OpSpan;
use sim::SimDuration;

use crate::async_tp::{run_async_tp, run_async_tp_traced};
use crate::decomposition::{run_decomposition_tuned, run_decomposition_tuned_traced};
use crate::flux::run_flux;
use crate::nonoverlap::{run_nonoverlap, run_nonoverlap_traced};

/// The methods compared in Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Sequential GEMM then collective.
    NonOverlap,
    /// Row-chunked cuBLAS + NCCL pipeline.
    VanillaDecomposition,
    /// Ring-pipelined peer-copy decomposition (NVLink only).
    AsyncTp,
    /// Tile-fused kernel (NVLink only).
    Flux,
    /// The paper's system, with predictive-search tuning.
    FlashOverlap,
}

impl Method {
    /// All methods, in the plotting order of Fig. 9.
    pub const ALL: [Method; 5] = [
        Method::NonOverlap,
        Method::Flux,
        Method::AsyncTp,
        Method::VanillaDecomposition,
        Method::FlashOverlap,
    ];

    /// Whether this method can run on the given system / primitive at
    /// all (FLUX and Async-TP need peer-to-peer; neither does
    /// All-to-All).
    pub fn applicable(&self, pattern: &CommPattern, system: &SystemSpec) -> bool {
        match self {
            Method::NonOverlap | Method::VanillaDecomposition | Method::FlashOverlap => true,
            Method::AsyncTp | Method::Flux => {
                system.fabric.peer_to_peer
                    && !matches!(
                        pattern,
                        CommPattern::AllToAll { .. } | CommPattern::AllGather
                    )
            }
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Method::NonOverlap => "Non-overlap",
            Method::VanillaDecomposition => "VanillaDecomposition",
            Method::AsyncTp => "Async-TP",
            Method::Flux => "FLUX",
            Method::FlashOverlap => "FlashOverlap",
        };
        f.write_str(name)
    }
}

/// Measures one method's operator latency on one workload.
///
/// # Errors
///
/// Propagates infeasibility (e.g. a peer-to-peer method on PCIe) and
/// simulation failures.
pub fn measure(
    method: Method,
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
) -> Result<SimDuration, FlashOverlapError> {
    match method {
        Method::NonOverlap => run_nonoverlap(dims, pattern, system),
        Method::VanillaDecomposition => run_decomposition_tuned(dims, pattern, system),
        Method::AsyncTp => run_async_tp(dims, pattern, system),
        Method::Flux => run_flux(dims, pattern.primitive(), system),
        Method::FlashOverlap => {
            let plan = OverlapPlan::tuned(dims, pattern.clone(), system.clone())?;
            Ok(plan
                .execute_with(&flashoverlap::ExecOptions::new())?
                .report
                .latency)
        }
    }
}

/// One method's profiled run: latency plus, for simulation-backed
/// methods, the per-stream operation spans of the run.
#[derive(Debug, Clone)]
pub struct MethodProfile {
    /// Operator latency (same number [`measure`] returns).
    pub latency: SimDuration,
    /// Per-stream operation spans; `None` for methods modelled purely
    /// analytically (FLUX), which never run the simulator.
    pub spans: Option<Vec<OpSpan>>,
}

/// [`measure`] with observation hooks attached and per-stream operation
/// spans recorded.
///
/// FLUX is an analytic model — it yields latency only (no spans, and the
/// hooks never fire). Every other method runs the simulator with
/// `instr`'s monitor/probe installed.
///
/// # Errors
///
/// Same as [`measure`].
pub fn measure_traced(
    method: Method,
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
    instr: &Instrumentation,
) -> Result<MethodProfile, FlashOverlapError> {
    match method {
        Method::NonOverlap => {
            let (latency, spans) = run_nonoverlap_traced(dims, pattern, system, instr)?;
            Ok(MethodProfile {
                latency,
                spans: Some(spans),
            })
        }
        Method::VanillaDecomposition => {
            let (latency, spans) = run_decomposition_tuned_traced(dims, pattern, system, instr)?;
            Ok(MethodProfile {
                latency,
                spans: Some(spans),
            })
        }
        Method::AsyncTp => {
            let (latency, spans) = run_async_tp_traced(dims, pattern, system, instr)?;
            Ok(MethodProfile {
                latency,
                spans: Some(spans),
            })
        }
        Method::Flux => Ok(MethodProfile {
            latency: run_flux(dims, pattern.primitive(), system)?,
            spans: None,
        }),
        Method::FlashOverlap => {
            let plan = OverlapPlan::tuned(dims, pattern.clone(), system.clone())?;
            let out =
                plan.execute_with(&flashoverlap::ExecOptions::new().instrument(instr).trace())?;
            let (report, spans) = (out.report, out.spans);
            Ok(MethodProfile {
                latency: report.latency,
                spans: Some(spans),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability_matrix_matches_paper() {
        let pcie = SystemSpec::rtx4090(4);
        let nvlink = SystemSpec::a800(4);
        let ar = CommPattern::AllReduce;
        let a2a = CommPattern::AllToAll {
            routing: vec![vec![0; 4]; 4],
        };
        assert!(Method::FlashOverlap.applicable(&ar, &pcie));
        assert!(Method::VanillaDecomposition.applicable(&ar, &pcie));
        assert!(!Method::Flux.applicable(&ar, &pcie), "FLUX needs P2P");
        assert!(!Method::AsyncTp.applicable(&ar, &pcie));
        assert!(Method::Flux.applicable(&ar, &nvlink));
        assert!(!Method::Flux.applicable(&a2a, &nvlink));
    }

    #[test]
    fn all_applicable_methods_measure_on_nvlink() {
        let dims = GemmDims::new(2048, 4096, 4096);
        let system = SystemSpec::a800(2);
        let pattern = CommPattern::AllReduce;
        for method in Method::ALL {
            if method.applicable(&pattern, &system) {
                let latency = measure(method, dims, &pattern, &system).unwrap();
                assert!(latency > SimDuration::ZERO, "{method}");
            }
        }
    }

    #[test]
    fn flash_overlap_wins_on_the_paper_sweet_spot() {
        // A balanced 4x4090 AllReduce shape: FlashOverlap must beat the
        // non-overlap baseline and the decomposition baseline.
        let dims = GemmDims::new(4096, 8192, 16384);
        let system = SystemSpec::rtx4090(4);
        let pattern = CommPattern::AllReduce;
        let base = measure(Method::NonOverlap, dims, &pattern, &system).unwrap();
        let dec = measure(Method::VanillaDecomposition, dims, &pattern, &system).unwrap();
        let fo = measure(Method::FlashOverlap, dims, &pattern, &system).unwrap();
        assert!(fo < base, "FlashOverlap {fo} vs non-overlap {base}");
        assert!(fo < dec, "FlashOverlap {fo} vs decomposition {dec}");
    }
}
