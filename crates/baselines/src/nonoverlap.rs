//! The non-overlap baseline: GEMM, then one collective, sequentially.

use std::rc::Rc;

use collectives::{A2aPlan, CollectiveSpec, Communicator, Region};
use flashoverlap::runtime::{CommPattern, Instrumentation};
use flashoverlap::{FlashOverlapError, SystemSpec};
use gpu_sim::gemm::{GemmConfig, GemmDims, GemmKernel};
use gpu_sim::stream::{enqueue, RecordEvent, WaitEvent};
use gpu_sim::{ClusterSim, OpSpan};
use sim::{Sim, SimDuration, SimTime};

/// Runs `GEMM; AllReduce/ReduceScatter/AllToAll` sequentially (cuBLAS then
/// NCCL, synchronized by an event) and returns the simulated latency.
///
/// # Errors
///
/// Propagates simulation failures and malformed All-to-All routing.
pub fn run_nonoverlap(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
) -> Result<SimDuration, FlashOverlapError> {
    run_nonoverlap_traced(dims, pattern, system, &Instrumentation::default()).map(|(l, _)| l)
}

/// [`run_nonoverlap`] with observation hooks attached and per-stream
/// operation spans recorded — the profiling entry point.
///
/// # Errors
///
/// Propagates simulation failures and malformed All-to-All routing.
pub fn run_nonoverlap_traced(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
    instr: &Instrumentation,
) -> Result<(SimDuration, Vec<OpSpan>), FlashOverlapError> {
    let n = system.n_gpus;
    let mut world = system.build_cluster(false);
    world.enable_op_spans();
    if let Some(monitor) = &instr.monitor {
        world.set_monitor(Rc::clone(monitor));
    }
    let mut sim: ClusterSim = Sim::new();
    if let Some(probe) = &instr.probe {
        sim.set_probe(Rc::clone(probe));
    }
    let comm = Communicator::with_algorithm(
        (0..n).collect(),
        system.fabric.clone(),
        system.comm_sms,
        system.algorithm,
    );
    let config = GemmConfig::choose(dims, &system.arch);

    let out_elems = dims.out_elems() as usize;
    let recv_len = match pattern {
        CommPattern::AllGather => out_elems * n,
        _ => out_elems,
    };
    let mut out_bufs = Vec::with_capacity(n);
    let mut recv_bufs = Vec::with_capacity(n);
    let mut compute = Vec::with_capacity(n);
    let mut comm_streams = Vec::with_capacity(n);
    let mut events = Vec::with_capacity(n);
    for d in 0..n {
        let dev = &mut world.devices[d];
        compute.push(dev.create_stream());
        comm_streams.push(dev.create_stream());
        events.push(dev.create_event());
    }
    // Host-process launch skew, matching the overlapped runtime's model.
    if system.launch_skew_ns > 0 {
        for d in 0..n {
            let delay = sim::SimDuration::from_nanos(
                world.devices[d]
                    .rng
                    .uniform(0.0, system.launch_skew_ns as f64) as u64,
            );
            enqueue(
                &mut world,
                &mut sim,
                d,
                compute[d],
                Box::new(gpu_sim::stream::Delay(delay)),
            );
            enqueue(
                &mut world,
                &mut sim,
                d,
                comm_streams[d],
                Box::new(gpu_sim::stream::Delay(delay)),
            );
        }
    }
    for d in 0..n {
        let dev = &mut world.devices[d];
        let a = dev.mem.alloc((dims.m * dims.k) as usize);
        let b = dev.mem.alloc((dims.k * dims.n) as usize);
        let out = dev.mem.alloc(out_elems);
        out_bufs.push(out);
        recv_bufs.push(dev.mem.alloc(recv_len.max(1)));
        let kernel = GemmKernel {
            a,
            b,
            out,
            dims,
            config,
            writer: Rc::new(gpu_sim::gemm::AddressOrderWriter),
            counter: None,
        };
        enqueue(&mut world, &mut sim, d, compute[d], Box::new(kernel));
        enqueue(
            &mut world,
            &mut sim,
            d,
            compute[d],
            Box::new(RecordEvent(events[d])),
        );
    }

    let spec = match pattern {
        CommPattern::AllReduce => CollectiveSpec::AllReduce {
            regions: (0..n)
                .map(|d| Region::new(out_bufs[d], 0, out_elems))
                .collect(),
        },
        CommPattern::ReduceScatter => {
            if !out_elems.is_multiple_of(n) {
                return Err(FlashOverlapError::IncompatibleShape {
                    reason: format!("output of {out_elems} elements does not divide {n} ranks"),
                });
            }
            CollectiveSpec::ReduceScatter {
                send: (0..n)
                    .map(|d| Region::new(out_bufs[d], 0, out_elems))
                    .collect(),
                recv: (0..n)
                    .map(|d| Region::new(recv_bufs[d], 0, out_elems / n))
                    .collect(),
            }
        }
        CommPattern::AllToAll { routing } => {
            let plan = single_shot_a2a_plan(dims, routing, n)?;
            CollectiveSpec::AllToAllV {
                send: out_bufs.clone(),
                recv: recv_bufs.clone(),
                plan: Rc::new(plan),
            }
        }
        CommPattern::AllGather => CollectiveSpec::AllGather {
            send: (0..n)
                .map(|d| Region::new(out_bufs[d], 0, out_elems))
                .collect(),
            recv: (0..n)
                .map(|d| Region::new(recv_bufs[d], 0, out_elems * n))
                .collect(),
        },
    };
    for (d, kernel) in comm.kernels(spec).into_iter().enumerate() {
        enqueue(
            &mut world,
            &mut sim,
            d,
            comm_streams[d],
            Box::new(WaitEvent(events[d])),
        );
        enqueue(&mut world, &mut sim, d, comm_streams[d], Box::new(kernel));
    }
    let end = sim.run(&mut world)?;
    let spans = world.op_spans.take().unwrap_or_default();
    Ok((end - SimTime::ZERO, spans))
}

/// Builds a one-shot All-to-All plan over natural row order: rank `s`
/// sends row `r` (as one `N`-wide segment) to `routing[s][r]`.
///
/// In the non-overlap baseline the MoE stack's existing permute kernel is
/// assumed fused into the epilogue, matching what FlashOverlap gets for
/// free — only communication structure differs.
///
/// # Errors
///
/// Returns [`FlashOverlapError::BadInputs`] on malformed routing.
fn single_shot_a2a_plan(
    dims: GemmDims,
    routing: &[Vec<usize>],
    n: usize,
) -> Result<A2aPlan, FlashOverlapError> {
    if routing.len() != n {
        return Err(FlashOverlapError::BadInputs {
            reason: format!("{} routing tables for {} ranks", routing.len(), n),
        });
    }
    let m = dims.m as usize;
    let n_cols = dims.n as usize;
    for (r, table) in routing.iter().enumerate() {
        if table.len() != m || table.iter().any(|&d| d >= n) {
            return Err(FlashOverlapError::BadInputs {
                reason: format!("bad routing table for rank {r}"),
            });
        }
    }
    // Sends must be contiguous per destination, so the baseline also packs
    // by destination (dest-major, row-ascending) — its send offsets refer
    // to that packed layout.
    let mut send_off = vec![vec![0usize; n]; n];
    let mut len = vec![vec![0usize; n]; n];
    for (src, table) in routing.iter().enumerate() {
        let mut acc = 0usize;
        for dest in 0..n {
            send_off[src][dest] = acc;
            let rows = table.iter().filter(|&&d| d == dest).count();
            len[src][dest] = rows * n_cols;
            acc += rows * n_cols;
        }
    }
    let mut recv_off = vec![vec![0usize; n]; n];
    for dest in 0..n {
        let mut acc = 0usize;
        for src in 0..n {
            recv_off[dest][src] = acc;
            acc += len[src][dest];
        }
    }
    Ok(A2aPlan {
        send_off,
        len,
        recv_off,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::{collective_duration, Primitive, BYTES_PER_ELEM};
    use gpu_sim::gemm::gemm_estimate;

    /// Noise bound: measured latencies sit within the model plus the
    /// evaluation noise fractions.
    fn within_noise(measured: sim::SimDuration, expected: sim::SimDuration) -> bool {
        let m = measured.as_nanos() as f64;
        let e = expected.as_nanos() as f64;
        m >= e * 0.999 && m <= e * 1.08
    }

    #[test]
    fn latency_is_gemm_plus_comm() {
        let dims = GemmDims::new(4096, 8192, 4096);
        let system = SystemSpec::rtx4090(4);
        let measured = run_nonoverlap(dims, &CommPattern::AllReduce, &system).unwrap();
        let config = GemmConfig::choose(dims, &system.arch);
        let (_, gemm) = gemm_estimate(dims, &config, system.arch.sm_count, &system.arch);
        let comm = collective_duration(
            Primitive::AllReduce,
            dims.out_elems() * BYTES_PER_ELEM,
            4,
            &system.fabric,
        );
        let expected = gemm + comm;
        assert!(
            within_noise(measured, expected),
            "measured {measured} vs expected {expected}"
        );
    }

    #[test]
    fn matches_analytic_nonoverlap_model() {
        let dims = GemmDims::new(2048, 4096, 8192);
        let system = SystemSpec::a800(2);
        let measured = run_nonoverlap(dims, &CommPattern::AllReduce, &system).unwrap();
        let analytic = flashoverlap::nonoverlap_latency(dims, Primitive::AllReduce, &system);
        assert!(
            within_noise(measured, analytic),
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn reduce_scatter_is_cheaper_than_all_reduce() {
        let dims = GemmDims::new(4096, 4096, 4096);
        let system = SystemSpec::rtx4090(4);
        let ar = run_nonoverlap(dims, &CommPattern::AllReduce, &system).unwrap();
        let rs = run_nonoverlap(dims, &CommPattern::ReduceScatter, &system).unwrap();
        assert!(rs < ar);
    }

    #[test]
    fn all_to_all_runs_with_balanced_routing() {
        let dims = GemmDims::new(1024, 4096, 2048);
        let system = SystemSpec::rtx4090(4);
        let routing: Vec<Vec<usize>> = (0..4).map(|_| (0..1024).map(|r| r % 4).collect()).collect();
        let latency = run_nonoverlap(dims, &CommPattern::AllToAll { routing }, &system).unwrap();
        assert!(latency > SimDuration::ZERO);
    }

    #[test]
    fn bad_routing_is_rejected() {
        let dims = GemmDims::new(64, 64, 64);
        let system = SystemSpec::rtx4090(2);
        let routing = vec![vec![0usize; 64], vec![9usize; 64]];
        assert!(matches!(
            run_nonoverlap(dims, &CommPattern::AllToAll { routing }, &system),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }
}
