//! VanillaDecomposition: row-chunked cuBLAS + NCCL pipelining (§6.1.3).
//!
//! The output is decomposed into `C` row chunks. Chunk `i`'s GEMM runs on
//! the compute stream; once it finishes (event), its collective runs on
//! the communication stream, overlapping chunk `i+1`'s GEMM. This is the
//! strongest baseline that, like FlashOverlap, needs neither kernel
//! fusion nor peer-to-peer access — but it fragments the GEMM (wave
//! quantization waste per chunk, §1) and cannot overlap at tile
//! granularity.

use std::rc::Rc;

use collectives::{A2aPlan, CollectiveSpec, Communicator, Region};
use flashoverlap::runtime::{CommPattern, Instrumentation};
use flashoverlap::{FlashOverlapError, SystemSpec};
use gpu_sim::gemm::{AddressOrderWriter, GemmConfig, GemmDims, GemmKernel};
use gpu_sim::stream::{enqueue, RecordEvent, WaitEvent};
use gpu_sim::{ClusterSim, OpSpan};
use sim::{Sim, SimDuration, SimTime};

/// Chunk counts tried by [`run_decomposition_tuned`].
pub const CHUNK_CANDIDATES: [u32; 4] = [2, 4, 6, 8];

/// Runs the decomposition baseline with `chunks` row chunks and returns
/// the simulated latency.
///
/// # Errors
///
/// Returns [`FlashOverlapError::IncompatibleShape`] if `M` does not split
/// into `chunks` equal chunks compatible with the primitive, and
/// propagates simulation failures.
pub fn run_decomposition(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
    chunks: u32,
) -> Result<SimDuration, FlashOverlapError> {
    run_decomposition_traced(dims, pattern, system, chunks, &Instrumentation::default())
        .map(|(l, _)| l)
}

/// [`run_decomposition`] with observation hooks attached and per-stream
/// operation spans recorded — the profiling entry point.
///
/// # Errors
///
/// Same as [`run_decomposition`].
pub fn run_decomposition_traced(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
    chunks: u32,
    instr: &Instrumentation,
) -> Result<(SimDuration, Vec<OpSpan>), FlashOverlapError> {
    let n = system.n_gpus;
    if chunks == 0 || !dims.m.is_multiple_of(chunks) {
        return Err(FlashOverlapError::IncompatibleShape {
            reason: format!("M = {} does not split into {chunks} chunks", dims.m),
        });
    }
    let chunk_rows = dims.m / chunks;
    if matches!(pattern, CommPattern::ReduceScatter) && !(chunk_rows as usize).is_multiple_of(n) {
        return Err(FlashOverlapError::IncompatibleShape {
            reason: format!("chunk rows {chunk_rows} do not divide {n} ranks"),
        });
    }

    let mut world = system.build_cluster(false);
    world.enable_op_spans();
    if let Some(monitor) = &instr.monitor {
        world.set_monitor(Rc::clone(monitor));
    }
    let mut sim: ClusterSim = Sim::new();
    if let Some(probe) = &instr.probe {
        sim.set_probe(Rc::clone(probe));
    }
    let comm = Communicator::with_algorithm(
        (0..n).collect(),
        system.fabric.clone(),
        system.comm_sms,
        system.algorithm,
    );
    let chunk_dims = GemmDims::new(chunk_rows, dims.n, dims.k);
    // Each chunk GEMM is configured for its own (smaller) shape, exactly
    // as separate cuBLAS calls would be.
    let config = GemmConfig::choose(chunk_dims, &system.arch);
    let chunk_elems = (chunk_rows * dims.n) as usize;

    let mut compute = Vec::with_capacity(n);
    let mut comm_streams = Vec::with_capacity(n);
    let mut a_bufs = Vec::with_capacity(n);
    let mut b_bufs = Vec::with_capacity(n);
    let mut out_bufs = Vec::with_capacity(n);
    let mut recv_bufs = Vec::with_capacity(n);
    let recv_len = match pattern {
        CommPattern::AllGather => dims.out_elems() as usize * n,
        _ => dims.out_elems() as usize,
    };
    for d in 0..n {
        let dev = &mut world.devices[d];
        compute.push(dev.create_stream());
        comm_streams.push(dev.create_stream());
        a_bufs.push(dev.mem.alloc((chunk_rows * dims.k) as usize));
        b_bufs.push(dev.mem.alloc((dims.k * dims.n) as usize));
        out_bufs.push(dev.mem.alloc(dims.out_elems() as usize));
        recv_bufs.push(dev.mem.alloc(recv_len));
    }

    for c in 0..chunks {
        // Per-chunk completion events (one per rank).
        let mut events = Vec::with_capacity(n);
        for d in 0..n {
            events.push(world.devices[d].create_event());
        }
        let chunk_off = (c * chunk_rows * dims.n) as usize;
        for d in 0..n {
            let kernel = GemmKernel {
                a: a_bufs[d],
                b: b_bufs[d],
                out: out_bufs[d],
                dims: chunk_dims,
                config,
                writer: Rc::new(AddressOrderWriter),
                counter: None,
            };
            enqueue(&mut world, &mut sim, d, compute[d], Box::new(kernel));
            enqueue(
                &mut world,
                &mut sim,
                d,
                compute[d],
                Box::new(RecordEvent(events[d])),
            );
        }
        let spec = match pattern {
            CommPattern::AllReduce => CollectiveSpec::AllReduce {
                regions: (0..n)
                    .map(|d| Region::new(out_bufs[d], chunk_off, chunk_elems))
                    .collect(),
            },
            CommPattern::ReduceScatter => CollectiveSpec::ReduceScatter {
                send: (0..n)
                    .map(|d| Region::new(out_bufs[d], chunk_off, chunk_elems))
                    .collect(),
                recv: (0..n)
                    .map(|d| Region::new(recv_bufs[d], chunk_off / n, chunk_elems / n))
                    .collect(),
            },
            CommPattern::AllToAll { routing } => {
                let plan = chunk_a2a_plan(dims, routing, n, c * chunk_rows, chunk_rows)?;
                CollectiveSpec::AllToAllV {
                    send: out_bufs.clone(),
                    recv: recv_bufs.clone(),
                    plan: Rc::new(plan),
                }
            }
            CommPattern::AllGather => CollectiveSpec::AllGather {
                send: (0..n)
                    .map(|d| Region::new(out_bufs[d], chunk_off, chunk_elems))
                    .collect(),
                recv: (0..n)
                    .map(|d| Region::new(recv_bufs[d], chunk_off * n, chunk_elems * n))
                    .collect(),
            },
        };
        for (d, kernel) in comm.kernels(spec).into_iter().enumerate() {
            enqueue(
                &mut world,
                &mut sim,
                d,
                comm_streams[d],
                Box::new(WaitEvent(events[d])),
            );
            enqueue(&mut world, &mut sim, d, comm_streams[d], Box::new(kernel));
        }
    }
    let end = sim.run(&mut world)?;
    let spans = world.op_spans.take().unwrap_or_default();
    Ok((end - SimTime::ZERO, spans))
}

/// Runs the decomposition baseline at every chunk count in
/// [`CHUNK_CANDIDATES`] that divides the shape, returning the best
/// latency (a small grid search, as a practitioner would tune it).
///
/// # Errors
///
/// Returns the first error if *no* candidate is feasible.
pub fn run_decomposition_tuned(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
) -> Result<SimDuration, FlashOverlapError> {
    let mut best: Option<SimDuration> = None;
    let mut first_err = None;
    for &chunks in &CHUNK_CANDIDATES {
        match run_decomposition(dims, pattern, system, chunks) {
            Ok(latency) => {
                if best.is_none_or(|b| latency < b) {
                    best = Some(latency);
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    best.ok_or_else(|| {
        first_err.unwrap_or(FlashOverlapError::IncompatibleShape {
            reason: "no feasible chunk count".into(),
        })
    })
}

/// Tunes the chunk count with plain (unobserved) runs, then re-runs the
/// winner with observation hooks attached, so the recorded telemetry
/// covers exactly one run of the configuration a practitioner would
/// deploy.
///
/// # Errors
///
/// Returns the first error if *no* candidate is feasible.
pub fn run_decomposition_tuned_traced(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
    instr: &Instrumentation,
) -> Result<(SimDuration, Vec<OpSpan>), FlashOverlapError> {
    let mut best: Option<(u32, SimDuration)> = None;
    let mut first_err = None;
    for &chunks in &CHUNK_CANDIDATES {
        match run_decomposition(dims, pattern, system, chunks) {
            Ok(latency) => {
                if best.is_none_or(|(_, b)| latency < b) {
                    best = Some((chunks, latency));
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    let Some((chunks, _)) = best else {
        return Err(first_err.unwrap_or(FlashOverlapError::IncompatibleShape {
            reason: "no feasible chunk count".into(),
        }));
    };
    run_decomposition_traced(dims, pattern, system, chunks, instr)
}

/// All-to-All plan for the rows `[row0, row0 + rows)` of a chunk.
fn chunk_a2a_plan(
    dims: GemmDims,
    routing: &[Vec<usize>],
    n: usize,
    row0: u32,
    rows: u32,
) -> Result<A2aPlan, FlashOverlapError> {
    if routing.len() != n {
        return Err(FlashOverlapError::BadInputs {
            reason: format!("{} routing tables for {} ranks", routing.len(), n),
        });
    }
    let n_cols = dims.n as usize;
    let range = row0 as usize..(row0 + rows) as usize;
    let mut send_off = vec![vec![0usize; n]; n];
    let mut len = vec![vec![0usize; n]; n];
    for (src, table) in routing.iter().enumerate() {
        if table.len() != dims.m as usize || table.iter().any(|&d| d >= n) {
            return Err(FlashOverlapError::BadInputs {
                reason: format!("bad routing table for rank {src}"),
            });
        }
        let mut acc = range.start * n_cols;
        for dest in 0..n {
            send_off[src][dest] = acc;
            let count = table[range.clone()].iter().filter(|&&d| d == dest).count();
            len[src][dest] = count * n_cols;
            acc += count * n_cols;
        }
    }
    let mut recv_off = vec![vec![0usize; n]; n];
    for dest in 0..n {
        let mut acc = range.start * n_cols;
        for src in 0..n {
            recv_off[dest][src] = acc;
            acc += len[src][dest];
        }
    }
    Ok(A2aPlan {
        send_off,
        len,
        recv_off,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonoverlap::run_nonoverlap;

    #[test]
    fn decomposition_beats_nonoverlap_on_balanced_shapes() {
        let dims = GemmDims::new(4096, 8192, 16384);
        let system = SystemSpec::rtx4090(4);
        let base = run_nonoverlap(dims, &CommPattern::AllReduce, &system).unwrap();
        let dec = run_decomposition_tuned(dims, &CommPattern::AllReduce, &system).unwrap();
        assert!(dec < base, "decomposition {dec} vs non-overlap {base}");
    }

    #[test]
    fn too_many_chunks_fragment_and_slow_down() {
        // Chunking into tiny GEMMs wastes wave quantization: with M = 512
        // rows on a 128-SM machine, 8 chunks of 64 rows leave most SMs
        // idle every chunk.
        let dims = GemmDims::new(512, 8192, 8192);
        let system = SystemSpec::rtx4090(4);
        let few = run_decomposition(dims, &CommPattern::AllReduce, &system, 2).unwrap();
        let many = run_decomposition(dims, &CommPattern::AllReduce, &system, 8).unwrap();
        assert!(many > few, "8 chunks {many} should be slower than 2 {few}");
    }

    #[test]
    fn indivisible_chunking_is_rejected() {
        let dims = GemmDims::new(1000, 4096, 4096);
        let system = SystemSpec::rtx4090(2);
        assert!(matches!(
            run_decomposition(dims, &CommPattern::AllReduce, &system, 3),
            Err(FlashOverlapError::IncompatibleShape { .. })
        ));
    }

    #[test]
    fn tuned_picks_a_feasible_candidate() {
        let dims = GemmDims::new(4096, 4096, 4096);
        let system = SystemSpec::a800(2);
        let tuned = run_decomposition_tuned(dims, &CommPattern::AllReduce, &system).unwrap();
        for &c in &CHUNK_CANDIDATES {
            if let Ok(l) = run_decomposition(dims, &CommPattern::AllReduce, &system, c) {
                assert!(tuned <= l);
            }
        }
    }

    #[test]
    fn reduce_scatter_decomposition_runs() {
        let dims = GemmDims::new(4096, 4096, 8192);
        let system = SystemSpec::rtx4090(4);
        let latency = run_decomposition(dims, &CommPattern::ReduceScatter, &system, 4).unwrap();
        assert!(latency > SimDuration::ZERO);
    }

    #[test]
    fn all_to_all_decomposition_runs() {
        let dims = GemmDims::new(2048, 4096, 4096);
        let system = SystemSpec::rtx4090(4);
        let routing: Vec<Vec<usize>> = (0..4)
            .map(|_| (0..2048).map(|r| (r * 7) % 4).collect())
            .collect();
        let latency =
            run_decomposition(dims, &CommPattern::AllToAll { routing }, &system, 4).unwrap();
        assert!(latency > SimDuration::ZERO);
    }
}
