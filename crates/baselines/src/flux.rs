//! A FLUX-like fusion baseline (§2.4.2, §6.1.3).
//!
//! FLUX fuses communication into the GEMM kernel at tile granularity via
//! peer-to-peer remote writes. The fusion achieves near-perfect
//! tile-level overlap, but at two costs the paper highlights:
//!
//! - the GEMM is *not* interference-free: the fused kernel's tiling is
//!   constrained and its epilogue performs remote writes, inflating the
//!   compute time by a few percent (`GEMM_INTERFERENCE`);
//! - the fine-grained remote writes do not reach the bandwidth of bulk
//!   collectives — modelled by evaluating the wire cost at an effective
//!   message size of a handful of tiles rather than the whole buffer.
//!
//! The model composes these analytically: the fused kernel finishes when
//! both the inflated compute and the fine-grained communication streams
//! drain, plus the first tile's latency to prime the pipeline.

use collectives::{Primitive, BYTES_PER_ELEM};
use flashoverlap::{FlashOverlapError, SystemSpec};
use gpu_sim::gemm::{gemm_estimate, tile_duration, GemmConfig, GemmDims};
use sim::SimDuration;

/// Compute-time inflation of the fused GEMM relative to the unfused
/// optimum (constrained tiling + remote-write epilogue).
pub const GEMM_INTERFERENCE: f64 = 1.10;

/// Number of tiles aggregated per remote-write burst (FLUX pipelines
/// several tiles per transaction).
const TILES_PER_BURST: u64 = 8;

/// Runs the FLUX-like fusion model and returns its latency.
///
/// Supports the tensor-parallel primitives FLUX implements (AllReduce,
/// ReduceScatter).
///
/// # Errors
///
/// Returns [`FlashOverlapError::IncompatibleShape`] on fabrics without
/// peer-to-peer access or unsupported primitives.
pub fn run_flux(
    dims: GemmDims,
    primitive: Primitive,
    system: &SystemSpec,
) -> Result<SimDuration, FlashOverlapError> {
    if !system.fabric.peer_to_peer {
        return Err(FlashOverlapError::IncompatibleShape {
            reason: "FLUX requires peer-to-peer access".into(),
        });
    }
    if !matches!(primitive, Primitive::AllReduce | Primitive::ReduceScatter) {
        return Err(FlashOverlapError::IncompatibleShape {
            reason: format!("FLUX does not implement {primitive}"),
        });
    }
    let config = GemmConfig::choose(dims, &system.arch);
    let (_, gemm) = gemm_estimate(dims, &config, system.arch.sm_count, &system.arch);
    let compute = gemm.mul_f64(GEMM_INTERFERENCE);

    // Wire cost of moving the ring traffic in tile-burst-sized remote
    // writes: per-rank traffic is 2(n-1)/n * S for AllReduce and
    // (n-1)/n * S for ReduceScatter, at burst-granularity bandwidth.
    let n = system.n_gpus as u64;
    let total_bytes = dims.out_elems() * BYTES_PER_ELEM;
    let traffic = match primitive {
        Primitive::AllReduce => 2 * (n - 1) * total_bytes / n,
        _ => (n - 1) * total_bytes / n,
    };
    let burst_bytes = config.tile.elems() * BYTES_PER_ELEM * TILES_PER_BURST;
    let eff_bw = system.fabric.p2p.effective_gbps(burst_bytes).max(1e-3);
    let comm = SimDuration::from_secs_f64(traffic as f64 / (eff_bw * 1e9));

    // Pipeline priming: nothing communicates before the first tile exists.
    let prime = tile_duration(dims.k, config.tile, &system.arch);
    Ok(compute.max(comm) + prime + system.arch.kernel_launch())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonoverlap::run_nonoverlap;
    use flashoverlap::runtime::CommPattern;

    #[test]
    fn refuses_pcie_and_all_to_all() {
        let dims = GemmDims::new(4096, 4096, 4096);
        assert!(run_flux(dims, Primitive::AllReduce, &SystemSpec::rtx4090(4)).is_err());
        assert!(run_flux(dims, Primitive::AllToAll, &SystemSpec::a800(2)).is_err());
    }

    #[test]
    fn flux_beats_nonoverlap_when_comm_matters() {
        let dims = GemmDims::new(8192, 8192, 2048);
        let system = SystemSpec::a800(4);
        let base = run_nonoverlap(dims, &CommPattern::AllReduce, &system).unwrap();
        let flux = run_flux(dims, Primitive::AllReduce, &system).unwrap();
        assert!(flux < base, "flux {flux} vs base {base}");
    }

    #[test]
    fn flux_can_lose_on_compute_bound_shapes() {
        // With negligible communication, the 10% GEMM interference makes
        // fusion a net loss — the "performance deterioration" FlashOverlap
        // avoids (Sec. 6.2).
        let dims = GemmDims::new(2048, 2048, 16384);
        let system = SystemSpec::a800(2);
        let base = run_nonoverlap(dims, &CommPattern::AllReduce, &system).unwrap();
        let flux = run_flux(dims, Primitive::AllReduce, &system).unwrap();
        assert!(flux > base, "flux {flux} should lose to base {base}");
    }

    #[test]
    fn reduce_scatter_moves_half_the_traffic() {
        let dims = GemmDims::new(8192, 8192, 512);
        let system = SystemSpec::a800(4);
        let ar = run_flux(dims, Primitive::AllReduce, &system).unwrap();
        let rs = run_flux(dims, Primitive::ReduceScatter, &system).unwrap();
        assert!(rs < ar);
    }
}
