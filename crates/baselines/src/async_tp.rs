//! An Async-TP-like baseline: ring-pipelined decomposition over
//! peer-to-peer copies (PyTorch's async tensor parallelism, §6.1.3).
//!
//! Async-TP decomposes the GEMM into `n` (rank count) chunks and moves
//! partial results with direct NVLink peer copies instead of collective
//! calls, avoiding NCCL launch overheads but requiring "an NVLink
//! connection between all GPU pairs" — so, like the real system, this
//! baseline refuses to run on the PCIe server.

use std::rc::Rc;

use collectives::P2pCopy;
use flashoverlap::runtime::{CommPattern, Instrumentation};
use flashoverlap::{FlashOverlapError, SystemSpec};
use gpu_sim::gemm::{AddressOrderWriter, GemmConfig, GemmDims, GemmKernel};
use gpu_sim::stream::{enqueue, RecordEvent, WaitEvent};
use gpu_sim::{ClusterSim, OpSpan};
use sim::{Sim, SimDuration, SimTime};

/// SMs a peer-copy kernel occupies (copy engines + a small SM footprint).
const P2P_SM_FOOTPRINT: u32 = 8;

/// Runs the Async-TP-like pipeline and returns the simulated latency.
///
/// Supports AllReduce (as ReduceScatter + AllGather over peer copies) and
/// ReduceScatter. All-to-All is out of scope for Async-TP, as in the real
/// implementation.
///
/// # Errors
///
/// Returns [`FlashOverlapError::IncompatibleShape`] on a fabric without
/// peer-to-peer access, on unsupported patterns, or on indivisible
/// shapes.
pub fn run_async_tp(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
) -> Result<SimDuration, FlashOverlapError> {
    run_async_tp_traced(dims, pattern, system, &Instrumentation::default()).map(|(l, _)| l)
}

/// [`run_async_tp`] with observation hooks attached and per-stream
/// operation spans recorded — the profiling entry point.
///
/// # Errors
///
/// Same as [`run_async_tp`].
pub fn run_async_tp_traced(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
    instr: &Instrumentation,
) -> Result<(SimDuration, Vec<OpSpan>), FlashOverlapError> {
    if !system.fabric.peer_to_peer {
        return Err(FlashOverlapError::IncompatibleShape {
            reason: "Async-TP requires peer-to-peer (NVLink) access between all GPU pairs".into(),
        });
    }
    let n = system.n_gpus;
    let chunks = n as u32;
    if !dims.m.is_multiple_of(chunks) {
        return Err(FlashOverlapError::IncompatibleShape {
            reason: format!("M = {} does not split into {chunks} ring chunks", dims.m),
        });
    }
    // Each rank's chunk result is scattered to its owner (ReduceScatter
    // leg); AllReduce additionally gathers the reduced chunks back.
    let gather_back = match pattern {
        CommPattern::AllReduce => true,
        CommPattern::ReduceScatter => false,
        CommPattern::AllToAll { .. } | CommPattern::AllGather => {
            return Err(FlashOverlapError::IncompatibleShape {
                reason: "Async-TP implements only AllReduce and ReduceScatter here".into(),
            });
        }
    };

    let chunk_rows = dims.m / chunks;
    let chunk_dims = GemmDims::new(chunk_rows, dims.n, dims.k);
    let config = GemmConfig::choose(chunk_dims, &system.arch);
    let chunk_elems = (chunk_rows * dims.n) as usize;

    let mut world = system.build_cluster(false);
    world.enable_op_spans();
    if let Some(monitor) = &instr.monitor {
        world.set_monitor(Rc::clone(monitor));
    }
    let mut sim: ClusterSim = Sim::new();
    if let Some(probe) = &instr.probe {
        sim.set_probe(Rc::clone(probe));
    }
    let mut compute = Vec::with_capacity(n);
    let mut comm_streams = Vec::with_capacity(n);
    let mut out_bufs = Vec::with_capacity(n);
    let mut stage_bufs = Vec::with_capacity(n);
    let mut a_bufs = Vec::with_capacity(n);
    let mut b_bufs = Vec::with_capacity(n);
    for d in 0..n {
        let dev = &mut world.devices[d];
        compute.push(dev.create_stream());
        comm_streams.push(dev.create_stream());
        a_bufs.push(dev.mem.alloc((chunk_rows * dims.k) as usize));
        b_bufs.push(dev.mem.alloc((dims.k * dims.n) as usize));
        out_bufs.push(dev.mem.alloc(dims.out_elems() as usize));
        stage_bufs.push(dev.mem.alloc(dims.out_elems() as usize));
    }

    for c in 0..chunks {
        let mut events = Vec::with_capacity(n);
        for d in 0..n {
            events.push(world.devices[d].create_event());
        }
        for d in 0..n {
            let kernel = GemmKernel {
                a: a_bufs[d],
                b: b_bufs[d],
                out: out_bufs[d],
                dims: chunk_dims,
                config,
                writer: Rc::new(AddressOrderWriter),
                counter: None,
            };
            enqueue(&mut world, &mut sim, d, compute[d], Box::new(kernel));
            enqueue(
                &mut world,
                &mut sim,
                d,
                compute[d],
                Box::new(RecordEvent(events[d])),
            );
        }
        // Each rank pushes its partial chunk to the chunk's owner; the
        // per-direction NVLink links run these puts in parallel, so the
        // chunk's communication occupies the comm stream for one
        // chunk-sized copy (plus the reduced-chunk broadcast for
        // AllReduce).
        let chunk_off = (c * chunk_rows * dims.n) as usize;
        let owner = c as usize % n;
        for d in 0..n {
            enqueue(
                &mut world,
                &mut sim,
                d,
                comm_streams[d],
                Box::new(WaitEvent(events[d])),
            );
            if d != owner {
                enqueue(
                    &mut world,
                    &mut sim,
                    d,
                    comm_streams[d],
                    Box::new(P2pCopy {
                        fabric: system.fabric.clone(),
                        src_buf: out_bufs[d],
                        src_off: chunk_off,
                        dst_dev: owner,
                        dst_buf: stage_bufs[owner],
                        dst_off: chunk_off,
                        count: chunk_elems,
                        sm_footprint: P2P_SM_FOOTPRINT,
                    }),
                );
            }
            if gather_back && d == owner {
                // Owner broadcasts the reduced chunk to every peer.
                for peer in 0..n {
                    if peer == owner {
                        continue;
                    }
                    enqueue(
                        &mut world,
                        &mut sim,
                        d,
                        comm_streams[d],
                        Box::new(P2pCopy {
                            fabric: system.fabric.clone(),
                            src_buf: out_bufs[d],
                            src_off: chunk_off,
                            dst_dev: peer,
                            dst_buf: out_bufs[peer],
                            dst_off: chunk_off,
                            count: chunk_elems,
                            sm_footprint: P2P_SM_FOOTPRINT,
                        }),
                    );
                }
            }
        }
    }
    let end = sim.run(&mut world)?;
    let spans = world.op_spans.take().unwrap_or_default();
    Ok((end - SimTime::ZERO, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonoverlap::run_nonoverlap;

    #[test]
    fn refuses_pcie_fabric() {
        let dims = GemmDims::new(4096, 4096, 4096);
        let system = SystemSpec::rtx4090(4);
        assert!(matches!(
            run_async_tp(dims, &CommPattern::AllReduce, &system),
            Err(FlashOverlapError::IncompatibleShape { .. })
        ));
    }

    #[test]
    fn refuses_all_to_all() {
        let dims = GemmDims::new(4096, 4096, 4096);
        let system = SystemSpec::a800(2);
        let routing = vec![vec![0usize; 4096]; 2];
        assert!(matches!(
            run_async_tp(dims, &CommPattern::AllToAll { routing }, &system),
            Err(FlashOverlapError::IncompatibleShape { .. })
        ));
    }

    #[test]
    fn overlaps_on_nvlink_balanced_shapes() {
        let dims = GemmDims::new(8192, 8192, 2048);
        let system = SystemSpec::a800(4);
        let base = run_nonoverlap(dims, &CommPattern::AllReduce, &system).unwrap();
        let async_tp = run_async_tp(dims, &CommPattern::AllReduce, &system).unwrap();
        assert!(async_tp < base, "async-tp {async_tp} vs base {base}");
    }

    #[test]
    fn reduce_scatter_leg_is_cheaper_than_full_allreduce() {
        // Communication-heavy shape so the broadcast leg is exposed.
        let dims = GemmDims::new(8192, 8192, 512);
        let system = SystemSpec::a800(2);
        let ar = run_async_tp(dims, &CommPattern::AllReduce, &system).unwrap();
        let rs = run_async_tp(dims, &CommPattern::ReduceScatter, &system).unwrap();
        assert!(rs < ar);
    }
}
