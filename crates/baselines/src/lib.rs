//! Baseline implementations the paper compares against (§6.1.3).
//!
//! - [`nonoverlap`]: sequential cuBLAS-then-NCCL execution — the
//!   normalization baseline of every Fig. 9 plot.
//! - [`decomposition`]: *VanillaDecomposition* — the output is split into
//!   row chunks, chunk `k+1`'s GEMM overlaps chunk `k`'s collective
//!   (cuBLAS + NCCL + events, no peer-to-peer requirement).
//! - [`async_tp`]: an Async-TP-like ring-pipelined decomposition using
//!   peer-to-peer copies (NVLink-only, like the PyTorch implementation).
//! - [`flux`]: a FLUX-like fusion model — tile-level overlap inside one
//!   kernel, paying a GEMM interference penalty and requiring
//!   peer-to-peer access.
//! - [`microbatch`]: multi-dataflow scheduling (§2.4.3) — micro-batch
//!   co-execution on independent stream pairs, sharing SMs.
//!
//! All baselines run against the same simulated substrate as FlashOverlap
//! so the comparison is apples-to-apples: same GEMM timing model, same
//! fabric, same per-call overheads.

#![warn(missing_docs)]

pub mod async_tp;
pub mod decomposition;
pub mod flux;
pub mod method;
pub mod microbatch;
pub mod nonoverlap;

pub use async_tp::{run_async_tp, run_async_tp_traced};
pub use decomposition::{
    run_decomposition, run_decomposition_tuned, run_decomposition_tuned_traced,
};
pub use flux::run_flux;
pub use method::{measure, measure_traced, Method, MethodProfile};
pub use microbatch::{run_microbatch, run_microbatch_tuned};
pub use nonoverlap::{run_nonoverlap, run_nonoverlap_traced};
