//! Micro-batch co-execution: the multi-dataflow scheduling family
//! (§2.4.3).
//!
//! Instead of overlapping *within* one operator, this family splits the
//! batch into micro-batches and overlaps micro-batch `i`'s communication
//! with micro-batch `i+1`'s computation — two independent dataflows on
//! separate stream pairs. The paper surveys this approach (Wang et al.,
//! DeepSeek-V3, Lancet, FasterMoE) but does not evaluate it; this
//! implementation makes the comparison concrete. Its structural costs:
//! each micro-batch GEMM is smaller (wave-quantization waste, §1) and the
//! two compute streams contend for SMs whenever their waves overlap.

use std::rc::Rc;

use collectives::{CollectiveSpec, Communicator, Region};
use flashoverlap::runtime::CommPattern;
use flashoverlap::{FlashOverlapError, SystemSpec};
use gpu_sim::gemm::{AddressOrderWriter, GemmConfig, GemmDims, GemmKernel};
use gpu_sim::stream::{enqueue, RecordEvent, WaitEvent};
use gpu_sim::ClusterSim;
use sim::{Sim, SimDuration, SimTime};

/// Runs `micro_batches` independent GEMM+collective dataflows (one stream
/// pair each) and returns the makespan.
///
/// Supports AllReduce and ReduceScatter (the patterns the surveyed
/// systems target).
///
/// # Errors
///
/// Returns [`FlashOverlapError::IncompatibleShape`] on indivisible
/// shapes or unsupported patterns.
pub fn run_microbatch(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
    micro_batches: u32,
) -> Result<SimDuration, FlashOverlapError> {
    let n = system.n_gpus;
    if micro_batches == 0 || !dims.m.is_multiple_of(micro_batches) {
        return Err(FlashOverlapError::IncompatibleShape {
            reason: format!(
                "M = {} does not split into {micro_batches} micro-batches",
                dims.m
            ),
        });
    }
    if matches!(
        pattern,
        CommPattern::AllToAll { .. } | CommPattern::AllGather
    ) {
        return Err(FlashOverlapError::IncompatibleShape {
            reason: "micro-batch baseline implements AllReduce and ReduceScatter".into(),
        });
    }
    let mb_rows = dims.m / micro_batches;
    if matches!(pattern, CommPattern::ReduceScatter) && !(mb_rows as usize).is_multiple_of(n) {
        return Err(FlashOverlapError::IncompatibleShape {
            reason: format!("micro-batch rows {mb_rows} do not divide {n} ranks"),
        });
    }

    let mut world = system.build_cluster(false);
    let mut sim: ClusterSim = Sim::new();
    let comm = Communicator::with_algorithm(
        (0..n).collect(),
        system.fabric.clone(),
        system.comm_sms,
        system.algorithm,
    );
    let mb_dims = GemmDims::new(mb_rows, dims.n, dims.k);
    let config = GemmConfig::choose(mb_dims, &system.arch);
    let mb_elems = (mb_rows * dims.n) as usize;

    // One compute + one comm stream per (device, micro-batch): the
    // dataflows are fully independent and the SM ledger arbitrates.
    for mb in 0..micro_batches {
        let mut events = Vec::with_capacity(n);
        let mut out_bufs = Vec::with_capacity(n);
        let mut recv_bufs = Vec::with_capacity(n);
        let mut comm_streams = Vec::with_capacity(n);
        for d in 0..n {
            let dev = &mut world.devices[d];
            let compute = dev.create_stream();
            comm_streams.push(dev.create_stream());
            events.push(dev.create_event());
            let a = dev.mem.alloc((mb_rows * dims.k) as usize);
            let b = dev.mem.alloc((dims.k * dims.n) as usize);
            let out = dev.mem.alloc(mb_elems);
            out_bufs.push(out);
            recv_bufs.push(dev.mem.alloc(mb_elems));
            let kernel = GemmKernel {
                a,
                b,
                out,
                dims: mb_dims,
                config,
                writer: Rc::new(AddressOrderWriter),
                counter: None,
            };
            enqueue(&mut world, &mut sim, d, compute, Box::new(kernel));
            enqueue(
                &mut world,
                &mut sim,
                d,
                compute,
                Box::new(RecordEvent(events[d])),
            );
        }
        let spec = match pattern {
            CommPattern::AllReduce => CollectiveSpec::AllReduce {
                regions: (0..n)
                    .map(|d| Region::new(out_bufs[d], 0, mb_elems))
                    .collect(),
            },
            CommPattern::ReduceScatter => CollectiveSpec::ReduceScatter {
                send: (0..n)
                    .map(|d| Region::new(out_bufs[d], 0, mb_elems))
                    .collect(),
                recv: (0..n)
                    .map(|d| Region::new(recv_bufs[d], 0, mb_elems / n))
                    .collect(),
            },
            _ => unreachable!("validated above"),
        };
        for (d, kernel) in comm.kernels(spec).into_iter().enumerate() {
            enqueue(
                &mut world,
                &mut sim,
                d,
                comm_streams[d],
                Box::new(WaitEvent(events[d])),
            );
            enqueue(&mut world, &mut sim, d, comm_streams[d], Box::new(kernel));
        }
        let _ = mb;
    }
    let end = sim.run(&mut world)?;
    world.check_quiescent().map_err(|stuck| {
        FlashOverlapError::Simulation(format!("deadlock: {}", stuck.join("; ")))
    })?;
    Ok(end - SimTime::ZERO)
}

/// Best makespan over micro-batch counts {2, 4} (as a practitioner would
/// tune).
///
/// # Errors
///
/// Returns the first error if no candidate is feasible.
pub fn run_microbatch_tuned(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
) -> Result<SimDuration, FlashOverlapError> {
    let mut best: Option<SimDuration> = None;
    let mut first_err = None;
    for mb in [2u32, 4] {
        match run_microbatch(dims, pattern, system, mb) {
            Ok(latency) => {
                if best.is_none_or(|b| latency < b) {
                    best = Some(latency);
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    best.ok_or_else(|| {
        first_err.unwrap_or(FlashOverlapError::IncompatibleShape {
            reason: "no feasible micro-batch count".into(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonoverlap::run_nonoverlap;

    #[test]
    fn microbatching_overlaps_dataflows() {
        let dims = GemmDims::new(4096, 8192, 16384);
        let system = SystemSpec::rtx4090(4);
        let base = run_nonoverlap(dims, &CommPattern::AllReduce, &system).unwrap();
        let mb = run_microbatch_tuned(dims, &CommPattern::AllReduce, &system).unwrap();
        assert!(mb < base, "micro-batching {mb} vs sequential {base}");
    }

    #[test]
    fn single_microbatch_equals_nonoverlap_roughly() {
        let dims = GemmDims::new(4096, 4096, 4096);
        let system = SystemSpec::rtx4090(2);
        let one = run_microbatch(dims, &CommPattern::AllReduce, &system, 1).unwrap();
        let base = run_nonoverlap(dims, &CommPattern::AllReduce, &system).unwrap();
        let ratio = one.as_nanos() as f64 / base.as_nanos() as f64;
        assert!((0.95..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rejects_all_to_all_and_indivisible_shapes() {
        let system = SystemSpec::rtx4090(2);
        let routing = vec![vec![0usize; 4096]; 2];
        assert!(run_microbatch(
            GemmDims::new(4096, 4096, 4096),
            &CommPattern::AllToAll { routing },
            &system,
            2
        )
        .is_err());
        assert!(run_microbatch(
            GemmDims::new(1000, 4096, 4096),
            &CommPattern::AllReduce,
            &system,
            3
        )
        .is_err());
    }

    #[test]
    fn reduce_scatter_microbatching_runs() {
        let dims = GemmDims::new(4096, 4096, 8192);
        let system = SystemSpec::rtx4090(4);
        let latency = run_microbatch(dims, &CommPattern::ReduceScatter, &system, 2).unwrap();
        assert!(latency > SimDuration::ZERO);
    }
}
