//! The tile-granular conflict predicate shared by the static verifier and
//! SimSan's dynamic shadow memory (ROADMAP carried item b).
//!
//! Mappings model a tile's packed writes at sub-tile granularity — one
//! interval per destination subtile for ReduceScatter, one per token row
//! for All-to-All — but the GEMM epilogue *stores the whole tile* as one
//! reordered burst. The modelled sub-ranges therefore under-approximate
//! the store's true footprint, and a pure range-intersection test misses
//! the partial-overlap case: two unsynchronized accesses to *different
//! sub-ranges of the same tile* share the real footprint and race, even
//! though their modelled element ranges are disjoint.
//!
//! [`may_conflict`] closes that gap: accesses that both name a tile
//! conflict exactly when it is the *same* tile (whole-slot atomicity);
//! everything else falls back to element-range intersection. Different
//! tiles with disjoint ranges stay conflict-free, so the predicate is
//! still element-granular — it sharpens, not widens, where tile identity
//! is known.

/// Whether two half-open element ranges `[a_start, a_end)` and
/// `[b_start, b_end)` intersect. Empty ranges intersect nothing.
pub fn ranges_overlap(a_start: usize, a_end: usize, b_start: usize, b_end: usize) -> bool {
    a_start < b_end && b_start < a_end
}

/// Whether two accesses may touch the same memory, given each access's
/// tile attribution (when it belongs to one reordered GEMM tile) and its
/// modelled element range.
///
/// Same-tile accesses conflict regardless of modelled range disjointness
/// (the epilogue writes the tile's slot as one unit); otherwise element
/// ranges decide. Callers still filter by access kind — this predicate
/// only answers the *footprint* question.
pub fn may_conflict(
    a_tile: Option<u32>,
    a_start: usize,
    a_end: usize,
    b_tile: Option<u32>,
    b_start: usize,
    b_end: usize,
) -> bool {
    match (a_tile, b_tile) {
        // Same tile: the true footprint is the whole tile slot, so any
        // two non-empty accesses collide.
        (Some(a), Some(b)) if a == b => a_start < a_end && b_start < b_end,
        _ => ranges_overlap(a_start, a_end, b_start, b_end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_ranges_do_not_overlap() {
        assert!(!ranges_overlap(0, 4, 4, 8));
        assert!(!ranges_overlap(4, 8, 0, 4));
        assert!(ranges_overlap(0, 5, 4, 8));
        assert!(!ranges_overlap(0, 0, 0, 8), "empty range hits nothing");
    }

    #[test]
    fn same_tile_conflicts_despite_disjoint_ranges() {
        // The partial-overlap case the range intersection provably
        // misses: both sub-ranges belong to tile 3, ranges disjoint.
        assert!(!ranges_overlap(0, 4, 8, 12));
        assert!(may_conflict(Some(3), 0, 4, Some(3), 8, 12));
    }

    #[test]
    fn different_tiles_fall_back_to_ranges() {
        assert!(!may_conflict(Some(1), 0, 4, Some(2), 8, 12));
        assert!(may_conflict(Some(1), 0, 6, Some(2), 4, 8));
    }

    #[test]
    fn untiled_accesses_use_ranges() {
        assert!(may_conflict(None, 0, 6, Some(2), 4, 8));
        assert!(!may_conflict(None, 0, 4, None, 4, 8));
    }

    #[test]
    fn empty_same_tile_access_is_no_conflict() {
        assert!(!may_conflict(Some(5), 2, 2, Some(5), 0, 8));
    }
}
