//! The unified mutation registry and the protocol-conformance matrix
//! (ROADMAP carried item c).
//!
//! The repo historically grew three unrelated mutation mechanisms — the
//! runtime's `SignalMutation` (drop/raise a wait), the sequence
//! executor's `drop_cross_batch_edge`, and the signal-affecting
//! `FaultPlan` arms (dropped/delayed increments). Each had its own
//! ad-hoc self-test, so a new execute path could silently miss coverage.
//! This module is the single enumerable registry: every corruption the
//! suite knows how to express is a [`Mutation`], every execute path is an
//! [`ExecPath`], and [`conformance_matrix`] classifies each
//! `(mutation, path)` cell as caught-static, caught-dynamic, or
//! documented-benign — with the dynamic-observability caveats promoted
//! from code comments to machine-checked [`Caveat`] entries.

use std::fmt;

/// One schedule corruption, parameterized with its target. The model
/// mutates via [`crate::model::ScheduleModel::apply`]; the runtime seams
/// live in `flashoverlap::verify` (the registry itself stays
/// simulator-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Delete the `WaitCounter` guarding `(rank, group)` — the collective
    /// launches ungated (runtime seam: `SignalMutation::DropWait`).
    DropWait {
        /// Target rank.
        rank: usize,
        /// Target group.
        group: usize,
    },
    /// Inflate the wait threshold far beyond any reachable count
    /// (runtime seam: `SignalMutation::RaiseThreshold`).
    RaiseThreshold {
        /// Target rank.
        rank: usize,
        /// Target group.
        group: usize,
    },
    /// Swallow `count` of the group's counting-table increments (runtime
    /// seam: `Fault::DroppedIncrement` under the resilient runtime).
    DropIncrements {
        /// Target rank.
        rank: usize,
        /// Target group.
        group: usize,
        /// Increments swallowed.
        count: u32,
    },
    /// Delay `count` of the group's increments without losing them
    /// (runtime seam: `Fault::DelayedIncrement`).
    DelayIncrements {
        /// Target rank.
        rank: usize,
        /// Target group.
        group: usize,
        /// Increments delayed.
        count: u32,
    },
    /// Permute the order the rank's epilogue issues its increments in.
    /// No runtime seam exists (the simulator issues increments in tile
    /// completion order) — the registry documents *why* none is needed:
    /// the totals-only model proves any order equivalent.
    ReorderIncrements {
        /// Target rank.
        rank: usize,
    },
    /// Delete a chained segment's rearm edges (wait on the table's
    /// previous user → `ResetCounter` → ready-event). Runtime seam:
    /// `SequenceOptions::drop_cross_batch_edge` on the sequence path.
    DropRearm,
}

impl Mutation {
    /// This mutation's registry kind.
    pub fn kind(&self) -> MutationKind {
        match self {
            Mutation::DropWait { .. } => MutationKind::DropWait,
            Mutation::RaiseThreshold { .. } => MutationKind::RaiseThreshold,
            Mutation::DropIncrements { .. } => MutationKind::DropIncrements,
            Mutation::DelayIncrements { .. } => MutationKind::DelayIncrements,
            Mutation::ReorderIncrements { .. } => MutationKind::ReorderIncrements,
            Mutation::DropRearm => MutationKind::DropRearm,
        }
    }
}

/// The registry of mutation kinds (target-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Delete a wait.
    DropWait,
    /// Inflate a wait threshold.
    RaiseThreshold,
    /// Swallow increments.
    DropIncrements,
    /// Delay increments.
    DelayIncrements,
    /// Permute increment order.
    ReorderIncrements,
    /// Delete a rearm chain.
    DropRearm,
}

impl MutationKind {
    /// Every registered mutation kind.
    pub const ALL: [MutationKind; 6] = [
        MutationKind::DropWait,
        MutationKind::RaiseThreshold,
        MutationKind::DropIncrements,
        MutationKind::DelayIncrements,
        MutationKind::ReorderIncrements,
        MutationKind::DropRearm,
    ];

    /// Stable kebab-case label (report keys, CI assertions).
    pub fn label(&self) -> &'static str {
        match self {
            MutationKind::DropWait => "drop-wait",
            MutationKind::RaiseThreshold => "raise-threshold",
            MutationKind::DropIncrements => "drop-increments",
            MutationKind::DelayIncrements => "delay-increments",
            MutationKind::ReorderIncrements => "reorder-increments",
            MutationKind::DropRearm => "drop-rearm",
        }
    }
}

impl fmt::Display for MutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The execute paths a plan can run through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecPath {
    /// `OverlapPlan::execute_with` — one plan, one shot.
    Single,
    /// `Pipeline::execute_with` — chained layers, ping-ponged tables.
    Pipeline,
    /// `execute_sequence` — chained batches, ping-ponged tables.
    Sequence,
}

impl ExecPath {
    /// Every execute path.
    pub const ALL: [ExecPath; 3] = [ExecPath::Single, ExecPath::Pipeline, ExecPath::Sequence];

    /// Stable label.
    pub fn label(&self) -> &'static str {
        match self {
            ExecPath::Single => "single",
            ExecPath::Pipeline => "pipeline",
            ExecPath::Sequence => "sequence",
        }
    }
}

impl fmt::Display for ExecPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The primary verdict of a conformance cell — the strongest guarantee
/// the suite makes about the `(mutation, path)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// `planverify` proves the mutated schedule unsafe from plan data
    /// alone, before execution.
    CaughtStatic,
    /// Static analysis is provably blind to it (the model is clock-free),
    /// but a dynamic detector (SimSan or the watchdog) reports it at run
    /// time; the reason names the detector.
    CaughtDynamic(&'static str),
    /// The mutation provably cannot corrupt results; the reason is the
    /// machine-checked argument.
    Benign(&'static str),
    /// The mutation has no meaning on this path; the reason says why.
    NotApplicable(&'static str),
}

impl Expectation {
    /// Stable verdict label.
    pub fn label(&self) -> &'static str {
        match self {
            Expectation::CaughtStatic => "caught-static",
            Expectation::CaughtDynamic(_) => "caught-dynamic",
            Expectation::Benign(_) => "benign",
            Expectation::NotApplicable(_) => "not-applicable",
        }
    }

    /// The reason attached to non-caught-static verdicts.
    pub fn reason(&self) -> Option<&'static str> {
        match self {
            Expectation::CaughtStatic => None,
            Expectation::CaughtDynamic(r)
            | Expectation::Benign(r)
            | Expectation::NotApplicable(r) => Some(r),
        }
    }
}

/// How the *dynamic* layer (SimSan, the watchdog) sees the cell —
/// secondary evidence alongside the primary [`Expectation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicCoverage {
    /// A runtime seam exists and the dynamic detector always reports it.
    Caught(&'static str),
    /// A runtime seam exists but detection needs an observability
    /// condition; the id names the registered [`Caveat`].
    Conditional(&'static str),
    /// No runtime seam reaches this path; the reason says why.
    None(&'static str),
    /// The mutation is benign, so there is nothing to detect.
    Benign,
}

impl DynamicCoverage {
    /// Stable label.
    pub fn label(&self) -> &'static str {
        match self {
            DynamicCoverage::Caught(_) => "caught",
            DynamicCoverage::Conditional(_) => "conditional",
            DynamicCoverage::None(_) => "none",
            DynamicCoverage::Benign => "benign",
        }
    }

    /// The caveat id, for conditional coverage.
    pub fn caveat(&self) -> Option<&'static str> {
        match self {
            DynamicCoverage::Conditional(id) => Some(id),
            _ => None,
        }
    }
}

/// One cell of the conformance matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixCell {
    /// The mutation kind.
    pub mutation: MutationKind,
    /// The execute path.
    pub path: ExecPath,
    /// Primary verdict.
    pub expected: Expectation,
    /// Secondary dynamic-layer evidence.
    pub dynamic: DynamicCoverage,
}

/// A machine-checked dynamic-observability caveat: a condition under
/// which the dynamic checker is a *true negative* while the static
/// verifier still catches the mutation. Each entry is exercised by a
/// conformance test of the same id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Caveat {
    /// Stable id, referenced by [`DynamicCoverage::Conditional`] cells
    /// and by the test that exercises it.
    pub id: &'static str,
    /// What the condition is and why static analysis is unaffected.
    pub summary: &'static str,
}

/// The registered caveats.
pub fn caveats() -> &'static [Caveat] {
    &[
        Caveat {
            id: "wave-collapse",
            summary: "with comm_sms > 0 a small schedule's planned waves can collapse into one \
                      runtime wave, closing the use-before-signal window a dropped wait would \
                      open — SimSan's miss is a true negative; planverify catches the dropped \
                      wait from plan data regardless",
        },
        Caveat {
            id: "zero-payload-group",
            summary: "a group with no communicated payload schedules neither wait nor \
                      collective, so wait mutations aimed at it are no-ops for both the static \
                      and the dynamic checker",
        },
        Caveat {
            id: "sequence-edge-observability",
            summary: "a dropped cross-batch rearm edge is dynamically observable only when the \
                      producing batch is compute-bound enough to leave the stale-count window \
                      open; planverify flags the missing reset unconditionally",
        },
    ]
}

/// The full conformance matrix: every registered mutation kind crossed
/// with every execute path, classified. Exhaustive by construction —
/// iteration over [`MutationKind::ALL`] × [`ExecPath::ALL`].
pub fn conformance_matrix() -> Vec<MatrixCell> {
    let mut cells = Vec::with_capacity(MutationKind::ALL.len() * ExecPath::ALL.len());
    for kind in MutationKind::ALL {
        for path in ExecPath::ALL {
            cells.push(MatrixCell {
                mutation: kind,
                path,
                expected: expected(kind, path),
                dynamic: dynamic(kind, path),
            });
        }
    }
    cells
}

fn expected(kind: MutationKind, path: ExecPath) -> Expectation {
    match (kind, path) {
        (MutationKind::DropWait | MutationKind::RaiseThreshold, _) => Expectation::CaughtStatic,
        (MutationKind::DropIncrements, _) => Expectation::CaughtStatic,
        (MutationKind::DelayIncrements, _) => Expectation::CaughtDynamic(
            "the model is clock-free — a delay changes no counting-table total; the watchdog \
             catches the starved group (or chain segment) past its predictor-derived deadline \
             and recovers via tail collectives",
        ),
        (MutationKind::ReorderIncrements, _) => Expectation::Benign(
            "increments are commutative and a wait observes only the running total, never the \
             order — the totals-only model makes any permutation a structural no-op",
        ),
        (MutationKind::DropRearm, ExecPath::Single) => Expectation::NotApplicable(
            "a single-shot execution never reuses a counting table, so there is no rearm chain \
             to drop",
        ),
        (MutationKind::DropRearm, _) => Expectation::CaughtStatic,
    }
}

fn dynamic(kind: MutationKind, path: ExecPath) -> DynamicCoverage {
    match (kind, path) {
        (MutationKind::DropWait, _) => DynamicCoverage::Conditional("wave-collapse"),
        (MutationKind::RaiseThreshold, _) => {
            DynamicCoverage::Caught("SimSan reports lost-signal + deadlock at drain time")
        }
        (MutationKind::DropIncrements, _) => DynamicCoverage::Caught(
            "the resilient runtime's watchdog escalates (outcome leaves Clean); on chained \
             paths the per-segment FaultPlan arms it and the chain watchdog breaks the wedge",
        ),
        (MutationKind::DelayIncrements, _) => DynamicCoverage::Caught(
            "the watchdog fires once the delay exceeds the per-segment deadline and recovers \
             the group",
        ),
        (MutationKind::ReorderIncrements, _) => DynamicCoverage::Benign,
        (MutationKind::DropRearm, ExecPath::Sequence) => {
            DynamicCoverage::Conditional("sequence-edge-observability")
        }
        (MutationKind::DropRearm, ExecPath::Pipeline) => DynamicCoverage::None(
            "Pipeline::execute_with exposes no edge-deletion knob; the seam is static-only",
        ),
        (MutationKind::DropRearm, ExecPath::Single) => {
            DynamicCoverage::None("no rearm chain exists single-shot")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_exhaustive_and_unique() {
        let cells = conformance_matrix();
        assert_eq!(cells.len(), MutationKind::ALL.len() * ExecPath::ALL.len());
        for kind in MutationKind::ALL {
            for path in ExecPath::ALL {
                assert_eq!(
                    cells
                        .iter()
                        .filter(|c| c.mutation == kind && c.path == path)
                        .count(),
                    1,
                    "cell ({kind}, {path}) must appear exactly once"
                );
            }
        }
    }

    #[test]
    fn every_conditional_cell_names_a_registered_caveat() {
        let ids: Vec<&str> = caveats().iter().map(|c| c.id).collect();
        for cell in conformance_matrix() {
            if let Some(id) = cell.dynamic.caveat() {
                assert!(
                    ids.contains(&id),
                    "cell ({}, {}) references unregistered caveat {id}",
                    cell.mutation,
                    cell.path
                );
            }
        }
    }

    #[test]
    fn every_caveat_is_referenced_or_standalone_documented() {
        // zero-payload-group is exercised by a dedicated conformance test
        // rather than a matrix cell; the other caveats must be reachable
        // from the matrix so they cannot go stale.
        let referenced: Vec<&str> = conformance_matrix()
            .iter()
            .filter_map(|c| c.dynamic.caveat())
            .collect();
        for caveat in caveats() {
            if caveat.id == "zero-payload-group" {
                continue;
            }
            assert!(
                referenced.contains(&caveat.id),
                "caveat {} is registered but unreferenced",
                caveat.id
            );
        }
    }

    #[test]
    fn verdict_classes_are_all_exercised() {
        let cells = conformance_matrix();
        for label in [
            "caught-static",
            "caught-dynamic",
            "benign",
            "not-applicable",
        ] {
            assert!(
                cells.iter().any(|c| c.expected.label() == label),
                "no cell carries verdict {label}"
            );
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MutationKind::DropWait.label(), "drop-wait");
        assert_eq!(ExecPath::Sequence.label(), "sequence");
        assert_eq!(Expectation::CaughtStatic.label(), "caught-static");
        assert_eq!(Expectation::Benign("x").reason(), Some("x"));
    }
}
