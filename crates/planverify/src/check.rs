//! The three static checks over a [`ScheduleModel`].
//!
//! [`verify`] walks the segments in execution order, carrying the
//! residual (un-reset) counting-table state across table reuses, and
//! reports every violation it can prove from the plan data alone:
//!
//! - **Threshold feasibility / deadlock**: a wait whose threshold exceeds
//!   the increments that can ever land on its table slot blocks that
//!   rank's comm stream forever — and, through the collective rendezvous,
//!   every other rank's. Reported with the exact blocked
//!   `(rank, table, group, threshold)`, like the runtime's `StuckWait`.
//! - **Rearm integrity**: a segment that reuses a counting table without
//!   the rearm chain leaves stale counts behind; any stale count lets the
//!   new wait release before this segment's tiles are written.
//! - **Tile-granular races and coverage**: each group's collective reads
//!   only element intervals whose writing tiles are *guaranteed complete*
//!   at release — the tile's group must be at or before the read's group
//!   on the serial comm stream, with a fully-counted wait. Reads of
//!   never-written elements are reported as coverage gaps.

use std::collections::HashMap;
use std::fmt;

use crate::model::{RankModel, ScheduleModel, Segment};

/// Upper bound on reported violations: one corrupt wait can implicate
/// every tile of its group, so reporting is truncated (deterministically,
/// in walk order) once the report is unambiguous.
pub const VIOLATION_CAP: usize = 256;

/// One statically proven schedule defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A wait threshold no scheduled increment total can reach: the comm
    /// stream blocks forever at this wait (and all ranks block at the
    /// group's collective rendezvous).
    UnreachableThreshold {
        /// Segment index.
        segment: usize,
        /// Blocked rank.
        rank: usize,
        /// Counting-table set the wait consults.
        table: usize,
        /// Blocked group.
        group: usize,
        /// The unreachable threshold.
        threshold: u32,
        /// Increments that can ever land on the slot (stale + scheduled).
        available: u32,
    },
    /// A wait threshold below the group's scheduled increments: the
    /// collective can be released while up to `scheduled - threshold`
    /// of the group's tiles are still unwritten.
    EarlyRelease {
        /// Segment index.
        segment: usize,
        /// Rank.
        rank: usize,
        /// Group.
        group: usize,
        /// The under-full threshold.
        threshold: u32,
        /// Increments (tiles) actually scheduled for the group.
        scheduled: u32,
    },
    /// A segment reuses a counting table without the rearm chain: stale
    /// counts from the previous user can satisfy this wait before any of
    /// the segment's tiles are written.
    StaleRearm {
        /// Segment index.
        segment: usize,
        /// Rank.
        rank: usize,
        /// Reused table set.
        table: usize,
        /// Group whose wait the stale counts can release early.
        group: usize,
        /// Stale increments left on the slot.
        stale: u32,
    },
    /// A tile whose write footprint intersects a collective read without
    /// being guaranteed complete when the read's wait releases.
    TileRace {
        /// Segment index.
        segment: usize,
        /// Rank.
        rank: usize,
        /// Group whose collective read races.
        group: usize,
        /// The racing tile (address order).
        tile: u32,
        /// The racing tile's wave group.
        tile_group: usize,
    },
    /// A hierarchical (multi-node) segment with no rank on `node`: the
    /// leader phase of every node-spanning collective rendezvouses with
    /// that node's leader, so the whole segment's comm streams block.
    MissingNodeLeader {
        /// Segment index.
        segment: usize,
        /// The node with no participating rank.
        node: usize,
        /// Nodes the topology declares.
        nodes: usize,
    },
    /// A collective read interval no scheduled tile write covers.
    UncoveredRead {
        /// Segment index.
        segment: usize,
        /// Rank.
        rank: usize,
        /// Group.
        group: usize,
        /// First uncovered element.
        start: usize,
        /// Uncovered element count.
        len: usize,
    },
}

impl Violation {
    /// Stable kebab-case class label (report keys, CI assertions).
    pub fn label(&self) -> &'static str {
        match self {
            Violation::UnreachableThreshold { .. } => "unreachable-threshold",
            Violation::EarlyRelease { .. } => "early-release",
            Violation::StaleRearm { .. } => "stale-rearm",
            Violation::TileRace { .. } => "tile-race",
            Violation::MissingNodeLeader { .. } => "missing-node-leader",
            Violation::UncoveredRead { .. } => "uncovered-read",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnreachableThreshold {
                segment,
                rank,
                table,
                group,
                threshold,
                available,
            } => write!(
                f,
                "segment {segment}: rank {rank} blocks forever on table {table} group {group} \
                 (threshold {threshold}, only {available} increments can ever arrive); all ranks \
                 deadlock at the group's collective rendezvous"
            ),
            Violation::EarlyRelease {
                segment,
                rank,
                group,
                threshold,
                scheduled,
            } => write!(
                f,
                "segment {segment}: rank {rank} group {group} waits for only {threshold} of \
                 {scheduled} scheduled increments — the collective can read unwritten tiles"
            ),
            Violation::StaleRearm {
                segment,
                rank,
                table,
                group,
                stale,
            } => write!(
                f,
                "segment {segment}: rank {rank} reuses table {table} without the rearm chain; \
                 {stale} stale increments can release group {group}'s wait before any tile of \
                 this segment is written"
            ),
            Violation::TileRace {
                segment,
                rank,
                group,
                tile,
                tile_group,
            } => write!(
                f,
                "segment {segment}: rank {rank} group {group}'s collective reads tile {tile} \
                 (group {tile_group}) without a completed-signal guarantee"
            ),
            Violation::MissingNodeLeader {
                segment,
                node,
                nodes,
            } => write!(
                f,
                "segment {segment}: node {node} of {nodes} fields no rank; every node-spanning \
                 collective waits on its leader and the segment's comm streams block"
            ),
            Violation::UncoveredRead {
                segment,
                rank,
                group,
                start,
                len,
            } => write!(
                f,
                "segment {segment}: rank {rank} group {group} reads {len} elements at offset \
                 {start} that no scheduled tile write covers"
            ),
        }
    }
}

/// What the verifier examined — evidence the report covered the model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Segments walked.
    pub segments: usize,
    /// Counter waits checked for feasibility.
    pub waits: usize,
    /// Tile write footprints examined.
    pub tiles: usize,
    /// Collective read intervals checked for races and coverage.
    pub reads: usize,
    /// Node-coverage checks run (segments × nodes on hierarchical
    /// models; zero single-node).
    pub node_checks: usize,
    /// Whether reporting hit [`VIOLATION_CAP`].
    pub truncated: bool,
}

/// Result of [`verify`]: the proven violations (empty for a safe
/// schedule) and the coverage stats.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Proven violations in deterministic walk order (segment, rank,
    /// group).
    pub violations: Vec<Violation>,
    /// Coverage evidence.
    pub stats: VerifyStats,
}

impl VerifyReport {
    /// Whether the schedule is statically safe.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one class.
    pub fn count_of(&self, label: &str) -> usize {
        self.violations
            .iter()
            .filter(|v| v.label() == label)
            .count()
    }
}

/// Verifies a schedule model. Deterministic: identical models yield
/// identical reports.
pub fn verify(model: &ScheduleModel) -> VerifyReport {
    let mut violations = Vec::new();
    let mut stats = VerifyStats {
        segments: model.segments.len(),
        ..VerifyStats::default()
    };
    // Residual per-(table, rank) slot counts left by earlier segments:
    // waits never consume counts, only the rearm chain's reset clears
    // them.
    let mut residual: HashMap<(usize, usize), Vec<u32>> = HashMap::new();
    // Node-coverage pass (hierarchical models only): every node must
    // field at least one rank in every segment, or the leader phase of
    // each node-spanning collective rendezvouses with nobody.
    if !model.node_of.is_empty() {
        let nodes = model.node_of.iter().max().map_or(0, |m| m + 1);
        for (si, seg) in model.segments.iter().enumerate() {
            let mut present = vec![false; nodes];
            for rm in &seg.ranks {
                if let Some(&node) = model.node_of.get(rm.rank) {
                    if let Some(p) = present.get_mut(node) {
                        *p = true;
                    }
                }
            }
            stats.node_checks += nodes;
            for (node, covered) in present.iter().enumerate() {
                if !covered {
                    violations.push(Violation::MissingNodeLeader {
                        segment: si,
                        node,
                        nodes,
                    });
                }
            }
        }
    }
    for (si, seg) in model.segments.iter().enumerate() {
        for rm in &seg.ranks {
            let slot = residual.entry((seg.table, rm.rank)).or_default();
            if seg.rearmed {
                slot.clear();
            }
            let stale_counts = slot.clone();
            check_rank(si, seg, rm, &stale_counts, &mut violations, &mut stats);
            // Deposit this segment's increments for the table's next user.
            for gm in &rm.groups {
                let slot = residual.entry((seg.table, rm.rank)).or_default();
                if slot.len() <= gm.group {
                    slot.resize(gm.group + 1, 0);
                }
                if let Some(c) = slot.get_mut(gm.group) {
                    *c += gm.increments;
                }
            }
        }
    }
    if violations.len() > VIOLATION_CAP {
        violations.truncate(VIOLATION_CAP);
        stats.truncated = true;
    }
    VerifyReport { violations, stats }
}

fn check_rank(
    si: usize,
    seg: &Segment,
    rm: &RankModel,
    stale_counts: &[u32],
    violations: &mut Vec<Violation>,
    stats: &mut VerifyStats,
) {
    stats.tiles += rm.tile_writes.len();
    // Groups whose waits guarantee, at release, that every one of their
    // scheduled tiles has been written (full threshold, clean slot).
    let mut guaranteed: Vec<bool> = Vec::new();
    let mark = |v: &mut Vec<bool>, g: usize, val: bool| {
        if v.len() <= g {
            v.resize(g + 1, false);
        }
        if let Some(s) = v.get_mut(g) {
            *s = val;
        }
    };
    // Once one wait is unreachable, the serial comm stream never reaches
    // later groups: their reads cannot race because they never execute.
    let mut blocked = false;
    for gm in &rm.groups {
        let stale = stale_counts.get(gm.group).copied().unwrap_or(0);
        // A wait-level violation is the root cause; the per-tile race pass
        // would only re-report its symptoms, so it is skipped for the
        // group once one is recorded.
        let mut wait_flagged = false;
        if let Some(threshold) = gm.wait {
            stats.waits += 1;
            if threshold > stale + gm.increments {
                violations.push(Violation::UnreachableThreshold {
                    segment: si,
                    rank: rm.rank,
                    table: seg.table,
                    group: gm.group,
                    threshold,
                    available: stale + gm.increments,
                });
                blocked = true;
            } else if stale > 0 && !gm.reads.is_empty() {
                violations.push(Violation::StaleRearm {
                    segment: si,
                    rank: rm.rank,
                    table: seg.table,
                    group: gm.group,
                    stale,
                });
                wait_flagged = true;
            } else if threshold < gm.increments && !gm.reads.is_empty() {
                violations.push(Violation::EarlyRelease {
                    segment: si,
                    rank: rm.rank,
                    group: gm.group,
                    threshold,
                    scheduled: gm.increments,
                });
                wait_flagged = true;
            } else if threshold >= gm.increments && stale == 0 {
                mark(&mut guaranteed, gm.group, true);
            }
        }
        if blocked || wait_flagged {
            continue;
        }
        for read in &gm.reads {
            if read.len == 0 {
                continue;
            }
            stats.reads += 1;
            // Race pass: every tile whose footprint intersects the read
            // must be guaranteed complete when the wait releases — its
            // group at or before this one on the serial comm stream, with
            // a fully-counted wait.
            let mut covering: Vec<(usize, usize)> = Vec::new();
            for tw in &rm.tile_writes {
                let mut touches = false;
                for iv in &tw.intervals {
                    if iv.overlaps(read) {
                        touches = true;
                        let s = iv.start.max(read.start);
                        let e = iv.end().min(read.end());
                        covering.push((s, e));
                    }
                }
                if !touches {
                    continue;
                }
                let safe =
                    tw.group <= gm.group && guaranteed.get(tw.group).copied().unwrap_or(false);
                if !safe {
                    violations.push(Violation::TileRace {
                        segment: si,
                        rank: rm.rank,
                        group: gm.group,
                        tile: tw.tile,
                        tile_group: tw.group,
                    });
                }
            }
            // Coverage pass: the read must be fully covered by scheduled
            // writes; report the first gap per read.
            covering.sort_unstable();
            let mut cursor = read.start;
            let mut gap: Option<(usize, usize)> = None;
            for (s, e) in covering {
                if s > cursor {
                    gap = Some((cursor, s - cursor));
                    break;
                }
                cursor = cursor.max(e);
            }
            if gap.is_none() && cursor < read.end() {
                gap = Some((cursor, read.end() - cursor));
            }
            if let Some((start, len)) = gap {
                violations.push(Violation::UncoveredRead {
                    segment: si,
                    rank: rm.rank,
                    group: gm.group,
                    start,
                    len,
                });
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::model::{GroupModel, Interval, RankModel, ScheduleModel, Segment, TileWrite};
    use crate::mutation::Mutation;

    /// Two groups, two tiles each, one rank; group regions [0, 32) and
    /// [32, 64).
    fn model(segments: usize, rearm_from_second: bool) -> ScheduleModel {
        let mk_segment = |i: usize| {
            let tile_writes = (0..4u32)
                .map(|t| TileWrite {
                    tile: t,
                    group: (t / 2) as usize,
                    intervals: vec![Interval::new(t as usize * 16, 16)],
                })
                .collect();
            let groups = (0..2)
                .map(|g| GroupModel {
                    group: g,
                    wait: Some(2),
                    increments: 2,
                    reads: vec![Interval::new(g * 32, 32)],
                })
                .collect();
            Segment {
                label: format!("batch {i}"),
                table: i % 2,
                rearmed: i >= 2 && rearm_from_second,
                ranks: vec![RankModel {
                    rank: 0,
                    tile_writes,
                    groups,
                }],
            }
        };
        ScheduleModel {
            n_ranks: 1,
            node_of: Vec::new(),
            segments: (0..segments).map(mk_segment).collect(),
        }
    }

    #[test]
    fn clean_single_segment_verifies() {
        let report = verify(&model(1, true));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.stats.waits, 2);
        assert_eq!(report.stats.reads, 2);
        assert_eq!(report.stats.tiles, 4);
    }

    #[test]
    fn clean_rearmed_chain_verifies() {
        let report = verify(&model(4, true));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.stats.segments, 4);
    }

    #[test]
    fn dropped_wait_races_every_tile_of_the_group() {
        let mut m = model(1, true);
        m.apply(&Mutation::DropWait { rank: 0, group: 1 }, 0);
        let report = verify(&m);
        assert_eq!(report.count_of("tile-race"), 2, "{:?}", report.violations);
        assert!(report
            .violations
            .iter()
            .all(|v| matches!(v, Violation::TileRace { group: 1, .. })));
    }

    #[test]
    fn raised_threshold_is_an_unreachable_deadlock() {
        let mut m = model(1, true);
        m.apply(&Mutation::RaiseThreshold { rank: 0, group: 0 }, 0);
        let report = verify(&m);
        assert_eq!(report.count_of("unreachable-threshold"), 1);
        assert!(
            report.count_of("tile-race") == 0,
            "groups behind the blocked wait never execute: {:?}",
            report.violations
        );
        match &report.violations[0] {
            Violation::UnreachableThreshold {
                rank,
                group,
                available,
                ..
            } => {
                assert_eq!((*rank, *group, *available), (0, 0, 2));
            }
            v => panic!("wrong class: {v:?}"),
        }
    }

    #[test]
    fn dropped_increments_make_the_threshold_unreachable() {
        let mut m = model(1, true);
        m.apply(
            &Mutation::DropIncrements {
                rank: 0,
                group: 1,
                count: 1,
            },
            0,
        );
        let report = verify(&m);
        assert_eq!(report.count_of("unreachable-threshold"), 1);
    }

    #[test]
    fn lowered_threshold_is_an_early_release() {
        let mut m = model(1, true);
        m.segments[0].ranks[0].groups[1].wait = Some(1);
        let report = verify(&m);
        assert_eq!(report.count_of("early-release"), 1);
    }

    #[test]
    fn missing_rearm_is_flagged_on_table_reuse() {
        let mut m = model(3, true);
        m.apply(&Mutation::DropRearm, 2);
        let report = verify(&m);
        // Batch 2 reuses batch 0's table without a reset: both groups'
        // waits can release on stale counts.
        assert_eq!(report.count_of("stale-rearm"), 2, "{:?}", report.violations);
        assert!(report.violations.iter().all(|v| matches!(
            v,
            Violation::StaleRearm {
                segment: 2,
                table: 0,
                stale: 2,
                ..
            }
        )));
    }

    #[test]
    fn first_use_of_each_table_needs_no_rearm() {
        // Segments 0 and 1 have rearmed == false but touch fresh tables.
        let report = verify(&model(2, true));
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn cross_group_write_into_a_read_region_races() {
        let mut m = model(1, true);
        // Tile 3 (group 1) also scribbles into group 0's region.
        m.segments[0].ranks[0].tile_writes[3]
            .intervals
            .push(Interval::new(8, 4));
        let report = verify(&m);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::TileRace {
                group: 0,
                tile: 3,
                tile_group: 1,
                ..
            }
        )));
    }

    #[test]
    fn uncovered_read_is_reported_with_the_gap() {
        let mut m = model(1, true);
        // Group 1's second tile never writes its half.
        m.segments[0].ranks[0].tile_writes[3].intervals.clear();
        let report = verify(&m);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::UncoveredRead {
                group: 1,
                start: 48,
                len: 16,
                ..
            }
        )));
    }

    #[test]
    fn zero_payload_group_skips_wait_and_reads() {
        let mut m = model(1, true);
        m.segments[0].ranks[0].groups[1].wait = None;
        m.segments[0].ranks[0].groups[1].reads.clear();
        // Tiles of a zero-payload group still increment the counter; with
        // no wait and no reads there is nothing to violate.
        let report = verify(&m);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    /// The single-rank model spread over a two-node map: rank 0 on node
    /// 0 and a phantom second node with no ranks unless `covered`.
    fn hierarchical_model(covered: bool) -> ScheduleModel {
        let mut m = model(1, true);
        m.node_of = if covered {
            vec![0] // one node, one rank: trivially covered
        } else {
            vec![0, 1] // declares rank 1 on node 1, but no segment fields it
        };
        m.n_ranks = m.node_of.len();
        m
    }

    #[test]
    fn covered_hierarchical_model_verifies() {
        let report = verify(&hierarchical_model(true));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.stats.node_checks, 1);
    }

    #[test]
    fn node_without_ranks_is_a_missing_leader() {
        let report = verify(&hierarchical_model(false));
        assert_eq!(
            report.count_of("missing-node-leader"),
            1,
            "{:?}",
            report.violations
        );
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::MissingNodeLeader {
                segment: 0,
                node: 1,
                nodes: 2,
            }
        )));
        assert_eq!(report.stats.node_checks, 2);
    }

    #[test]
    fn single_node_models_skip_the_node_pass() {
        let report = verify(&model(1, true));
        assert_eq!(report.stats.node_checks, 0);
    }

    #[test]
    fn reporting_truncates_deterministically() {
        let mut m = model(1, true);
        // One huge group with hundreds of tiles and no wait.
        let tiles: Vec<TileWrite> = (0..(VIOLATION_CAP as u32 + 50))
            .map(|t| TileWrite {
                tile: t,
                group: 0,
                intervals: vec![Interval::new(t as usize * 4, 4)],
            })
            .collect();
        let total = tiles.len() * 4;
        m.segments[0].ranks[0].tile_writes = tiles;
        m.segments[0].ranks[0].groups = vec![GroupModel {
            group: 0,
            wait: None,
            increments: VIOLATION_CAP as u32 + 50,
            reads: vec![Interval::new(0, total)],
        }];
        let a = verify(&m);
        let b = verify(&m);
        assert!(a.stats.truncated);
        assert_eq!(a.violations.len(), VIOLATION_CAP);
        assert_eq!(a.violations, b.violations);
    }
}
