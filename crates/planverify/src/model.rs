//! The symbolic schedule model the checks run over.
//!
//! A [`ScheduleModel`] is the signal/wait/event dependency structure of an
//! overlapped execution, lowered straight from plan data: per rank and
//! per wave group, the wait threshold guarding the group's collective,
//! the counting-table increments scheduled for it, the element intervals
//! the collective reads, and the per-tile write footprints of the
//! reordered GEMM epilogue. Chained executions (`Pipeline` layers,
//! `execute_sequence` batches) become one [`Segment`] each, carrying the
//! counting-table set they use (ping-pong parity) and whether the rearm
//! chain — wait on the previous user's comm-done, reset, ready-event —
//! is present.
//!
//! The model is *order-free and clock-free on purpose*: it tracks
//! increment totals, never issue order or timing. That makes two of the
//! registry's mutations benign by construction ([`Mutation::
//! ReorderIncrements`] permutes what the model does not represent;
//! [`Mutation::DelayIncrements`] shifts a clock the model does not have)
//! — which is exactly the claim the conformance matrix documents.

use crate::mutation::Mutation;
use crate::shadow;

/// The threshold inflation the runtime's `RaiseThreshold` mutation
/// applies; mirrored here so the static model mutates identically.
pub const RAISE_DELTA: u32 = 1_000_000;

/// A half-open element interval `[start, start + len)` in a rank's packed
/// send buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First element.
    pub start: usize,
    /// Element count.
    pub len: usize,
}

impl Interval {
    /// Creates an interval.
    pub fn new(start: usize, len: usize) -> Self {
        Interval { start, len }
    }

    /// One past the last element.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// Whether the intervals intersect (empty intervals intersect
    /// nothing).
    pub fn overlaps(&self, other: &Interval) -> bool {
        shadow::ranges_overlap(self.start, self.end(), other.start, other.end())
    }
}

/// The packed-buffer write footprint of one reordered GEMM tile.
#[derive(Debug, Clone)]
pub struct TileWrite {
    /// Address-order tile index.
    pub tile: u32,
    /// The wave group whose counting-table slot this tile increments.
    pub group: usize,
    /// Element intervals the tile's epilogue writes (one for whole-tile
    /// mappings, one per destination subtile or token row otherwise).
    pub intervals: Vec<Interval>,
}

/// One wave group's signaling contract on one rank.
#[derive(Debug, Clone)]
pub struct GroupModel {
    /// Group id (ascending within a rank — comm-stream issue order).
    pub group: usize,
    /// The `WaitCounter` threshold guarding this group's collective, or
    /// `None` when no wait is scheduled (zero-payload groups schedule
    /// neither wait nor collective).
    pub wait: Option<u32>,
    /// Counting-table increments scheduled for this group in this
    /// segment (one per tile of the group).
    pub increments: u32,
    /// Element intervals the group's collective reads from the packed
    /// buffer once the wait releases.
    pub reads: Vec<Interval>,
}

/// One rank's schedule within a segment.
#[derive(Debug, Clone)]
pub struct RankModel {
    /// Rank (device) id.
    pub rank: usize,
    /// Write footprints of every tile of the GEMM.
    pub tile_writes: Vec<TileWrite>,
    /// Per-group contracts, ascending by group id.
    pub groups: Vec<GroupModel>,
}

/// One chained execution unit — the whole plan for a single-shot
/// execution, a layer of a `Pipeline`, or a batch of `execute_sequence`.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Human-readable position ("plan", "layer 2", "batch 5").
    pub label: String,
    /// Counting-table set the segment signals through (ping-pong parity
    /// for chains; always 0 single-shot).
    pub table: usize,
    /// Whether the rearm chain (wait on the table's previous user →
    /// `ResetCounter` → ready-event → comm-stream wait) is present. Only
    /// meaningful when the table was used by an earlier segment.
    pub rearmed: bool,
    /// Per-rank schedules.
    pub ranks: Vec<RankModel>,
}

/// The full symbolic model of one (possibly chained) overlapped
/// execution.
#[derive(Debug, Clone)]
pub struct ScheduleModel {
    /// Participating ranks.
    pub n_ranks: usize,
    /// Node of each rank on a hierarchical (multi-node) schedule; empty
    /// for single-node models. When non-empty, the verifier additionally
    /// proves node coverage: every node must field at least one rank per
    /// segment, because the hierarchical collective's leader phase
    /// rendezvouses across nodes — a node with no ranks wedges every
    /// node-spanning collective of the segment.
    pub node_of: Vec<usize>,
    /// Segments in execution order.
    pub segments: Vec<Segment>,
}

impl ScheduleModel {
    /// Applies a registry mutation to `segment`, mirroring what the
    /// corresponding runtime seam does to the executed schedule.
    ///
    /// [`Mutation::DelayIncrements`] and [`Mutation::ReorderIncrements`]
    /// are no-ops by construction — the model carries neither a clock nor
    /// an issue order — which is the machine-checked form of their
    /// "documented benign" verdicts.
    ///
    /// # Panics
    ///
    /// Panics if the targeted segment, rank, or group does not exist in
    /// the model; the conformance driver always aims at real targets.
    pub fn apply(&mut self, mutation: &Mutation, segment: usize) {
        let seg = self
            .segments
            .get_mut(segment)
            .expect("mutation targets an existing segment");
        match *mutation {
            Mutation::DropWait { rank, group } => {
                *Self::wait_slot(seg, rank, group) = None;
            }
            Mutation::RaiseThreshold { rank, group } => {
                let wait = Self::wait_slot(seg, rank, group);
                *wait = wait.map(|t| t + RAISE_DELTA);
            }
            Mutation::DropIncrements { rank, group, count } => {
                let gm = Self::group_slot(seg, rank, group);
                gm.increments = gm.increments.saturating_sub(count);
            }
            // Timing-only: the model has no clock, so a delayed increment
            // changes nothing it represents.
            Mutation::DelayIncrements { .. } => {}
            // Order-only: the model tracks increment totals, never issue
            // order, so any permutation is definitionally invisible.
            Mutation::ReorderIncrements { .. } => {}
            Mutation::DropRearm => {
                seg.rearmed = false;
            }
        }
    }

    fn group_slot(seg: &mut Segment, rank: usize, group: usize) -> &mut GroupModel {
        seg.ranks
            .get_mut(rank)
            .expect("mutation targets an existing rank")
            .groups
            .iter_mut()
            .find(|g| g.group == group)
            .expect("mutation targets an existing group")
    }

    fn wait_slot(seg: &mut Segment, rank: usize, group: usize) -> &mut Option<u32> {
        &mut Self::group_slot(seg, rank, group).wait
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;

    /// A minimal clean two-group, one-rank, one-segment model.
    pub(crate) fn tiny_model() -> ScheduleModel {
        let tile_writes = vec![
            TileWrite {
                tile: 0,
                group: 0,
                intervals: vec![Interval::new(0, 16)],
            },
            TileWrite {
                tile: 1,
                group: 1,
                intervals: vec![Interval::new(16, 16)],
            },
        ];
        let groups = vec![
            GroupModel {
                group: 0,
                wait: Some(1),
                increments: 1,
                reads: vec![Interval::new(0, 16)],
            },
            GroupModel {
                group: 1,
                wait: Some(1),
                increments: 1,
                reads: vec![Interval::new(16, 16)],
            },
        ];
        ScheduleModel {
            n_ranks: 1,
            node_of: Vec::new(),
            segments: vec![Segment {
                label: "plan".into(),
                table: 0,
                rearmed: false,
                ranks: vec![RankModel {
                    rank: 0,
                    tile_writes,
                    groups,
                }],
            }],
        }
    }

    #[test]
    fn apply_drop_wait_clears_the_threshold() {
        let mut m = tiny_model();
        m.apply(&Mutation::DropWait { rank: 0, group: 1 }, 0);
        let seg = &m.segments[0];
        assert_eq!(seg.ranks[0].groups[1].wait, None);
        assert_eq!(seg.ranks[0].groups[0].wait, Some(1), "other group intact");
    }

    #[test]
    fn apply_raise_threshold_inflates_like_the_runtime() {
        let mut m = tiny_model();
        m.apply(&Mutation::RaiseThreshold { rank: 0, group: 0 }, 0);
        assert_eq!(m.segments[0].ranks[0].groups[0].wait, Some(1 + RAISE_DELTA));
    }

    #[test]
    fn timing_and_order_mutations_are_noops_by_construction() {
        let clean = tiny_model();
        let mut delayed = tiny_model();
        delayed.apply(
            &Mutation::DelayIncrements {
                rank: 0,
                group: 0,
                count: 1,
            },
            0,
        );
        let mut reordered = tiny_model();
        reordered.apply(&Mutation::ReorderIncrements { rank: 0 }, 0);
        // Structural equality via the debug form: the model derives no
        // PartialEq on purpose (it would tempt float-style comparisons on
        // future fields), but the mutation contract is "unchanged".
        assert_eq!(format!("{clean:?}"), format!("{delayed:?}"));
        assert_eq!(format!("{clean:?}"), format!("{reordered:?}"));
    }

    #[test]
    fn drop_rearm_clears_the_segment_flag() {
        let mut m = tiny_model();
        m.segments[0].rearmed = true;
        m.apply(&Mutation::DropRearm, 0);
        assert!(!m.segments[0].rearmed);
    }
}
