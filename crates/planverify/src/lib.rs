//! Static verification of FlashOverlap signal/wait schedules.
//!
//! The paper's mechanism (§3.2.4/§3.3) gates each wave group's collective
//! on a counting-table threshold that the reordered GEMM epilogue
//! increments tile by tile. Whether such a schedule preserves the
//! dependences of the unfused program is a property of the *plan data*,
//! not of any particular simulated interleaving — so this crate checks it
//! symbolically, before a single simulated cycle runs:
//!
//! 1. **Threshold feasibility** ([`check`]): every wait threshold is
//!    exactly reachable from the increments scheduled on its counting
//!    table — an unreachable threshold is a guaranteed deadlock (reported
//!    with the blocked `(rank, table, group, threshold)` like the
//!    runtime's `StuckWait`), and an under-full threshold releases the
//!    collective before every contributing tile landed.
//! 2. **Deadlock freedom**: the wait graph (counter waits, the serial
//!    per-rank comm stream, collective rendezvous, and the cross-segment
//!    rearm edges `wait prev-user → reset → ready-event`) is acyclic by
//!    construction for linear chains, so the deadlock class reduces to
//!    unreachable thresholds plus *missing rearm edges* — a reused table
//!    whose stale counts satisfy the next user's wait early.
//! 3. **Tile-granular race freedom**: per-tile element-interval conflict
//!    sets between reordered GEMM writes and the collective reads each
//!    wait guards, at the mapping's true granularity (whole slots,
//!    per-destination subtiles, per-token row slices).
//!
//! The [`shadow`] module is the conflict predicate shared with SimSan's
//! dynamic checker, and [`mutation`] is the unified registry behind the
//! protocol-conformance matrix (every mutation × every execute path is
//! caught statically, caught dynamically, or documented benign).
//!
//! The crate is deliberately free of simulator and runtime dependencies:
//! `flashoverlap` lowers its plans into a [`model::ScheduleModel`] and
//! every other consumer (tuner, serving cache, CLI) verifies through
//! that seam.

#![warn(missing_docs)]
#![warn(clippy::indexing_slicing)]

pub mod check;
pub mod model;
pub mod mutation;
pub mod shadow;

pub use check::{verify, VerifyReport, VerifyStats, Violation};
pub use model::{GroupModel, Interval, RankModel, ScheduleModel, Segment, TileWrite};
pub use mutation::{
    caveats, conformance_matrix, Caveat, DynamicCoverage, ExecPath, Expectation, MatrixCell,
    Mutation, MutationKind,
};
pub use shadow::{may_conflict, ranges_overlap};
