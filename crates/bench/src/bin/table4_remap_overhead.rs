//! Table 4 — latency increase from fusing the remapping into an RMSNorm
//! kernel.
//!
//! §6.5: the post-communication reordering is fused as a gather into the
//! next element-wise kernel (RMSNorm). The fused kernel's irregular loads
//! cost 3-13% extra latency depending on the remap granularity
//! (tile / subtile / token) and the GPU.

use gpu_sim::arch::{GpuArch, RemapGranularity};
use gpu_sim::elementwise::{ElementwiseKernel, ElementwiseOp, Gather};
use gpu_sim::stream::enqueue;
use gpu_sim::{Cluster, ClusterSim};
use sim::Sim;
use std::rc::Rc;

/// Simulated RMSNorm latency over a `rows x cols` fp16 operand, with an
/// optional fused remap at the given granularity.
fn rmsnorm_latency_ns(arch: &GpuArch, remap: Option<RemapGranularity>) -> u64 {
    let (rows, cols) = (4096usize, 8192usize);
    let mut world = Cluster::new(1, arch.clone(), false, 1);
    let mut sim: ClusterSim = Sim::new();
    let dev = &mut world.devices[0];
    let input = dev.mem.alloc(rows * cols);
    let output = dev.mem.alloc(rows * cols);
    let stream = dev.create_stream();
    let kernel = ElementwiseKernel {
        input,
        output,
        rows,
        cols,
        op: ElementwiseOp::RmsNorm {
            weight: Rc::new(vec![1.0; cols]),
            eps: 1e-6,
        },
        gather: Gather::None,
        remap_cost: remap,
    };
    enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
    sim.run(&mut world).expect("run").as_nanos()
}

fn main() {
    println!("Table 4 reproduction: remap fusion overhead in RMSNorm");
    println!("(4096 x 8192 fp16 operand; overhead vs plain RMSNorm)\n");
    let mut rows = Vec::new();
    for arch in [GpuArch::a800(), GpuArch::rtx4090()] {
        let plain = rmsnorm_latency_ns(&arch, None);
        let mut row = vec![arch.name.to_string()];
        for granularity in [
            RemapGranularity::Tile,
            RemapGranularity::Subtile,
            RemapGranularity::Token,
        ] {
            let fused = rmsnorm_latency_ns(&arch, Some(granularity));
            let overhead = (fused as f64 / plain as f64 - 1.0) * 100.0;
            row.push(format!("{overhead:.2}%"));
        }
        rows.push(row);
    }
    println!(
        "{}",
        bench::render_table(&["GPU", "Tile", "Subtile", "Token"], &rows)
    );
    println!("paper (Table 4):");
    println!(
        "{}",
        bench::render_table(
            &["GPU", "Tile", "Subtile", "Token"],
            &[
                vec![
                    "A800".into(),
                    "9.27%".into(),
                    "12.6%".into(),
                    "13.4%".into()
                ],
                vec![
                    "RTX4090".into(),
                    "5.76%".into(),
                    "3.43%".into(),
                    "7.07%".into()
                ],
            ]
        )
    );
    println!(
        "Note: the run-length gather model reproduces the 3-13% band; the\n\
         paper's per-cell ordering on RTX4090 (subtile < tile) reflects\n\
         implementation details the model does not capture (see DESIGN.md)."
    );
}
