//! Ablation — the design-space pruning bounds `S_1` / `S_P` (§4.1.4).
//!
//! The paper constrains the first group to at most `S_1 = 2` waves and
//! the last to at most `S_P = 4` "to avoid the cold start and the long
//! tail", without reporting sensitivity. This sweep measures, for a
//! shape grid, how search quality (achieved / exhaustive-optimal) and
//! candidate count change with the bounds.

use bench::parallel_map;
use collectives::Primitive;
use flashoverlap::runtime::CommPattern;
use flashoverlap::{exhaustive_search, measure_partition, predictive_search_with, SystemSpec};
use gpu_sim::gemm::GemmDims;

fn shapes() -> Vec<GemmDims> {
    let mut out = Vec::new();
    for m in [2048u32, 4096] {
        for n in [4096u32, 8192] {
            for k in [2048u32, 4096, 8192, 16384] {
                let tiles = (m.div_ceil(256) * n.div_ceil(128)) as u64;
                if (200..=1200).contains(&tiles) {
                    out.push(GemmDims::new(m, n, k));
                }
            }
        }
    }
    out
}

fn main() {
    println!("Ablation: S1/SP pruning bounds (AllReduce, 4x RTX4090)");
    let system = SystemSpec::rtx4090(4);
    let pattern = CommPattern::AllReduce;
    let shapes = shapes();
    println!("{} shapes, exhaustive oracle per shape\n", shapes.len());

    // Oracle once per shape.
    let optima = parallel_map(shapes.clone(), |&dims| {
        exhaustive_search(dims, &pattern, &system)
            .expect("exhaustive")
            .latency
    });

    let mut rows = Vec::new();
    for (s1, sp) in [(1u32, 1u32), (1, 2), (2, 4), (4, 8), (8, 16)] {
        let results = parallel_map(shapes.clone(), |&dims| {
            let outcome = predictive_search_with(dims, Primitive::AllReduce, &system, s1, sp);
            let actual =
                measure_partition(dims, &pattern, &system, outcome.partition).expect("measure");
            (outcome.evaluated, actual)
        });
        let avg_candidates: f64 =
            results.iter().map(|r| r.0 as f64).sum::<f64>() / results.len() as f64;
        let quality: Vec<f64> = results
            .iter()
            .zip(&optima)
            .map(|((_, actual), opt)| opt.as_nanos() as f64 / actual.as_nanos() as f64)
            .collect();
        let avg_quality = quality.iter().sum::<f64>() / quality.len() as f64;
        let worst = quality.iter().cloned().fold(f64::INFINITY, f64::min);
        rows.push(vec![
            format!("S1={s1}, SP={sp}"),
            format!("{avg_candidates:.0}"),
            format!("{:.2}%", avg_quality * 100.0),
            format!("{:.2}%", worst * 100.0),
        ]);
    }
    println!(
        "{}",
        bench::render_table(
            &["bounds", "avg candidates", "avg of optimal", "worst"],
            &rows
        )
    );
    println!(
        "The paper's (2,4) sits at the knee: ~2-4x fewer candidates than\n\
         looser bounds at essentially the same achieved quality."
    );
}
