//! Ablation — what reordering buys (§3.3).
//!
//! Without the pre-communication reordering, a group's finished tiles sit
//! at incontiguous addresses: each maximal run of address-consecutive
//! tiles needs its own NCCL call. This ablation takes tuned FlashOverlap
//! plans and compares the communication cost of (a) one call per group
//! over the packed region (with reordering) against (b) one call per
//! contiguous tile run (without reordering — charitably assuming each run
//! could be sent as one call at all), using the same fabric cost model.

use collectives::{collective_duration, Primitive, BYTES_PER_ELEM};
use flashoverlap::runtime::CommPattern;
use flashoverlap::{OverlapPlan, SystemSpec};
use gpu_sim::gemm::GemmDims;
use sim::SimDuration;

fn main() {
    println!("Ablation: reordering vs segmented (no-reorder) communication");
    println!("(GEMM+AllReduce, tuned wave partitions)\n");
    let mut rows = Vec::new();
    for (system, dims) in [
        (SystemSpec::rtx4090(4), GemmDims::new(4096, 8192, 8192)),
        (SystemSpec::rtx4090(4), GemmDims::new(8192, 8192, 4096)),
        (SystemSpec::rtx4090(8), GemmDims::new(4096, 8192, 8192)),
        (SystemSpec::a800(4), GemmDims::new(2048, 8192, 8192)),
    ] {
        let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system.clone()).expect("plan");
        let mapping = plan.tile_mapping().expect("AllReduce uses tile mapping");
        let grid = *mapping.grid();
        let n = system.n_gpus;

        let mut reordered = SimDuration::ZERO;
        let mut segmented = SimDuration::ZERO;
        let mut total_segments = 0usize;
        for g in 0..mapping.layout.num_groups() {
            let (_, count) = mapping.group_regions[g];
            reordered += collective_duration(
                Primitive::AllReduce,
                count as u64 * BYTES_PER_ELEM,
                n,
                &system.fabric,
            );
            // Without reordering: maximal runs of address-consecutive
            // tiles, each one call.
            let mut tiles: Vec<u32> = mapping.layout.group_tiles(g).collect();
            tiles.sort_unstable();
            let mut run_start = 0usize;
            for i in 1..=tiles.len() {
                if i == tiles.len() || tiles[i] != tiles[i - 1] + 1 {
                    let run_elems: u64 = tiles[run_start..i]
                        .iter()
                        .map(|&t| grid.tile_elems(t))
                        .sum();
                    segmented += collective_duration(
                        Primitive::AllReduce,
                        run_elems * BYTES_PER_ELEM,
                        n,
                        &system.fabric,
                    );
                    total_segments += 1;
                    run_start = i;
                }
            }
        }
        rows.push(vec![
            format!("{} x{}", system.fabric.name, n),
            format!("{}x{}x{}", dims.m, dims.n, dims.k),
            plan.partition.to_string(),
            format!("{reordered}"),
            format!("{segmented} ({total_segments} calls)"),
            format!(
                "{:.2}x",
                segmented.as_nanos() as f64 / reordered.as_nanos() as f64
            ),
        ]);
    }
    println!(
        "{}",
        bench::render_table(
            &[
                "system",
                "shape",
                "partition",
                "comm (reordered)",
                "comm (segmented)",
                "penalty"
            ],
            &rows
        )
    );
    println!(
        "Reordering turns each group into one contiguous call; without it,\n\
         swizzled completion order fragments every group into many small\n\
         calls on the bandwidth cliff (Fig. 8) — the contiguity argument\n\
         of Sec. 3.3.1."
    );
}
