//! Ablation — sensitivity to the communication SM footprint.
//!
//! NCCL-style collectives occupy a constant number of SMs (§4.2.1), and
//! FlashOverlap gives communication priority (§4.1.4): every SM the
//! collective holds is a slower wave for the concurrent GEMM. This
//! ablation sweeps the footprint to expose the contention cost the
//! predictor's wave-width adjustment accounts for.

use baselines::{measure, Method};
use bench::speedup;
use flashoverlap::runtime::CommPattern;
use flashoverlap::SystemSpec;
use gpu_sim::gemm::GemmDims;

fn main() {
    println!("Ablation: communication SM footprint (GEMM+AllReduce)");
    for (name, base_system, dims) in [
        (
            "RTX4090 x4, balanced shape",
            SystemSpec::rtx4090(4),
            GemmDims::new(4096, 8192, 16384),
        ),
        (
            "A800 x4, compute-bound shape",
            SystemSpec::a800(4),
            GemmDims::new(4096, 8192, 8192),
        ),
    ] {
        println!("\n{name} ({}x{}x{}):", dims.m, dims.n, dims.k);
        let mut rows = Vec::new();
        for comm_sms in [4u32, 8, 16, 32, 64] {
            let system = base_system.clone().with_comm_sms(comm_sms);
            let base = measure(Method::NonOverlap, dims, &CommPattern::AllReduce, &system)
                .expect("baseline");
            let fo = measure(Method::FlashOverlap, dims, &CommPattern::AllReduce, &system)
                .expect("flashoverlap");
            let sp = speedup(base.as_nanos(), fo.as_nanos());
            rows.push(vec![
                comm_sms.to_string(),
                format!("{fo}"),
                format!("{sp:.3}x"),
                bench::bar(sp, 1.8, 30),
            ]);
        }
        println!(
            "{}",
            bench::render_table(&["comm SMs", "latency", "speedup", ""], &rows)
        );
    }
    println!(
        "Larger footprints slow the contended waves; the tuner re-plans\n\
         around it (Alg. 1 line 3), so the speedup degrades gracefully\n\
         rather than collapsing."
    );
}
