//! Extension — GEMM+AllGather overlap.
//!
//! The paper lists AllGather among the NCCL primitives its
//! communication-agnostic design can call (§2.2) but only evaluates
//! AllReduce / ReduceScatter / All-to-All. This extension overlaps the
//! column-parallel GEMM+AllGather pattern (TP layers that keep the
//! gathered activation) with the same tile-level reordering machinery,
//! demonstrating that adding a primitive costs a mapping, not a kernel.

use baselines::{measure, Method};
use bench::{parallel_map, pattern_for, speedup, system_for, SweepStats};
use collectives::Primitive;
use workloads::{table3_shapes, GpuKind};

fn main() {
    println!("Extension: GEMM+AllGather overlap (not plotted in the paper)");
    for gpu in [GpuKind::Rtx4090, GpuKind::A800] {
        // Reuse the platform's ReduceScatter shape grid (AllGather is its
        // dual and moves the same traffic).
        let shapes = table3_shapes(Primitive::ReduceScatter, gpu);
        for &n_gpus in &[2usize, 4] {
            let system = system_for(gpu, n_gpus);
            let rows = parallel_map(shapes.clone(), |&dims| {
                let pattern = pattern_for(Primitive::AllGather, dims, n_gpus, 1);
                let base = measure(Method::NonOverlap, dims, &pattern, &system).expect("baseline");
                let dec = measure(Method::VanillaDecomposition, dims, &pattern, &system)
                    .expect("decomposition");
                let fo =
                    measure(Method::FlashOverlap, dims, &pattern, &system).expect("flashoverlap");
                (
                    speedup(base.as_nanos(), dec.as_nanos()),
                    speedup(base.as_nanos(), fo.as_nanos()),
                )
            });
            let dec: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let fo: Vec<f64> = rows.iter().map(|r| r.1).collect();
            println!("\n{gpu} x{n_gpus} ({} shapes):", shapes.len());
            println!("  VanillaDecomposition: {}", SweepStats::from(&dec));
            println!("  FlashOverlap        : {}", SweepStats::from(&fo));
        }
    }
}
