//! Extension — All-to-All under routing imbalance.
//!
//! §2.3 notes that MoE's "dynamic routing mechanism creates inherent
//! workload imbalance among GPUs, exacerbating the existing communication
//! overhead" but the paper does not quantify it. This sweep skews an
//! increasing fraction of all traffic toward rank 0 and measures how the
//! overlap benefit and the predictive search hold up.

use baselines::{measure, Method};
use bench::{parallel_map, speedup};
use flashoverlap::runtime::CommPattern;
use flashoverlap::SystemSpec;
use gpu_sim::gemm::GemmDims;
use workloads::routing::{load_histogram, skewed_routing};

fn main() {
    println!("Extension: GEMM+All-to-All vs MoE routing imbalance");
    let system = SystemSpec::rtx4090(4);
    let dims = GemmDims::new(8192, 2048, 6144);
    println!(
        "shape {}x{}x{} on 4x{}; skew = fraction of traffic forced to rank 0\n",
        dims.m, dims.n, dims.k, system.arch.name
    );
    let skews = vec![0.0f64, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
    let rows = parallel_map(skews, |&skew| {
        let routing = skewed_routing(dims.m as usize, 4, skew, 99);
        let hot = load_histogram(&routing[0], 4)[0] as f64 / dims.m as f64;
        let pattern = CommPattern::AllToAll { routing };
        let base = measure(Method::NonOverlap, dims, &pattern, &system).expect("baseline");
        let fo = measure(Method::FlashOverlap, dims, &pattern, &system).expect("fo");
        (skew, hot, base, fo)
    });
    let mut table = Vec::new();
    for (skew, hot, base, fo) in rows {
        let sp = speedup(base.as_nanos(), fo.as_nanos());
        table.push(vec![
            format!("{:.0}%", skew * 100.0),
            format!("{:.0}%", hot * 100.0),
            format!("{base}"),
            format!("{fo}"),
            format!("{sp:.3}x"),
            bench::bar(sp, 1.6, 28),
        ]);
    }
    println!(
        "{}",
        bench::render_table(
            &[
                "skew",
                "rank-0 load",
                "non-overlap",
                "FlashOverlap",
                "speedup",
                ""
            ],
            &table
        )
    );
    println!(
        "Imbalance slows *both* sides (the slowest rank bounds every\n\
         exchange), and the predictor's imbalance margin keeps the tuner\n\
         from over-fragmenting, so the relative overlap benefit degrades\n\
         gracefully rather than collapsing."
    );
}
