//! §6.4 — quality of the predictive search.
//!
//! The predictive search replaces online profiling with the Alg. 1 cost
//! model. The paper reports that the searched partition achieves >99% of
//! the exhaustively-found optimum's performance. This binary measures
//! exactly that ratio over a shape sweep on both platforms.

use bench::{parallel_map, system_for};
use collectives::Primitive;
use flashoverlap::runtime::CommPattern;
use flashoverlap::{exhaustive_search, measure_partition, predictive_search};
use gpu_sim::gemm::GemmDims;
use workloads::GpuKind;

fn shapes() -> Vec<GemmDims> {
    let mut out = Vec::new();
    for m in [1024u32, 2048, 4096] {
        for n in [4096u32, 8192] {
            for k in [2048u32, 4096, 8192, 16384] {
                let tiles = (m.div_ceil(256) * n.div_ceil(128)) as u64;
                // Keep the exhaustive oracle feasible on both platforms:
                // the A800 has 88 compute SMs, so T <= 14 needs <= 1232
                // tiles.
                if (100..=1200).contains(&tiles) {
                    out.push(GemmDims::new(m, n, k));
                }
            }
        }
    }
    out
}

fn main() {
    println!("Sec. 6.4 reproduction: predictive search vs exhaustive optimum");
    for gpu in [GpuKind::Rtx4090, GpuKind::A800] {
        let system = system_for(gpu, 4);
        let pattern = CommPattern::AllReduce;
        let shapes = shapes();
        let rows = parallel_map(shapes, |&dims| {
            let optimum = exhaustive_search(dims, &pattern, &system).expect("exhaustive");
            let searched = predictive_search(dims, Primitive::AllReduce, &system);
            let searched_actual =
                measure_partition(dims, &pattern, &system, searched.partition.clone())
                    .expect("measure searched");
            let quality = optimum.latency.as_nanos() as f64 / searched_actual.as_nanos() as f64;
            (dims, quality, optimum.evaluated, searched.evaluated)
        });
        let avg_quality: f64 = rows.iter().map(|r| r.1).sum::<f64>() / rows.len() as f64;
        let worst = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        let avg_exhaustive: f64 = rows.iter().map(|r| r.2 as f64).sum::<f64>() / rows.len() as f64;
        let avg_pruned: f64 = rows.iter().map(|r| r.3 as f64).sum::<f64>() / rows.len() as f64;
        println!("\n{gpu} (4 GPUs, AllReduce, {} shapes):", rows.len());
        println!(
            "  searched partition reaches {:.2}% of optimal on average, worst {:.2}% (paper: >99%)",
            100.0 * avg_quality,
            100.0 * worst
        );
        println!(
            "  candidates: {avg_exhaustive:.0} exhaustive vs {avg_pruned:.0} pruned+predicted \
             (no online execution)"
        );
    }
}
