//! §4.1.1 — why tuning the wave partition is necessary.
//!
//! The paper's motivating measurement: across >50 GEMM shapes with
//! AllReduce on four RTX 4090 GPUs, the most fine-grained partition (one
//! wave per group) is the exhaustive-search optimum in only ~4% of
//! shapes, and using it costs 17.34% performance on average.

use bench::parallel_map;
use flashoverlap::runtime::CommPattern;
use flashoverlap::{exhaustive_search, measure_partition, OverlapPlan, SystemSpec, WavePartition};
use gpu_sim::gemm::GemmDims;

fn shapes() -> Vec<GemmDims> {
    // >50 shapes whose wave counts stay within the exhaustive-search
    // limit (T <= 14 on 112 compute SMs means <= 1568 tiles).
    let mut out = Vec::new();
    for m in [2048u32, 4096] {
        for n in [4096u32, 6144, 8192, 12288, 16384] {
            for k in [1024u32, 2048, 4096, 6144, 8192, 12288] {
                let dims = GemmDims::new(m, n, k);
                let tiles = (m.div_ceil(256) * n.div_ceil(128)) as u64;
                // Multi-wave shapes (T in 4..=13), as in the paper's
                // serving-scale workloads; single-wave toys would inflate
                // the fragmentation penalty.
                if (400..=1400).contains(&tiles) {
                    out.push(dims);
                }
            }
        }
    }
    out
}

fn main() {
    let system = SystemSpec::rtx4090(4);
    let pattern = CommPattern::AllReduce;
    let shapes = shapes();
    println!("Sec. 4.1.1 reproduction: per-wave baseline partition vs exhaustive optimum");
    println!(
        "{} GEMM shapes, AllReduce on 4x RTX4090 (paper: >50 shapes)\n",
        shapes.len()
    );

    let rows = parallel_map(shapes, |&dims| {
        let probe = OverlapPlan::new(
            dims,
            pattern.clone(),
            system.clone(),
            WavePartition::new(vec![1]),
        );
        let waves = match probe {
            Ok(p) => p.total_waves(),
            Err(flashoverlap::FlashOverlapError::PartitionMismatch { schedule_waves, .. }) => {
                schedule_waves
            }
            Err(e) => panic!("probe failed: {e}"),
        };
        let optimum = exhaustive_search(dims, &pattern, &system).expect("exhaustive");
        let baseline = measure_partition(dims, &pattern, &system, WavePartition::per_wave(waves))
            .expect("baseline partition");
        let degradation = baseline.as_nanos() as f64 / optimum.latency.as_nanos() as f64 - 1.0;
        let baseline_is_optimal = optimum.partition == WavePartition::per_wave(waves);
        (
            dims,
            waves,
            degradation,
            baseline_is_optimal,
            optimum.partition,
        )
    });

    let optimal_count = rows.iter().filter(|r| r.3).count();
    let avg_degradation: f64 = rows.iter().map(|r| r.2).sum::<f64>() / rows.len() as f64;
    let mut table = Vec::new();
    for (dims, waves, degradation, opt, partition) in rows.iter().take(12) {
        table.push(vec![
            format!("{}x{}x{}", dims.m, dims.n, dims.k),
            waves.to_string(),
            format!("{:.1}%", degradation * 100.0),
            if *opt {
                "yes".into()
            } else {
                format!("no ({partition})")
            },
        ]);
    }
    println!(
        "{}",
        bench::render_table(
            &["shape", "T", "per-wave penalty", "per-wave optimal?"],
            &table
        )
    );
    println!("... ({} shapes total)\n", rows.len());
    println!(
        "per-wave partition is optimal in {:.1}% of shapes (paper: ~4%)",
        100.0 * optimal_count as f64 / rows.len() as f64
    );
    println!(
        "average degradation from using it: {:.2}% (paper: 17.34%)",
        100.0 * avg_degradation
    );
}
