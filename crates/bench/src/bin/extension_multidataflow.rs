//! Extension — FlashOverlap vs multi-dataflow scheduling (§2.4.3).
//!
//! The paper surveys micro-batch co-execution (Wang et al., DeepSeek-V3,
//! Lancet, FasterMoE) as the other major overlap family but calls it
//! "constrained to specific scenarios" and does not evaluate it. With
//! compute-SM accounting in the substrate, the comparison is runnable:
//! micro-batching overlaps *across* dataflows (paying wave-quantization
//! waste on each smaller GEMM and SM contention between concurrent
//! compute streams), while FlashOverlap overlaps *within* one dataflow
//! (paying signaling latency and comm fragmentation). The two are also
//! complementary: the last column applies FlashOverlap to each
//! micro-batch.

use baselines::{measure, run_microbatch_tuned, Method};
use bench::{parallel_map, speedup, system_for, SweepStats};
use collectives::Primitive;
use flashoverlap::runtime::CommPattern;
use workloads::{table3_shapes, GpuKind};

fn main() {
    println!("Extension: within-dataflow (FlashOverlap) vs across-dataflow (micro-batch) overlap");
    for (gpu, n_gpus) in [(GpuKind::Rtx4090, 4usize), (GpuKind::A800, 4)] {
        let system = system_for(gpu, n_gpus);
        let shapes = table3_shapes(Primitive::AllReduce, gpu);
        let rows = parallel_map(shapes.clone(), |&dims| {
            let pattern = CommPattern::AllReduce;
            let base = measure(Method::NonOverlap, dims, &pattern, &system).expect("baseline");
            let mb = run_microbatch_tuned(dims, &pattern, &system).expect("microbatch");
            let fo = measure(Method::FlashOverlap, dims, &pattern, &system).expect("flashoverlap");
            (
                speedup(base.as_nanos(), mb.as_nanos()),
                speedup(base.as_nanos(), fo.as_nanos()),
            )
        });
        let mb: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let fo: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let wins = rows.iter().filter(|r| r.1 > r.0).count();
        println!(
            "\n{gpu} x{n_gpus}, GEMM+AllReduce ({} shapes):",
            shapes.len()
        );
        println!("  micro-batch co-execution: {}", SweepStats::from(&mb));
        println!("  FlashOverlap            : {}", SweepStats::from(&fo));
        println!("  FlashOverlap wins on {wins}/{} shapes", shapes.len());
    }
    println!(
        "\nMicro-batching needs no kernel support but halves every GEMM\n\
         (quantization waste) and contends compute streams; FlashOverlap\n\
         overlaps at tile granularity inside the full-size GEMM."
    );
}
