//! Fig. 9 — operator-level speedup comparison.
//!
//! For every panel of Fig. 9 — {AllReduce, ReduceScatter} x {2, 4} GPUs
//! on A800, and {AllReduce, ReduceScatter, All-to-All} x {2, 4, 8} GPUs
//! on RTX 4090 — sweeps the Table 3 shape grid and reports each method's
//! speedup over the non-overlap baseline as mean (bar) with min/max
//! (whiskers), exactly the statistics the figure plots.

use baselines::{measure, Method};
use bench::{parallel_map, pattern_for, speedup, system_for, SweepStats};
use collectives::Primitive;
use workloads::{table3_shapes, GpuKind};

fn main() {
    println!("Fig. 9 reproduction: operator-level speedups (vs non-overlap)");
    let panels: Vec<(&str, GpuKind, Primitive, Vec<usize>)> = vec![
        (
            "(a) GEMM+AllReduce on A800",
            GpuKind::A800,
            Primitive::AllReduce,
            vec![2, 4],
        ),
        (
            "(b) GEMM+ReduceScatter on A800",
            GpuKind::A800,
            Primitive::ReduceScatter,
            vec![2, 4],
        ),
        (
            "(c) GEMM+AllReduce on RTX4090",
            GpuKind::Rtx4090,
            Primitive::AllReduce,
            vec![2, 4, 8],
        ),
        (
            "(d) GEMM+ReduceScatter on RTX4090",
            GpuKind::Rtx4090,
            Primitive::ReduceScatter,
            vec![2, 4, 8],
        ),
        (
            "(e) GEMM+All-to-All on RTX4090",
            GpuKind::Rtx4090,
            Primitive::AllToAll,
            vec![2, 4, 8],
        ),
    ];

    let mut flash_overall: Vec<f64> = Vec::new();
    for (title, gpu, primitive, gpu_counts) in panels {
        println!("\n=== {title} ===");
        let shapes = table3_shapes(primitive, gpu);
        for &n_gpus in &gpu_counts {
            let system = system_for(gpu, n_gpus);
            let methods: Vec<Method> = Method::ALL
                .into_iter()
                .filter(|m| *m != Method::NonOverlap)
                .collect();

            // One task per (shape): measure the baseline once, then each
            // applicable method.
            let rows = parallel_map(shapes.clone(), |&dims| {
                let pattern = pattern_for(primitive, dims, n_gpus, 0xA2A + dims.k as u64);
                let base = measure(Method::NonOverlap, dims, &pattern, &system)
                    .expect("non-overlap always runs");
                let mut per_method = Vec::new();
                for &method in &methods {
                    if !method.applicable(&pattern, &system) {
                        per_method.push(None);
                        continue;
                    }
                    let latency = measure(method, dims, &pattern, &system)
                        .expect("applicable method must run");
                    per_method.push(Some(speedup(base.as_nanos(), latency.as_nanos())));
                }
                per_method
            });

            println!("\n{n_gpus} GPUs ({} shapes):", shapes.len());
            let mut table = Vec::new();
            for (mi, &method) in methods.iter().enumerate() {
                let series: Vec<f64> = rows.iter().filter_map(|r| r[mi]).collect();
                if series.is_empty() {
                    table.push(vec![
                        method.to_string(),
                        "n/a (requires P2P)".to_string(),
                        String::new(),
                    ]);
                    continue;
                }
                let stats = SweepStats::from(&series);
                if method == Method::FlashOverlap {
                    flash_overall.extend_from_slice(&series);
                }
                table.push(vec![
                    method.to_string(),
                    format!("{stats}"),
                    bench::bar(stats.mean, 1.8, 36),
                ]);
            }
            println!(
                "{}",
                bench::render_table(&["method", "speedup", ""], &table)
            );
        }
    }

    let overall = SweepStats::from(&flash_overall);
    println!(
        "\nFlashOverlap across all panels: {overall}  (paper: 1.07-1.31x averages, up to 1.65x)"
    );
}
