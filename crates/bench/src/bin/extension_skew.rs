//! Extension — robustness to per-rank launch skew.
//!
//! Real multi-process serving launches ranks with host-side jitter; the
//! paper measures in a controlled single-process harness. Collectives
//! rendezvous on the slowest rank, so skew stretches both the baseline
//! and the overlapped execution — the question is whether fine-grained
//! signaling amplifies the jitter (many rendezvous per operator) or
//! absorbs it. This sweep injects uniform launch skew and compares.

use baselines::{measure, Method};
use bench::{parallel_map, speedup};
use flashoverlap::runtime::CommPattern;
use flashoverlap::SystemSpec;
use gpu_sim::gemm::GemmDims;

fn main() {
    println!("Extension: overlap robustness to per-rank launch skew");
    let dims = GemmDims::new(4096, 8192, 16384);
    println!(
        "shape {}x{}x{}, GEMM+AllReduce on 4x RTX4090 (operator ~15-20 ms)\n",
        dims.m, dims.n, dims.k
    );
    let skews_us = vec![0u64, 50, 100, 200, 500, 1000];
    let rows = parallel_map(skews_us, |&skew_us| {
        let system = SystemSpec::rtx4090(4).with_launch_skew_ns(skew_us * 1_000);
        let base =
            measure(Method::NonOverlap, dims, &CommPattern::AllReduce, &system).expect("baseline");
        let fo = measure(Method::FlashOverlap, dims, &CommPattern::AllReduce, &system)
            .expect("flashoverlap");
        (skew_us, base, fo)
    });
    let mut table = Vec::new();
    for (skew_us, base, fo) in rows {
        let sp = speedup(base.as_nanos(), fo.as_nanos());
        table.push(vec![
            format!("{skew_us} us"),
            format!("{base}"),
            format!("{fo}"),
            format!("{sp:.3}x"),
            bench::bar(sp, 1.6, 28),
        ]);
    }
    println!(
        "{}",
        bench::render_table(
            &["max skew", "non-overlap", "FlashOverlap", "speedup", ""],
            &table
        )
    );
    println!(
        "Both executions absorb skew in their first rendezvous; the\n\
         per-group signaling adds no extra synchronization points beyond\n\
         what the collectives already impose, so the speedup is stable\n\
         until the skew approaches the per-group communication time."
    );
}
