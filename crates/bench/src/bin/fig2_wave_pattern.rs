//! Fig. 2 — the wave pattern in GEMM execution.
//!
//! Reproduces the experiment of §2.1.1: a GEMM with M=2048, N=K=8192 on
//! an RTX 4090 (512 tiles of 256x128 on 128 SMs = 4 waves). The tile
//! trace shows (a) completion times clustering into distinct waves and
//! (b) the completion order disagreeing with the address (tile-index)
//! order because of block swizzling.

use gpu_sim::arch::GpuArch;
use gpu_sim::gemm::{GemmConfig, GemmDims, GemmKernel};
use gpu_sim::stream::enqueue;
use gpu_sim::{Cluster, ClusterSim};
use sim::Sim;

fn main() {
    let arch = GpuArch::rtx4090();
    let dims = GemmDims::new(2048, 8192, 8192);
    let config = GemmConfig::choose(dims, &arch);
    let grid = config.grid(dims);
    println!("Fig. 2 reproduction: wave pattern in GEMM execution");
    println!(
        "GEMM M={} N={} K={} | tile {}x{} -> {} tiles on {} SMs",
        dims.m,
        dims.n,
        dims.k,
        config.tile.m,
        config.tile.n,
        grid.num_tiles(),
        arch.sm_count
    );

    let mut world = Cluster::new(1, arch.clone(), false, 42);
    world.enable_tile_trace();
    let mut sim: ClusterSim = Sim::new();
    let dev = &mut world.devices[0];
    let a = dev.mem.alloc(1);
    let b = dev.mem.alloc(1);
    let out = dev.mem.alloc(1);
    let stream = dev.create_stream();
    let mut kernel = GemmKernel::plain(a, b, out, dims, &arch);
    kernel.config = config;
    enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
    sim.run(&mut world).expect("simulation");

    let trace = world.tile_trace.as_ref().expect("trace enabled");
    let mut waves: Vec<(u32, f64, f64, u32, u32)> = Vec::new();
    let mut per_wave: std::collections::BTreeMap<u32, Vec<(f64, u32)>> = Default::default();
    for (t, rec) in trace.entries() {
        per_wave
            .entry(rec.wave)
            .or_default()
            .push((t.as_micros_f64(), rec.tile));
    }
    for (wave, entries) in &per_wave {
        let lo = entries.iter().map(|e| e.0).fold(f64::INFINITY, f64::min);
        let hi = entries
            .iter()
            .map(|e| e.0)
            .fold(f64::NEG_INFINITY, f64::max);
        let min_tile = entries.iter().map(|e| e.1).min().unwrap_or(0);
        let max_tile = entries.iter().map(|e| e.1).max().unwrap_or(0);
        waves.push((*wave, lo, hi, min_tile, max_tile));
    }

    println!("\n(a) completion time per wave ({} waves):", waves.len());
    println!(
        "{}",
        bench::render_table(
            &[
                "wave",
                "tiles",
                "first done (us)",
                "last done (us)",
                "span / wave gap"
            ],
            &waves
                .iter()
                .map(|&(w, lo, hi, _, _)| {
                    let gap = if (w as usize) + 1 < waves.len() {
                        waves[w as usize + 1].1 - lo
                    } else {
                        hi - lo
                    };
                    vec![
                        w.to_string(),
                        per_wave[&w].len().to_string(),
                        format!("{lo:.1}"),
                        format!("{hi:.1}"),
                        format!("{:.1}%", 100.0 * (hi - lo) / gap.max(1e-9)),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );

    // (b) completion order vs address order: sample a few early tiles.
    let mut by_time: Vec<(f64, u32)> = trace
        .entries()
        .iter()
        .map(|(t, r)| (t.as_micros_f64(), r.tile))
        .collect();
    by_time.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let first: Vec<u32> = by_time.iter().take(16).map(|&(_, t)| t).collect();
    println!("(b) first 16 tiles by completion (address-order indices):");
    println!("    {first:?}");
    let contiguous = first.windows(2).all(|w| w[1] == w[0] + 1);
    println!(
        "    address-contiguous: {} (swizzling scatters early tiles, Sec. 3.3.2)",
        contiguous
    );

    // Paper claim: tiles of a wave complete within ~5% of the wave
    // duration.
    let wave_gap = waves[1].1 - waves[0].1;
    let span = waves[0].2 - waves[0].1;
    println!(
        "\nwave-0 completion span = {:.2}% of wave duration (paper: ~5%)",
        100.0 * span / wave_gap
    );
}
