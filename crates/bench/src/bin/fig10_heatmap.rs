//! Fig. 10 — speedup heatmap across GEMM sizes, and ratio to the
//! theoretical upper bound.
//!
//! (a) RTX 4090, ReduceScatter, TP=2 and (b) A800, AllReduce, TP=4:
//! speedup over non-overlap across the (M*N, K) plane. (c)/(d): the same
//! runs normalized by the perfect-overlap bound of §6.3 — FlashOverlap
//! should deliver most of the theoretical headroom (69-98% in the paper),
//! dipping where small, segmented transfers underuse bandwidth.

use baselines::{measure, Method};
use bench::{parallel_map, speedup, system_for};
use collectives::Primitive;
use flashoverlap::runtime::CommPattern;
use flashoverlap::{nonoverlap_latency, theoretical_latency};
use gpu_sim::gemm::GemmDims;
use workloads::GpuKind;

const MN_MI: [u64; 5] = [16, 32, 64, 128, 256];
const K_KI: [u32; 5] = [1, 2, 4, 8, 16];

fn shape_for(mn_mi: u64, k_ki: u32) -> GemmDims {
    // Fix M = 4096 and derive N; all products stay power-of-two shaped.
    let m = 4096u32;
    let n = ((mn_mi << 20) / m as u64) as u32;
    GemmDims::new(m, n, k_ki * 1024)
}

fn heat_cell(v: f64) -> &'static str {
    match v {
        v if v >= 1.5 => "@@",
        v if v >= 1.3 => "##",
        v if v >= 1.15 => "++",
        v if v >= 1.05 => "--",
        _ => "..",
    }
}

fn main() {
    println!("Fig. 10 reproduction: FlashOverlap speedup heatmaps");
    for (title, gpu, primitive, tp) in [
        (
            "(a)/(c) RTX4090, ReduceScatter, TP=2",
            GpuKind::Rtx4090,
            Primitive::ReduceScatter,
            2usize,
        ),
        (
            "(b)/(d) A800, AllReduce, TP=4",
            GpuKind::A800,
            Primitive::AllReduce,
            4usize,
        ),
    ] {
        let system = system_for(gpu, tp);
        let pattern = match primitive {
            Primitive::ReduceScatter => CommPattern::ReduceScatter,
            _ => CommPattern::AllReduce,
        };
        let cells: Vec<(u64, u32)> = MN_MI
            .iter()
            .flat_map(|&mn| K_KI.iter().map(move |&k| (mn, k)))
            .collect();
        let results = parallel_map(cells.clone(), |&(mn, k)| {
            let dims = shape_for(mn, k);
            let base = measure(Method::NonOverlap, dims, &pattern, &system).expect("baseline runs");
            let fo =
                measure(Method::FlashOverlap, dims, &pattern, &system).expect("flashoverlap runs");
            let sp = speedup(base.as_nanos(), fo.as_nanos());
            let theory = theoretical_latency(dims, primitive, &system);
            let base_analytic = nonoverlap_latency(dims, primitive, &system);
            let theory_speedup = base_analytic.as_nanos() as f64 / theory.as_nanos() as f64;
            (sp, sp / theory_speedup)
        });

        println!("\n=== {title} ===");
        for (label, select) in [
            ("speedup over non-overlap", 0usize),
            ("ratio to theoretical", 1),
        ] {
            println!("\n{label} (rows: K in Ki, cols: M*N in Mi):");
            let mut rows = Vec::new();
            for (ki, &k) in K_KI.iter().enumerate() {
                let mut row = vec![format!("K={k}Ki")];
                for (mi, _) in MN_MI.iter().enumerate() {
                    let (sp, ratio) = results[mi * K_KI.len() + ki];
                    let v = if select == 0 { sp } else { ratio };
                    let glyph = if select == 0 {
                        heat_cell(v).to_string()
                    } else {
                        String::new()
                    };
                    row.push(format!("{v:.2}{glyph}"));
                }
                rows.push(row);
            }
            let headers: Vec<String> = std::iter::once("".to_string())
                .chain(MN_MI.iter().map(|mn| format!("{mn}Mi")))
                .collect();
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            println!("{}", bench::render_table(&headers_ref, &rows));
        }
        let ratios: Vec<f64> = results.iter().map(|&(_, r)| r).collect();
        let stats = bench::SweepStats::from(&ratios);
        println!("theoretical-ratio summary: {stats}  (paper: 69-98%, >80% in most cases)");
    }
}
