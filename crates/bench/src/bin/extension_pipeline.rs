//! Extension — end-to-end multi-layer pipeline.
//!
//! The paper's evaluation is operator-level; this extension measures
//! what the per-operator speedups compose to over a whole transformer
//! block executed as one simulation: attention out-projection
//! (GEMM+AllReduce+RMSNorm) followed by the MLP down-projection
//! (GEMM+AllReduce+RMSNorm), repeated over several layers, on both
//! platforms — FlashOverlap layers vs. sequential (single-group) layers.

use std::rc::Rc;

use flashoverlap::pipeline::{LayerSpec, Pipeline};
use flashoverlap::runtime::CommPattern;
use flashoverlap::{OverlapPlan, SystemSpec, WavePartition};
use gpu_sim::elementwise::ElementwiseOp;
use gpu_sim::gemm::GemmDims;
use workloads::models::{tp_layer_shapes, LLAMA2_70B};

fn rms(cols: usize) -> ElementwiseOp {
    ElementwiseOp::RmsNorm {
        weight: Rc::new(vec![1.0; cols]),
        eps: 1e-6,
    }
}

fn block_layers(tokens: u32, tp: u32) -> Vec<LayerSpec> {
    let shapes = tp_layer_shapes(LLAMA2_70B, tokens, tp);
    let mut layers = Vec::new();
    for _ in 0..4 {
        // 4 transformer blocks, 2 communicated GEMMs each. For chaining,
        // keep M x N == next M x K: out-proj produces (tokens, hidden);
        // the down-proj consumes (tokens, inter/tp)... we model the block
        // boundary with the out-proj shape only (attention and MLP first
        // matmuls are local and not communicated), alternating the two
        // communicated shapes via an adapter epilogue is out of scope, so
        // the chain uses the out-proj shape whose output feeds the next
        // block's out-proj through hidden-sized activations.
        let d = shapes[0];
        let chained = GemmDims::new(d.m, d.n, d.n);
        layers.push(LayerSpec {
            dims: chained,
            pattern: CommPattern::AllReduce,
            epilogue: Some(rms(chained.n as usize)),
        });
    }
    layers
}

fn serial_pipeline(system: &SystemSpec, layers: &[LayerSpec]) -> u64 {
    // Same layers, each forced to the single-group (no-overlap) partition.
    let mut total = 0u64;
    for layer in layers {
        let plan = OverlapPlan::new(
            layer.dims,
            layer.pattern.clone(),
            system.clone(),
            WavePartition::new(vec![1]),
        );
        let waves = match plan {
            Ok(p) => p.total_waves(),
            Err(flashoverlap::FlashOverlapError::PartitionMismatch { schedule_waves, .. }) => {
                schedule_waves
            }
            Err(e) => panic!("probe failed: {e}"),
        };
        let plan = OverlapPlan::new(
            layer.dims,
            layer.pattern.clone(),
            system.clone(),
            WavePartition::single(waves),
        )
        .expect("plan");
        let report = plan
            .execute_with(
                &flashoverlap::ExecOptions::new()
                    .epilogue(layer.epilogue.as_ref().expect("epilogue")),
            )
            .expect("run")
            .report;
        total += report.epilogue_done.expect("epilogue").as_nanos();
    }
    total
}

fn main() {
    println!("Extension: end-to-end 4-block pipeline (GEMM+AllReduce+RMSNorm each)");
    for (system, tp) in [(SystemSpec::rtx4090(4), 4u32), (SystemSpec::a800(4), 4u32)] {
        println!("\n{} x{} :", system.arch.name, system.n_gpus);
        for tokens in [2048u32, 8192] {
            let layers = block_layers(tokens, tp);
            let serial_ns = serial_pipeline(&system, &layers);
            let pipeline = Pipeline::tuned(system.clone(), layers).expect("pipeline");
            let report = pipeline
                .execute_with(&flashoverlap::PipelineExecOptions::new())
                .expect("run")
                .report;
            println!(
                "  {tokens:>5} tokens: overlapped {:.3} ms vs sequential {:.3} ms  ({:.3}x end to end)",
                report.total.as_millis_f64(),
                serial_ns as f64 / 1e6,
                serial_ns as f64 / report.total.as_nanos() as f64
            );
        }
    }
}
