//! Visual demo: the overlap as an ASCII Gantt chart.
//!
//! Renders rank 0's compute stream (GEMM + fused epilogue) and
//! communication stream (signal waits + collectives) for three
//! partitions of the same workload: no overlap, the per-wave baseline,
//! and the tuned partition — making Fig. 3's execution structure
//! directly visible in the terminal.

use bench::render_timeline;
use flashoverlap::runtime::CommPattern;
use flashoverlap::{predictive_search, OverlapPlan, SystemSpec, WavePartition};
use gpu_sim::gemm::GemmDims;

fn main() {
    let system = SystemSpec::rtx4090(4);
    let dims = GemmDims::new(4096, 8192, 8192);
    let probe = predictive_search(dims, collectives::Primitive::AllReduce, &system);
    let waves = {
        // Recover T from the tuned partition.
        probe.partition.total_waves()
    };

    for (label, partition) in [
        ("no overlap (single group)", WavePartition::single(waves)),
        ("per-wave baseline", WavePartition::per_wave(waves)),
        ("tuned by predictive search", probe.partition.clone()),
    ] {
        let plan = OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system.clone(),
            partition.clone(),
        )
        .expect("plan");
        let out = plan
            .execute_with(&flashoverlap::ExecOptions::new().trace())
            .expect("run");
        let (report, spans) = (out.report, out.spans);
        let rank0: Vec<gpu_sim::OpSpan> = spans
            .into_iter()
            .filter(|s| s.device == 0 && s.name != "callback")
            .collect();
        println!(
            "== {label}: partition {partition}, latency {} ==",
            report.latency
        );
        println!("{}", render_timeline(&rank0, 100));
    }
}
