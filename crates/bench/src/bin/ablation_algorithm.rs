//! Ablation — communication agnosticism across collective algorithms.
//!
//! FlashOverlap never touches the communication implementation, so
//! swapping the library's algorithm (Ring vs Direct vs NCCL-style Auto
//! switching) requires zero changes to the overlap layer; the tuner just
//! re-profiles the bandwidth curve and re-plans (§2.2's agnosticism
//! claim, made executable). Auto also shows how grouping interacts with
//! size-based algorithm switching: smaller groups fall into the
//! Direct-favored regime.

use baselines::{measure, Method};
use bench::speedup;
use collectives::Algorithm;
use flashoverlap::runtime::CommPattern;
use flashoverlap::{OverlapPlan, SystemSpec};
use gpu_sim::gemm::GemmDims;

fn main() {
    println!("Ablation: collective algorithm (GEMM+AllReduce, tuned per algorithm)");
    for (name, base_system, dims) in [
        (
            "A800 x8, medium shape",
            SystemSpec::a800(8),
            GemmDims::new(2048, 4096, 8192),
        ),
        (
            "RTX4090 x4, balanced shape",
            SystemSpec::rtx4090(4),
            GemmDims::new(4096, 8192, 16384),
        ),
    ] {
        println!("\n{name} ({}x{}x{}):", dims.m, dims.n, dims.k);
        let mut rows = Vec::new();
        for algorithm in [Algorithm::Ring, Algorithm::Direct, Algorithm::Auto] {
            let system = base_system.clone().with_algorithm(algorithm);
            let base = measure(Method::NonOverlap, dims, &CommPattern::AllReduce, &system)
                .expect("baseline");
            let plan =
                OverlapPlan::tuned(dims, CommPattern::AllReduce, system.clone()).expect("plan");
            let fo = plan
                .execute_with(&flashoverlap::ExecOptions::new())
                .expect("run")
                .report
                .latency;
            rows.push(vec![
                algorithm.to_string(),
                plan.partition.to_string(),
                format!("{base}"),
                format!("{fo}"),
                format!("{:.3}x", speedup(base.as_nanos(), fo.as_nanos())),
            ]);
        }
        println!(
            "{}",
            bench::render_table(
                &[
                    "algorithm",
                    "tuned partition",
                    "non-overlap",
                    "FlashOverlap",
                    "speedup"
                ],
                &rows
            )
        );
    }
    println!(
        "The overlap layer is identical in every row — only the\n\
         communication library's algorithm (and hence its sampled\n\
         bandwidth curve) changed, and the tuner adapted the partition."
    );
}
