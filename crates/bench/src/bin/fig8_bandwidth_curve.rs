//! Fig. 8 — inter-GPU effective bandwidth vs data size.
//!
//! Samples the simulated collectives (exactly the offline stage of
//! §4.2.1) on both platforms and prints the effective bus bandwidth as a
//! function of the per-rank payload, showing the sharp degradation below
//! the saturation threshold that motivates reordering and grouping.

use collectives::{collective_duration, Primitive};
use flashoverlap::SystemSpec;
use interconnect::log_spaced_sizes;

fn busbw_gbps(prim: Primitive, bytes: u64, n: usize, system: &SystemSpec) -> f64 {
    let dur = collective_duration(prim, bytes, n, &system.fabric).as_secs_f64();
    // Bus bandwidth convention (NCCL tests): algorithmic traffic
    // 2(n-1)/n * S for AllReduce, normalized by time.
    let traffic = match prim {
        Primitive::AllReduce => 2.0 * (n as f64 - 1.0) / n as f64 * bytes as f64,
        _ => (n as f64 - 1.0) / n as f64 * bytes as f64,
    };
    traffic / dur / 1e9
}

fn main() {
    println!("Fig. 8 reproduction: effective bandwidth vs data size");
    let sizes = log_spaced_sizes(64 << 10, 1 << 30, 16);
    for (name, system, n) in [
        ("RTX4090 PCIe (4 GPUs)", SystemSpec::rtx4090(4), 4usize),
        ("A800 NVLink (4 GPUs)", SystemSpec::a800(4), 4usize),
    ] {
        println!("\n{name} — AllReduce bus bandwidth:");
        let peak = busbw_gbps(Primitive::AllReduce, 4 << 30, n, &system);
        let mut rows = Vec::new();
        for &s in &sizes {
            let bw = busbw_gbps(Primitive::AllReduce, s, n, &system);
            rows.push(vec![
                format!("{:.2} MiB", s as f64 / (1 << 20) as f64),
                format!("{bw:.2}"),
                bench::bar(bw, peak, 40),
            ]);
        }
        println!(
            "{}",
            bench::render_table(&["size", "busbw GB/s", ""], &rows)
        );
        // The borderline the red spots mark: where bandwidth halves.
        let half = sizes
            .iter()
            .find(|&&s| busbw_gbps(Primitive::AllReduce, s, n, &system) > peak / 2.0)
            .copied()
            .unwrap_or(0);
        println!(
            "half-of-peak threshold near {:.2} MiB; peak ~{peak:.1} GB/s",
            half as f64 / (1 << 20) as f64
        );
    }

    // Fragmentation cost: splitting a 64 MiB payload into k calls.
    println!("\nFragmentation penalty (64 MiB AllReduce on 4x RTX4090):");
    let system = SystemSpec::rtx4090(4);
    let whole = collective_duration(Primitive::AllReduce, 64 << 20, 4, &system.fabric);
    let mut rows = Vec::new();
    for k in [1u64, 2, 4, 8, 16, 32] {
        let split = collective_duration(Primitive::AllReduce, (64 << 20) / k, 4, &system.fabric);
        let total = split * k;
        rows.push(vec![
            format!("{k} calls"),
            format!("{:.3} ms", total.as_millis_f64()),
            format!("{:.2}x", total.as_nanos() as f64 / whole.as_nanos() as f64),
        ]);
    }
    println!(
        "{}",
        bench::render_table(&["segmentation", "total time", "vs 1 call"], &rows)
    );
}
