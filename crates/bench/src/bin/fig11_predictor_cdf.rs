//! Fig. 11 — cumulative distribution of the predictor's error ratio.
//!
//! §6.4: the prediction error ratio `|actual - predicted| / actual` is
//! measured over >250 combinations of GEMM sizes, grouping partitions,
//! and parallelism settings per GPU type. The paper reports ~3.4% average
//! error on both platforms, with prediction and measurement following the
//! same trend across partitions.

use bench::{parallel_map, system_for};
use collectives::Primitive;
use flashoverlap::partition::candidate_partitions;
use flashoverlap::runtime::CommPattern;
use flashoverlap::{LatencyPredictor, OverlapPlan, WavePartition};
use gpu_sim::gemm::GemmDims;
use sim::{Cdf, DetRng};
use workloads::GpuKind;

fn main() {
    println!("Fig. 11 reproduction: CDF of prediction error ratio");
    for gpu in [GpuKind::Rtx4090, GpuKind::A800] {
        // Build the combination set: shapes x parallelism x sampled
        // partitions.
        let shapes = [
            GemmDims::new(2048, 4096, 2048),
            GemmDims::new(2048, 8192, 4096),
            GemmDims::new(4096, 4096, 8192),
            GemmDims::new(4096, 8192, 4096),
            GemmDims::new(4096, 8192, 16384),
            GemmDims::new(8192, 4096, 2048),
            GemmDims::new(8192, 8192, 8192),
        ];
        let mut combos: Vec<(GemmDims, usize, WavePartition)> = Vec::new();
        let mut rng = DetRng::new(0xF16);
        for &dims in &shapes {
            for &tp in &[2usize, 4, 8] {
                let system = system_for(gpu, tp);
                let predictor = LatencyPredictor::build(dims, Primitive::AllReduce, &system);
                let waves = predictor.profile().total_waves;
                let candidates = candidate_partitions(waves, 2, 4);
                // Sample up to 7 partitions per (shape, tp).
                for _ in 0..7 {
                    combos.push((dims, tp, rng.choose(&candidates).clone()));
                }
            }
        }
        println!(
            "\n{gpu}: {} (shape, parallelism, partition) combinations",
            combos.len()
        );

        let errors = parallel_map(combos, |(dims, tp, partition)| {
            let system = system_for(gpu, *tp);
            let predictor = LatencyPredictor::build(*dims, Primitive::AllReduce, &system);
            let predicted = predictor.predict(partition);
            let plan = OverlapPlan::new(*dims, CommPattern::AllReduce, system, partition.clone())
                .expect("plan");
            let actual = plan
                .execute_with(&flashoverlap::ExecOptions::new())
                .expect("execute")
                .report
                .latency;
            let err = (actual.as_nanos() as f64 - predicted.as_nanos() as f64).abs()
                / actual.as_nanos() as f64;
            let under = predicted <= actual;
            (err, under)
        });

        let mut cdf: Cdf = errors.iter().map(|&(e, _)| e).collect();
        let under_frac = errors.iter().filter(|&&(_, u)| u).count() as f64 / errors.len() as f64;
        println!(
            "average error ratio: {:.2}%  (paper: ~3.4%)",
            100.0 * cdf.mean()
        );
        println!(
            "predicted <= actual in {:.0}% of cases (paper: actual is 'always slightly higher')",
            100.0 * under_frac
        );
        println!("CDF:");
        let mut rows = Vec::new();
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0] {
            let v = cdf.quantile(q).expect("non-empty");
            rows.push(vec![
                format!("p{:02.0}", q * 100.0),
                format!("{:.2}%", v * 100.0),
                bench::bar(v, 0.15, 40),
            ]);
        }
        println!(
            "{}",
            bench::render_table(&["quantile", "error ratio", ""], &rows)
        );
    }
}
