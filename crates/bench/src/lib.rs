//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation; this library holds the pieces they share: system
//! construction per platform, workload-to-pattern plumbing (routing
//! tables for All-to-All), a parallel sweep driver, and text-table
//! rendering.

#![warn(missing_docs)]

use collectives::Primitive;
use flashoverlap::runtime::CommPattern;
use flashoverlap::SystemSpec;
use gpu_sim::gemm::GemmDims;
use workloads::GpuKind;

/// Builds the [`SystemSpec`] for a platform and GPU count.
pub fn system_for(gpu: GpuKind, n_gpus: usize) -> SystemSpec {
    match gpu {
        GpuKind::Rtx4090 => SystemSpec::rtx4090(n_gpus),
        GpuKind::A800 => SystemSpec::a800(n_gpus),
    }
}

/// Builds the [`CommPattern`] for a primitive, generating balanced
/// routing for All-to-All.
pub fn pattern_for(primitive: Primitive, dims: GemmDims, n_gpus: usize, seed: u64) -> CommPattern {
    match primitive {
        Primitive::AllReduce => CommPattern::AllReduce,
        Primitive::ReduceScatter => CommPattern::ReduceScatter,
        Primitive::AllToAll => CommPattern::AllToAll {
            routing: workloads::balanced_routing(dims.m as usize, n_gpus, seed),
        },
        Primitive::AllGather => CommPattern::AllGather,
    }
}

/// Speedup of `measured` relative to `baseline` (higher is better).
pub fn speedup(baseline_ns: u64, measured_ns: u64) -> f64 {
    baseline_ns as f64 / measured_ns as f64
}

/// Mean / min / max summary of a speedup series (the bar + whiskers of
/// Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl SweepStats {
    /// Summarizes a non-empty series.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "empty sweep");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        SweepStats {
            mean: sum / values.len() as f64,
            min,
            max,
            count: values.len(),
        }
    }
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.3}x (min {:.3}, max {:.3}, n={})",
            self.mean, self.min, self.max, self.count
        )
    }
}

/// Maps a closure over `items` on all CPU cores, preserving order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let results: Vec<std::sync::Mutex<Option<R>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *results[i].lock().expect("sweep slot poisoned") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Renders an ASCII table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders per-stream operation spans as an ASCII Gantt chart (one row
/// per (device, stream), time left to right). `width` is the number of
/// character cells of the time axis.
pub fn render_timeline(spans: &[gpu_sim::OpSpan], width: usize) -> String {
    if spans.is_empty() {
        return "(no spans)".to_string();
    }
    let t0 = spans
        .iter()
        .map(|s| s.start.as_nanos())
        .min()
        .expect("non-empty");
    let t1 = spans
        .iter()
        .map(|s| s.end.as_nanos())
        .max()
        .expect("non-empty");
    let range = (t1 - t0).max(1) as f64;
    let mut rows: std::collections::BTreeMap<(usize, usize), Vec<char>> = Default::default();
    let glyph = |name: &str| -> char {
        match name {
            "gemm" => 'G',
            "collective" => 'C',
            "wait_counter" => 'w',
            "wait_event" => '.',
            "record_event" => 'r',
            "elementwise" => 'E',
            "p2p_copy" => 'P',
            _ => '#',
        }
    };
    for span in spans {
        let row = rows
            .entry((span.device, span.stream))
            .or_insert_with(|| vec![' '; width]);
        let a = ((((span.start.as_nanos() - t0) as f64 / range) * width as f64) as usize)
            .min(width - 1);
        let b = ((((span.end.as_nanos() - t0) as f64 / range) * width as f64).ceil() as usize)
            .clamp(a + 1, width);
        let g = glyph(span.name);
        for cell in row.iter_mut().take(b).skip(a.min(width - 1)) {
            if *cell == ' ' || g != 'w' {
                *cell = g;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "timeline 0 .. {:.3} ms  (G gemm, C collective, w signal-wait, E elementwise)
",
        (t1 - t0) as f64 / 1e6
    ));
    for ((device, stream), cells) in rows {
        out.push_str(&format!(
            "dev{device} s{stream} |{}|
",
            cells.into_iter().collect::<String>()
        ));
    }
    out
}

/// A simple horizontal ASCII bar for quick visual scanning of a value in
/// `[0, scale]`.
pub fn bar(value: f64, scale: f64, width: usize) -> String {
    let filled = ((value / scale) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_ratio() {
        assert!((speedup(200, 100) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_stats_summarize() {
        let s = SweepStats::from(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 3.0));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<u64>>(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn render_table_aligns_columns() {
        let table = render_table(
            &["a", "bbbb"],
            &[
                vec!["xx".into(), "y".into()],
                vec!["z".into(), "wwwww".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(2.0, 1.0, 4), "####");
        assert_eq!(bar(0.0, 1.0, 4), "....");
        assert_eq!(bar(0.5, 1.0, 4), "##..");
    }

    #[test]
    fn pattern_for_builds_routing() {
        let dims = GemmDims::new(64, 64, 64);
        match pattern_for(Primitive::AllToAll, dims, 4, 1) {
            CommPattern::AllToAll { routing } => {
                assert_eq!(routing.len(), 4);
                assert_eq!(routing[0].len(), 64);
            }
            other => panic!("wrong pattern {other:?}"),
        }
    }
}
