//! Criterion microbenchmarks of the library hot paths.
//!
//! These benchmark the *reproduction's own* machinery (mapping-table
//! construction, predictor evaluation, predictive search, simulated runs)
//! — the costs that determine whether real-time tuning (§4.1.2) is
//! feasible. The figure/table reproductions live in `src/bin/`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use collectives::Primitive;
use flashoverlap::partition::candidate_partitions;
use flashoverlap::runtime::CommPattern;
use flashoverlap::{predictive_search, LatencyPredictor, OverlapPlan, SystemSpec, WavePartition};
use gpu_sim::gemm::{GemmConfig, GemmDims};
use gpu_sim::swizzle::Swizzle;
use gpu_sim::tile::{TileGrid, TileShape};
use gpu_sim::wave::WaveSchedule;
use sim::{Sim, SimDuration};

fn bench_event_engine(c: &mut Criterion) {
    c.bench_function("sim/10k_events", |b| {
        b.iter_batched(
            || {
                let mut sim: Sim<u64> = Sim::new();
                for i in 0..10_000u64 {
                    sim.schedule_at(sim::SimTime::from_nanos(i * 7 % 5000), |w, _| *w += 1);
                }
                sim
            },
            |mut sim| {
                let mut world = 0u64;
                sim.run(&mut world).expect("run");
                black_box(world)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mapping_build(c: &mut Criterion) {
    let grid = TileGrid::new(4096, 8192, TileShape::new(256, 128));
    let order = Swizzle::Strip { width: 4 }.issue_order(&grid);
    let schedule = WaveSchedule::new(&order, 112);
    let partition = WavePartition::new(vec![2; (schedule.num_waves() / 2) as usize]);
    c.bench_function("mapping/tile_build_1024_tiles", |b| {
        b.iter(|| {
            black_box(flashoverlap::mapping::TileMapping::build(
                grid,
                black_box(&schedule),
                black_box(&partition),
            ))
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    let system = SystemSpec::rtx4090(4);
    let dims = GemmDims::new(4096, 8192, 8192);
    let predictor = LatencyPredictor::build(dims, Primitive::AllReduce, &system);
    let waves = predictor.profile().total_waves;
    let partition = WavePartition::new(vec![2; (waves / 2) as usize + (waves % 2) as usize])
        .sizes()
        .to_vec();
    // Rebuild a covering partition (last group absorbs the remainder).
    let mut sizes = partition;
    let covered: u32 = sizes.iter().sum();
    if covered > waves {
        let last = sizes.len() - 1;
        sizes[last] -= covered - waves;
    }
    let partition = WavePartition::new(sizes);
    c.bench_function("predictor/predict_one_partition", |b| {
        b.iter(|| black_box(predictor.predict(black_box(&partition))))
    });
    c.bench_function("predictor/offline_profile_build", |b| {
        b.iter(|| {
            black_box(LatencyPredictor::build(
                black_box(dims),
                Primitive::AllReduce,
                &system,
            ))
        })
    });
}

fn bench_search(c: &mut Criterion) {
    let system = SystemSpec::rtx4090(4);
    let dims = GemmDims::new(4096, 8192, 8192);
    c.bench_function("tuner/predictive_search_t10", |b| {
        b.iter(|| {
            black_box(predictive_search(
                black_box(dims),
                Primitive::AllReduce,
                &system,
            ))
        })
    });
    c.bench_function("tuner/candidate_enumeration_t12", |b| {
        b.iter(|| black_box(candidate_partitions(black_box(12), 2, 4)))
    });
}

fn bench_simulated_run(c: &mut Criterion) {
    let system = SystemSpec::rtx4090(4);
    let dims = GemmDims::new(4096, 8192, 8192);
    let config = GemmConfig::choose(dims, &system.arch);
    let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
    let plan = OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system.clone(),
        WavePartition::new(vec![2; (waves / 2) as usize]),
    )
    .expect("plan");
    c.bench_function("runtime/execute_overlap_plan", |b| {
        b.iter(|| {
            black_box(
                plan.execute_with(&flashoverlap::ExecOptions::new())
                    .expect("execute"),
            )
        })
    });
    c.bench_function("baseline/nonoverlap_run", |b| {
        b.iter(|| {
            black_box(
                baselines::run_nonoverlap(dims, &CommPattern::AllReduce, &system)
                    .expect("nonoverlap"),
            )
        })
    });
}

fn bench_collective_cost(c: &mut Criterion) {
    let fabric = interconnect::FabricSpec::rtx4090_pcie();
    c.bench_function("collectives/cost_model_eval", |b| {
        b.iter(|| {
            let mut acc = SimDuration::ZERO;
            for bytes in [1u64 << 20, 1 << 24, 1 << 28] {
                acc += collectives::collective_duration(
                    Primitive::AllReduce,
                    black_box(bytes),
                    4,
                    &fabric,
                );
            }
            black_box(acc)
        })
    });
}

fn bench_token_mapping(c: &mut Criterion) {
    let grid = TileGrid::new(8192, 2048, TileShape::new(256, 128));
    let order = Swizzle::StripRows { height: 1 }.issue_order(&grid);
    let schedule = WaveSchedule::new(&order, 112);
    let partition = WavePartition::new(vec![1; schedule.num_waves() as usize]);
    let routing = workloads::balanced_routing(8192, 8, 3);
    c.bench_function("mapping/token_build_8192_tokens_8_ranks", |b| {
        b.iter(|| {
            black_box(
                flashoverlap::mapping::TokenMapping::build(
                    grid,
                    black_box(&schedule),
                    black_box(&partition),
                    black_box(&routing),
                )
                .expect("token mapping"),
            )
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    use flashoverlap::pipeline::{LayerSpec, Pipeline};
    use gpu_sim::elementwise::ElementwiseOp;
    use std::rc::Rc;
    let system = SystemSpec::rtx4090(4);
    let dims = GemmDims::new(2048, 2048, 2048);
    let rms = ElementwiseOp::RmsNorm {
        weight: Rc::new(vec![1.0; 2048]),
        eps: 1e-6,
    };
    let pipeline = Pipeline::tuned(
        system,
        vec![
            LayerSpec {
                dims,
                pattern: CommPattern::AllReduce,
                epilogue: Some(rms.clone()),
            },
            LayerSpec {
                dims,
                pattern: CommPattern::AllReduce,
                epilogue: Some(rms),
            },
        ],
    )
    .expect("pipeline");
    c.bench_function("pipeline/two_layer_execute", |b| {
        b.iter(|| {
            black_box(
                pipeline
                    .execute_with(&flashoverlap::PipelineExecOptions::new())
                    .expect("run"),
            )
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_event_engine, bench_mapping_build, bench_token_mapping,
              bench_predictor, bench_search, bench_simulated_run,
              bench_collective_cost, bench_pipeline
}
criterion_main!(benches);
