//! A vendored, dependency-free subset of the `criterion` crate.
//!
//! The workspace builds in environments with no cargo-registry access,
//! so the benchmark files link against this minimal harness instead: it
//! supports the `criterion_group!`/`criterion_main!` macros, timed
//! `iter`/`iter_batched` loops, and prints a mean-per-iteration summary
//! line per benchmark. No statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; only the variants the workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One routine call per setup value.
    SmallInput,
    /// Alias accepted for API parity.
    LargeInput,
}

/// Drives the timing loops inside one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark driver handed to each target function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to aggregate.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget run before measuring.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up pass: one short run to populate caches and let the
        // routine calibrate how long a single iteration takes.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
            warm_iters += b.iters.max(1);
        }
        let per_iter = warm_start.elapsed().as_nanos() / u128::from(warm_iters.max(1));
        // Split the measurement budget across `sample_size` samples.
        let budget_ns = self.measurement_time.as_nanos() / self.sample_size as u128;
        let iters = (budget_ns / per_iter.max(1)).clamp(1, 1 << 20) as u64;
        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            total += b.elapsed;
            total_iters += iters;
        }
        let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        println!("{name:<44} {:>12.1} ns/iter (n={total_iters})", mean_ns);
        self
    }
}

/// Declares a group of benchmark targets, mirroring upstream's
/// `name = ..; config = ..; targets = ..` grammar.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher {
            iters: 8,
            elapsed: Duration::ZERO,
        };
        let mut sum = 0u64;
        b.iter_batched(|| 3u64, |x| sum += x, BatchSize::SmallInput);
        assert_eq!(sum, 24);
    }
}
