//! SimSan — a happens-before sanitizer for the simulated GPU.
//!
//! FlashOverlap's whole correctness story rests on one invariant: a
//! collective may read a packed tile range only after the GEMM epilogue's
//! counting-table signal (§3.2.4) ordered every write to that range before
//! the read. SimSan checks that invariant dynamically, the way
//! ThreadSanitizer or `compute-sanitizer --tool racecheck` would on real
//! hardware, but against the *modelled* accesses of the discrete-event
//! simulation.
//!
//! It attaches to a run through two hooks:
//!
//! - a [`ClusterMonitor`] (via [`Sanitizer::monitor`]) receiving every
//!   modelled memory access and synchronization edge, and
//! - an [`EngineProbe`] (via [`Sanitizer::probe`]) whose drain callback
//!   fires once the event queue empties, for end-of-run liveness checks.
//!
//! Internally it is a vector-clock happens-before checker. Each
//! `(device, stream)` pair is one logical thread. Synchronization edges
//! map onto release/acquire pairs:
//!
//! | simulated mechanism                | release point          | acquire point            |
//! |------------------------------------|------------------------|--------------------------|
//! | counting-table signal (§3.2.4)     | each slot increment    | wait-threshold satisfied |
//! | CUDA event                         | `RecordEvent`          | `WaitEvent` satisfied    |
//! | collective rendezvous              | all-arrived (join all) | same                     |
//!
//! Findings come in four kinds (see [`Finding`]): generic data races,
//! use-before-signal races (a collective send overlapping an unordered
//! tile write — the bug class the signaling design exists to prevent),
//! lost signals (a wait whose threshold the drained run never reached),
//! and deadlocks (streams that never drained).
//!
//! The checker is exact for the simulator's sequential execution: accesses
//! arrive in simulated-time order, so only the "does the old access
//! happen-before the new one" direction needs testing, with the
//! FastTrack-style epoch comparison `old.clock[old.tid] <= now[old.tid]`.
//!
//! Conflict footprints are tile-granular via the predicate shared with the
//! static verifier ([`planverify::shadow::may_conflict`]): two accesses
//! attributed to the same reordered GEMM tile conflict even when their
//! modelled element ranges are disjoint, because the epilogue stores the
//! whole tile slot as one burst — pure range intersection provably misses
//! that partial-overlap case.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::rc::Rc;

use gpu_sim::cluster::Cluster;
use gpu_sim::device::DeviceId;
use gpu_sim::memory::BufferId;
use gpu_sim::monitor::{Access, AccessKind, AccessScope, ClusterMonitor};
use gpu_sim::stream::{GpuEventId, StreamId};
use sim::{EngineProbe, SimTime};

/// Hard cap on stored findings; a single seeded bug can race every tile of
/// a group, and 64 reports diagnose it as well as 4096 would.
const FINDING_CAP: usize = 64;

/// A vector clock, indexed by thread id. Missing trailing components are
/// implicitly zero.
type VClock = Vec<u32>;

fn join(into: &mut VClock, from: &VClock) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (a, &b) in into.iter_mut().zip(from) {
        *a = (*a).max(b);
    }
}

fn epoch(clock: &VClock, tid: usize) -> u32 {
    clock.get(tid).copied().unwrap_or(0)
}

/// One side of a reported race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceAccess {
    /// Stream the access ran on.
    pub stream: StreamId,
    /// Element range touched.
    pub range: Range<usize>,
    /// Read or write.
    pub kind: AccessKind,
    /// Producing operation class.
    pub scope: AccessScope,
}

/// One defect SimSan found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// Two unordered accesses to overlapping ranges of one buffer, at
    /// least one of them a write.
    DataRace {
        /// Device owning the buffer.
        device: DeviceId,
        /// The buffer.
        buffer: BufferId,
        /// The earlier access (simulated-time order).
        first: RaceAccess,
        /// The later access.
        second: RaceAccess,
    },
    /// A collective read a tile range with no counter edge ordering the
    /// epilogue's write before it — the missing-signal overlap bug the
    /// counting-table design exists to prevent.
    UseBeforeSignal {
        /// Device owning the packed buffer.
        device: DeviceId,
        /// The packed buffer.
        buffer: BufferId,
        /// Address-order tile index of the unordered write, when known.
        tile: Option<u32>,
        /// The tile write's element range.
        write: Range<usize>,
        /// The collective send's element range.
        read: Range<usize>,
    },
    /// A signal wait whose threshold the drained run never reached: the
    /// signal was lost (or never sent) and the waiter starved.
    LostSignal {
        /// Device owning the counting table.
        device: DeviceId,
        /// Stream of the starved waiter.
        stream: StreamId,
        /// Counting-table index.
        table: usize,
        /// Group slot waited on.
        group: usize,
        /// The threshold waited for.
        threshold: u32,
        /// The count actually reached by the end of the run.
        observed: u32,
    },
    /// A stream that never drained (one quiescence-check line).
    Deadlock {
        /// Human-readable description of the wedged stream.
        detail: String,
    },
}

impl Finding {
    /// Short kind name, for summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Finding::DataRace { .. } => "data-race",
            Finding::UseBeforeSignal { .. } => "use-before-signal",
            Finding::LostSignal { .. } => "lost-signal",
            Finding::Deadlock { .. } => "deadlock",
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::DataRace {
                device,
                buffer,
                first,
                second,
            } => write!(
                f,
                "data race on device {device} buffer {buffer}: {:?} {:?} of {:?} on stream {} \
                 is unordered with {:?} {:?} of {:?} on stream {}",
                first.scope,
                first.kind,
                first.range,
                first.stream,
                second.scope,
                second.kind,
                second.range,
                second.stream,
            ),
            Finding::UseBeforeSignal {
                device,
                buffer,
                tile,
                write,
                read,
            } => {
                write!(
                    f,
                    "use before signal on device {device} buffer {buffer}: collective reads \
                     {read:?} with no counter edge ordering the epilogue write {write:?}"
                )?;
                if let Some(t) = tile {
                    write!(f, " (tile {t})")?;
                }
                Ok(())
            }
            Finding::LostSignal {
                device,
                stream,
                table,
                group,
                threshold,
                observed,
            } => write!(
                f,
                "lost signal on device {device} stream {stream}: wait on table {table} group \
                 {group} needs {threshold} but the run ended at {observed}"
            ),
            Finding::Deadlock { detail } => write!(f, "deadlock: {detail}"),
        }
    }
}

/// One remembered access against which later accesses are checked.
#[derive(Debug)]
struct Record {
    tid: usize,
    clock: Rc<VClock>,
    range: Range<usize>,
    kind: AccessKind,
    scope: AccessScope,
    tile: Option<u32>,
}

#[derive(Debug, Default)]
struct State {
    /// `(device, stream)` -> dense thread id.
    threads: HashMap<(DeviceId, StreamId), usize>,
    clocks: Vec<VClock>,
    /// Cached immutable snapshot of each clock, invalidated on mutation;
    /// access records share snapshots instead of cloning per access.
    snapshots: Vec<Option<Rc<VClock>>>,
    /// Release label of each recorded CUDA event.
    event_labels: HashMap<(DeviceId, GpuEventId), VClock>,
    /// Release label of each `(device, table, group)` counter slot,
    /// accumulated over its increments.
    counter_labels: HashMap<(DeviceId, usize, usize), VClock>,
    records: HashMap<(DeviceId, BufferId), Vec<Record>>,
    findings: Vec<Finding>,
    suppressed: usize,
    accesses_checked: u64,
}

impl State {
    fn tid(&mut self, device: DeviceId, stream: StreamId) -> usize {
        if let Some(&t) = self.threads.get(&(device, stream)) {
            return t;
        }
        let t = self.clocks.len();
        self.threads.insert((device, stream), t);
        let mut clock = vec![0; t + 1];
        clock[t] = 1;
        self.clocks.push(clock);
        self.snapshots.push(None);
        t
    }

    fn snapshot(&mut self, tid: usize) -> Rc<VClock> {
        if let Some(s) = &self.snapshots[tid] {
            return Rc::clone(s);
        }
        let s = Rc::new(self.clocks[tid].clone());
        self.snapshots[tid] = Some(Rc::clone(&s));
        s
    }

    /// Release: fold the thread's clock into `label`, then advance the
    /// thread's own epoch so later accesses are *not* covered by it.
    fn release_into(&mut self, tid: usize, label: VClockKey) {
        let clock = self.clocks[tid].clone();
        let slot = match label {
            VClockKey::Event(k) => self.event_labels.entry(k).or_default(),
            VClockKey::Counter(k) => self.counter_labels.entry(k).or_default(),
        };
        join(slot, &clock);
        self.clocks[tid][tid] += 1;
        self.snapshots[tid] = None;
    }

    /// Acquire: fold `label` into the thread's clock. A missing label is a
    /// no-op (e.g. a zero-threshold wait satisfied with no increments —
    /// nothing to order against).
    fn acquire_from(&mut self, tid: usize, label: VClockKey) {
        let slot = match label {
            VClockKey::Event(k) => self.event_labels.get(&k),
            VClockKey::Counter(k) => self.counter_labels.get(&k),
        };
        if let Some(label) = slot.cloned() {
            join(&mut self.clocks[tid], &label);
            self.snapshots[tid] = None;
        }
    }

    fn rendezvous(&mut self, participants: &[(DeviceId, StreamId)]) {
        let tids: Vec<usize> = participants.iter().map(|&(d, s)| self.tid(d, s)).collect();
        let mut joined = VClock::new();
        for &t in &tids {
            join(&mut joined, &self.clocks[t]);
        }
        for &t in &tids {
            let mut clock = joined.clone();
            clock[t] += 1;
            self.clocks[t] = clock;
            self.snapshots[t] = None;
        }
    }

    fn check_access(&mut self, a: &Access) {
        let tid = self.tid(a.device, a.stream);
        let snap = self.snapshot(tid);
        self.accesses_checked += 1;
        let mut found = Vec::new();
        let records = self.records.entry((a.device, a.buffer)).or_default();
        for r in records.iter() {
            // Same thread: ordered by the stream's program order.
            if r.tid == tid {
                continue;
            }
            // Conflict needs an overlap and at least one write.
            if r.kind == AccessKind::Read && a.kind == AccessKind::Read {
                continue;
            }
            // Footprint test at tile granularity (shared with the static
            // verifier): same-tile accesses conflict even when their
            // modelled sub-ranges are disjoint, because the epilogue
            // stores the whole tile slot as one burst — the sub-ranges
            // under-approximate the store's true footprint.
            if !planverify::shadow::may_conflict(
                r.tile,
                r.range.start,
                r.range.end,
                a.tile,
                a.range.start,
                a.range.end,
            ) {
                continue;
            }
            // Happens-before (epoch test): the old access is covered by the
            // new thread's clock iff its component at the old thread made
            // it across some release/acquire chain.
            if epoch(&r.clock, r.tid) <= epoch(&snap, r.tid) {
                continue;
            }
            found.push(classify(a, r));
        }
        records.push(Record {
            tid,
            clock: snap,
            range: a.range.clone(),
            kind: a.kind,
            scope: a.scope,
            tile: a.tile,
        });
        for f in found {
            self.report(f);
        }
    }

    fn report(&mut self, finding: Finding) {
        if self.findings.len() < FINDING_CAP {
            self.findings.push(finding);
        } else {
            self.suppressed += 1;
        }
    }
}

enum VClockKey {
    Event((DeviceId, GpuEventId)),
    Counter((DeviceId, usize, usize)),
}

/// A tile write racing a collective send is the signature of a dropped or
/// late signal; everything else is a generic data race.
fn classify(new: &Access, old: &Record) -> Finding {
    let pair = (old.scope, old.kind, new.scope, new.kind);
    match pair {
        (
            AccessScope::TileWrite,
            AccessKind::Write,
            AccessScope::CollectiveSend,
            AccessKind::Read,
        ) => Finding::UseBeforeSignal {
            device: new.device,
            buffer: new.buffer,
            tile: old.tile,
            write: old.range.clone(),
            read: new.range.clone(),
        },
        (
            AccessScope::CollectiveSend,
            AccessKind::Read,
            AccessScope::TileWrite,
            AccessKind::Write,
        ) => Finding::UseBeforeSignal {
            device: new.device,
            buffer: new.buffer,
            tile: new.tile,
            write: new.range.clone(),
            read: old.range.clone(),
        },
        _ => Finding::DataRace {
            device: new.device,
            buffer: new.buffer,
            first: RaceAccess {
                stream: old_stream_of(old),
                range: old.range.clone(),
                kind: old.kind,
                scope: old.scope,
            },
            second: RaceAccess {
                stream: new.stream,
                range: new.range.clone(),
                kind: new.kind,
                scope: new.scope,
            },
        },
    }
}

/// Records store thread ids, not streams; reverse-mapping them for the
/// report would need the thread table, so findings carry the tid as the
/// "stream" field of the first access. Thread ids are assigned in first-
/// touch order, which matches stream creation order in every program the
/// runtime builds, so the number is still the right diagnostic handle.
fn old_stream_of(old: &Record) -> StreamId {
    old.tid
}

#[derive(Debug, Default)]
struct Inner {
    state: RefCell<State>,
}

impl ClusterMonitor for Inner {
    fn on_access(&self, access: &Access) {
        self.state.borrow_mut().check_access(access);
    }

    fn on_counter_increment(
        &self,
        _at: SimTime,
        device: DeviceId,
        stream: StreamId,
        table: usize,
        group: usize,
        _by: u32,
    ) {
        let mut st = self.state.borrow_mut();
        let tid = st.tid(device, stream);
        st.release_into(tid, VClockKey::Counter((device, table, group)));
    }

    fn on_counter_satisfied(
        &self,
        _at: SimTime,
        device: DeviceId,
        stream: StreamId,
        table: usize,
        group: usize,
        _threshold: u32,
    ) {
        let mut st = self.state.borrow_mut();
        let tid = st.tid(device, stream);
        st.acquire_from(tid, VClockKey::Counter((device, table, group)));
    }

    fn on_event_record(&self, _at: SimTime, device: DeviceId, stream: StreamId, event: GpuEventId) {
        let mut st = self.state.borrow_mut();
        let tid = st.tid(device, stream);
        st.release_into(tid, VClockKey::Event((device, event)));
    }

    fn on_event_wait(&self, _at: SimTime, device: DeviceId, stream: StreamId, event: GpuEventId) {
        let mut st = self.state.borrow_mut();
        let tid = st.tid(device, stream);
        st.acquire_from(tid, VClockKey::Event((device, event)));
    }

    fn on_rendezvous(&self, _at: SimTime, participants: &[(DeviceId, StreamId)]) {
        self.state.borrow_mut().rendezvous(participants);
    }

    fn on_counter_reset(&self, _at: SimTime, device: DeviceId, _stream: StreamId, table: usize) {
        // Epoch boundary: a reset slot's accumulated release label
        // describes signals a previous layer/iteration consumed. A wait of
        // the new epoch must be ordered only by the new epoch's
        // increments, so the stale labels are dropped — otherwise an
        // acquire against a reused slot would inherit edges no surviving
        // signal justifies.
        self.state
            .borrow_mut()
            .counter_labels
            .retain(|&(d, t, _), _| d != device || t != table);
    }
}

impl EngineProbe<Cluster> for Inner {
    fn on_drain(&self, _now: SimTime, world: &mut Cluster) {
        let mut st = self.state.borrow_mut();
        for dev in &world.devices {
            for (table, t) in dev.counter_tables() {
                for w in t.parked_waiters() {
                    st.report(Finding::LostSignal {
                        device: dev.id,
                        stream: w.completion.stream(),
                        table,
                        group: w.group,
                        threshold: w.threshold,
                        observed: t.count(w.group),
                    });
                }
            }
        }
        if let Err(stuck) = world.check_quiescent() {
            for detail in stuck {
                st.report(Finding::Deadlock { detail });
            }
        }
    }
}

/// The sanitizer. Create one per simulated run, attach both hooks before
/// the run, inspect [`Sanitizer::reports`] after it:
///
/// ```
/// use gpu_sim::{Cluster, ClusterSim};
/// use gpu_sim::arch::GpuArch;
/// use simsan::Sanitizer;
///
/// let sanitizer = Sanitizer::new();
/// let mut world = Cluster::new(2, GpuArch::rtx4090(), false, 1);
/// world.set_monitor(sanitizer.monitor());
/// let mut sim: ClusterSim = sim::Sim::new();
/// sim.set_probe(sanitizer.probe());
/// // ... enqueue a program, sim.run(&mut world) ...
/// assert!(sanitizer.is_clean());
/// ```
#[derive(Debug, Default)]
pub struct Sanitizer {
    inner: Rc<Inner>,
}

impl Sanitizer {
    /// Creates a fresh sanitizer with no findings.
    pub fn new() -> Self {
        Self::default()
    }

    /// The access/synchronization observer to attach with
    /// [`Cluster::set_monitor`].
    pub fn monitor(&self) -> Rc<dyn ClusterMonitor> {
        Rc::clone(&self.inner) as Rc<dyn ClusterMonitor>
    }

    /// The engine probe to attach with [`sim::Sim::set_probe`]; its drain
    /// callback performs the end-of-run lost-signal and deadlock checks.
    pub fn probe(&self) -> Rc<dyn EngineProbe<Cluster>> {
        Rc::clone(&self.inner) as Rc<dyn EngineProbe<Cluster>>
    }

    /// All findings so far, in detection order (capped; see
    /// [`Sanitizer::suppressed`]).
    pub fn reports(&self) -> Vec<Finding> {
        self.inner.state.borrow().findings.clone()
    }

    /// Whether no finding was recorded.
    pub fn is_clean(&self) -> bool {
        let st = self.inner.state.borrow();
        st.findings.is_empty() && st.suppressed == 0
    }

    /// Findings dropped beyond the storage cap.
    pub fn suppressed(&self) -> usize {
        self.inner.state.borrow().suppressed
    }

    /// Number of modelled accesses checked.
    pub fn accesses_checked(&self) -> u64 {
        self.inner.state.borrow().accesses_checked
    }

    /// One-line human-readable result, e.g. for CLI output.
    pub fn summary(&self) -> String {
        let st = self.inner.state.borrow();
        if st.findings.is_empty() && st.suppressed == 0 {
            return format!("simsan: clean ({} accesses checked)", st.accesses_checked);
        }
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for f in &st.findings {
            *counts.entry(f.kind()).or_default() += 1;
        }
        let mut parts: Vec<String> = counts
            .into_iter()
            .map(|(k, c)| format!("{c} {k}"))
            .collect();
        parts.sort();
        let mut line = format!(
            "simsan: {} finding(s) [{}] over {} accesses",
            st.findings.len() + st.suppressed,
            parts.join(", "),
            st.accesses_checked,
        );
        if st.suppressed > 0 {
            line.push_str(&format!(" ({} suppressed)", st.suppressed));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(
        device: DeviceId,
        stream: StreamId,
        buffer: BufferId,
        range: Range<usize>,
        kind: AccessKind,
        scope: AccessScope,
        tile: Option<u32>,
    ) -> Access {
        Access {
            device,
            stream,
            buffer,
            range,
            kind,
            scope,
            tile,
        }
    }

    #[test]
    fn unordered_write_then_read_is_a_race() {
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            0,
            7,
            0..64,
            AccessKind::Write,
            AccessScope::ElementwiseWrite,
            None,
        ));
        m.on_access(&access(
            0,
            1,
            7,
            32..96,
            AccessKind::Read,
            AccessScope::RemapRead,
            None,
        ));
        let reports = s.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind(), "data-race");
    }

    #[test]
    fn tile_write_vs_collective_send_classifies_as_use_before_signal() {
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            0,
            3,
            0..128,
            AccessKind::Write,
            AccessScope::TileWrite,
            Some(5),
        ));
        m.on_access(&access(
            0,
            1,
            3,
            0..128,
            AccessKind::Read,
            AccessScope::CollectiveSend,
            None,
        ));
        let reports = s.reports();
        assert_eq!(reports.len(), 1);
        match &reports[0] {
            Finding::UseBeforeSignal {
                tile, write, read, ..
            } => {
                assert_eq!(*tile, Some(5));
                assert_eq!(*write, 0..128);
                assert_eq!(*read, 0..128);
            }
            other => panic!("expected UseBeforeSignal, got {other:?}"),
        }
        // The reverse order (send first, tile write later — the shape a
        // dropped wait actually produces) classifies the same way.
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            1,
            3,
            0..128,
            AccessKind::Read,
            AccessScope::CollectiveSend,
            None,
        ));
        m.on_access(&access(
            0,
            0,
            3,
            0..128,
            AccessKind::Write,
            AccessScope::TileWrite,
            Some(9),
        ));
        assert_eq!(s.reports()[0].kind(), "use-before-signal");
    }

    #[test]
    fn counter_edge_orders_write_before_read() {
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            0,
            3,
            0..128,
            AccessKind::Write,
            AccessScope::TileWrite,
            Some(0),
        ));
        m.on_counter_increment(SimTime::ZERO, 0, 0, 0, 0, 1);
        m.on_counter_satisfied(SimTime::ZERO, 0, 1, 0, 0, 1);
        m.on_access(&access(
            0,
            1,
            3,
            0..128,
            AccessKind::Read,
            AccessScope::CollectiveSend,
            None,
        ));
        assert!(s.is_clean(), "{:?}", s.reports());
    }

    #[test]
    fn writes_after_the_increment_still_race() {
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_counter_increment(SimTime::ZERO, 0, 0, 0, 0, 1);
        m.on_counter_satisfied(SimTime::ZERO, 0, 1, 0, 0, 1);
        // This write happens after the release, so the acquire does not
        // cover it.
        m.on_access(&access(
            0,
            0,
            3,
            0..128,
            AccessKind::Write,
            AccessScope::TileWrite,
            Some(1),
        ));
        m.on_access(&access(
            0,
            1,
            3,
            0..128,
            AccessKind::Read,
            AccessScope::CollectiveSend,
            None,
        ));
        assert_eq!(s.reports().len(), 1);
    }

    #[test]
    fn event_edge_orders_streams() {
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            0,
            1,
            0..8,
            AccessKind::Write,
            AccessScope::CollectiveRecv,
            None,
        ));
        m.on_event_record(SimTime::ZERO, 0, 0, 0);
        m.on_event_wait(SimTime::ZERO, 0, 1, 0);
        m.on_access(&access(
            0,
            1,
            1,
            0..8,
            AccessKind::Read,
            AccessScope::RemapRead,
            None,
        ));
        assert!(s.is_clean(), "{:?}", s.reports());
    }

    #[test]
    fn rendezvous_joins_all_participants() {
        let s = Sanitizer::new();
        let m = s.monitor();
        // Rank 0's comm stream writes, both ranks rendezvous, rank 1's
        // comm stream (same device-0 buffer would be odd — use the write
        // on device 0 read later by device 0's *other* stream, ordered
        // only through the rendezvous).
        m.on_access(&access(
            0,
            0,
            2,
            0..4,
            AccessKind::Write,
            AccessScope::ElementwiseWrite,
            None,
        ));
        m.on_rendezvous(SimTime::ZERO, &[(0, 0), (0, 1)]);
        m.on_access(&access(
            0,
            1,
            2,
            0..4,
            AccessKind::Read,
            AccessScope::RemapRead,
            None,
        ));
        assert!(s.is_clean(), "{:?}", s.reports());
    }

    #[test]
    fn per_device_buffers_never_alias() {
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            0,
            5,
            0..64,
            AccessKind::Write,
            AccessScope::TileWrite,
            Some(0),
        ));
        m.on_access(&access(
            1,
            0,
            5,
            0..64,
            AccessKind::Write,
            AccessScope::TileWrite,
            Some(0),
        ));
        assert!(s.is_clean());
    }

    #[test]
    fn disjoint_ranges_do_not_conflict() {
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            0,
            5,
            0..64,
            AccessKind::Write,
            AccessScope::TileWrite,
            Some(0),
        ));
        m.on_access(&access(
            0,
            1,
            5,
            64..128,
            AccessKind::Read,
            AccessScope::CollectiveSend,
            None,
        ));
        assert!(s.is_clean());
    }

    #[test]
    fn same_tile_partial_overlap_race_is_caught_by_the_tile_shadow() {
        // Regression for ROADMAP carried item b: two unordered accesses to
        // *different sub-ranges of the same tile*. The epilogue stores
        // tile 4's slot as one burst, so the collective send genuinely
        // overlaps the write — but the modelled ranges are disjoint, and
        // the old range-intersection skip would have dropped the pair:
        let (w, r) = (32..64usize, 0..32usize);
        assert!(
            w.start >= r.end || r.start >= w.end,
            "the ranges must be disjoint for this test to prove anything"
        );
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            0,
            3,
            w,
            AccessKind::Write,
            AccessScope::TileWrite,
            Some(4),
        ));
        m.on_access(&access(
            0,
            1,
            3,
            r,
            AccessKind::Read,
            AccessScope::CollectiveSend,
            Some(4),
        ));
        let reports = s.reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].kind(), "use-before-signal");
        // Different tiles with the same disjoint ranges stay clean: the
        // predicate sharpens on tile identity, it does not widen.
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            0,
            3,
            32..64,
            AccessKind::Write,
            AccessScope::TileWrite,
            Some(4),
        ));
        m.on_access(&access(
            0,
            1,
            3,
            0..32,
            AccessKind::Read,
            AccessScope::CollectiveSend,
            Some(5),
        ));
        assert!(s.is_clean(), "{:?}", s.reports());
    }

    #[test]
    fn findings_are_capped() {
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            0,
            5,
            0..10_000,
            AccessKind::Write,
            AccessScope::TileWrite,
            None,
        ));
        for i in 0..(FINDING_CAP + 10) {
            m.on_access(&access(
                0,
                1,
                5,
                i..i + 1,
                AccessKind::Read,
                AccessScope::CollectiveSend,
                None,
            ));
        }
        assert_eq!(s.reports().len(), FINDING_CAP);
        assert_eq!(s.suppressed(), 10);
        assert!(!s.is_clean());
        assert!(s.summary().contains("suppressed"), "{}", s.summary());
    }

    #[test]
    fn reset_reused_slot_does_not_leak_stale_edges() {
        let s = Sanitizer::new();
        let m = s.monitor();
        // Epoch 1: a tile write released into the slot's label (via a later
        // increment of the same table, which folds the write's clock in).
        m.on_access(&access(
            0,
            0,
            3,
            0..128,
            AccessKind::Write,
            AccessScope::TileWrite,
            Some(0),
        ));
        m.on_counter_increment(SimTime::ZERO, 0, 0, 0, 1, 1);
        // The table is reset for reuse: accumulated labels must not survive
        // the epoch boundary.
        m.on_counter_reset(SimTime::ZERO, 0, 0, 0);
        // Epoch 2: a wait satisfied against the reused slot acquires
        // nothing, so the collective read still races the unsignalled
        // write.
        m.on_counter_satisfied(SimTime::ZERO, 0, 1, 0, 1, 1);
        m.on_access(&access(
            0,
            1,
            3,
            0..128,
            AccessKind::Read,
            AccessScope::CollectiveSend,
            None,
        ));
        assert_eq!(s.reports().len(), 1, "{:?}", s.reports());
        assert_eq!(s.reports()[0].kind(), "use-before-signal");
    }

    #[test]
    fn drain_reports_lost_signal_and_deadlock() {
        use gpu_sim::arch::GpuArch;
        use gpu_sim::stream::{enqueue, WaitCounter};
        use gpu_sim::ClusterSim;

        let s = Sanitizer::new();
        let mut world = Cluster::new(1, GpuArch::rtx4090(), false, 1);
        world.set_monitor(s.monitor());
        let mut sim: ClusterSim = sim::Sim::new();
        sim.set_probe(s.probe());
        let stream = world.devices[0].create_stream();
        let table = world.devices[0].create_counter(1);
        // A wait nobody ever signals: the queue drains with the waiter
        // parked and the stream wedged.
        enqueue(
            &mut world,
            &mut sim,
            0,
            stream,
            Box::new(WaitCounter {
                table,
                group: 0,
                threshold: 3,
            }),
        );
        sim.run(&mut world).unwrap();
        let kinds: Vec<&str> = s.reports().iter().map(Finding::kind).collect();
        assert!(kinds.contains(&"lost-signal"), "{kinds:?}");
        assert!(kinds.contains(&"deadlock"), "{kinds:?}");
        match &s.reports()[0] {
            Finding::LostSignal {
                threshold,
                observed,
                ..
            } => {
                assert_eq!(*threshold, 3);
                assert_eq!(*observed, 0);
            }
            other => panic!("expected LostSignal first, got {other:?}"),
        }
    }

    #[test]
    fn summary_reads_clean_on_a_clean_run() {
        let s = Sanitizer::new();
        let m = s.monitor();
        m.on_access(&access(
            0,
            0,
            1,
            0..4,
            AccessKind::Write,
            AccessScope::TileWrite,
            None,
        ));
        assert!(s.summary().starts_with("simsan: clean"));
        assert_eq!(s.accesses_checked(), 1);
    }

    #[test]
    fn findings_render_human_readable() {
        let f = Finding::LostSignal {
            device: 1,
            stream: 2,
            table: 0,
            group: 3,
            threshold: 16,
            observed: 12,
        };
        let text = f.to_string();
        assert!(text.contains("device 1"), "{text}");
        assert!(text.contains("needs 16"), "{text}");
    }
}
