//! A vendored, dependency-free subset of the `proptest` crate.
//!
//! The workspace builds in environments with no access to a cargo
//! registry, so the property-testing surface the test suites rely on is
//! reimplemented here: the `proptest!` macro grammar, `Strategy` with
//! `prop_map`, range / tuple / vec / select / `any` strategies, and the
//! `prop_assert*` family. Sampling is uniform and deterministic (seeded
//! per test name), without shrinking: a failing case prints the
//! generated inputs via the assertion message instead.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `elem` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use crate::strategy::Select;

    /// A strategy choosing one element of `options` uniformly.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// The `prop` facade module re-exported by the prelude
/// (`prop::sample::select`, `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property-test file conventionally imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Mirrors the upstream grammar used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` item into a
/// standard test that loops over generated cases.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the current case
/// (with the formatted message) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Discards the current case when its inputs don't satisfy a
/// precondition; the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(stringify!(
                $cond
            )));
        }
    };
}
