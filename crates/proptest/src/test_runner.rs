//! The case-loop runner, its RNG, and failure plumbing.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` precondition failed; the case is redrawn.
    Reject(&'static str),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic split-mix style RNG used for value generation.
///
/// Seeded from the test name so every test draws an independent,
/// reproducible stream; no global state, no filesystem persistence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream derived from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below_u128 bound must be positive");
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % bound
    }

    /// Uniform draw in `[0, 1)`.
    #[allow(clippy::cast_precision_loss)]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn seed_from_name(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `f` for `config.cases` successful cases, redrawing rejected
/// cases (up to a cap) and panicking on the first failure.
///
/// # Panics
///
/// Panics when a case fails or when `prop_assume!` rejects too many
/// consecutive draws.
pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::new(seed_from_name(name));
    let mut executed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = config.cases.saturating_mul(20).saturating_add(100);
    while executed < config.cases {
        match f(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(cond)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest {name}: too many prop_assume rejections ({cond})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name}: case {executed} failed\n{msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "case 0 failed")]
    fn failures_panic() {
        run(&ProptestConfig::with_cases(4), "failures_panic", |_| {
            Err(TestCaseError::fail("boom".to_string()))
        });
    }

    #[test]
    fn rejects_are_redrawn() {
        let mut calls = 0u32;
        run(&ProptestConfig::with_cases(4), "rejects", |_| {
            calls += 1;
            if calls.is_multiple_of(2) {
                Err(TestCaseError::Reject("odd only"))
            } else {
                Ok(())
            }
        });
        assert!(calls >= 7);
    }
}
