//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically draws values from a [`TestRng`].
//! Integer and float ranges are sampled uniformly with a small bias
//! toward the range endpoints (where off-by-one bugs live), matching the
//! spirit — not the implementation — of upstream proptest.

use crate::test_runner::TestRng;

/// A source of generated values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T` (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty as $u:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $u as $t
            }
        }
    )*};
}
arbitrary_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-ish domain; property tests here never want NaN.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl Arbitrary for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = match rng.next_u64() % 16 {
                    0 => 0,                          // bias: low endpoint
                    1 => span - 1,                   // bias: high endpoint
                    _ => rng.below_u128(span),
                };
                ((self.start as i128) + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = match rng.next_u64() % 16 {
                    0 => 0,
                    1 => span - 1,
                    _ => rng.below_u128(span),
                };
                ((*self.start() as i128) + off as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Length bounds for [`crate::collection::vec`] (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy returned by [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy returned by [`crate::sample::select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}
