//! Property-based fault campaign: for arbitrary problem shapes and
//! deterministic random fault plans, a resilient run must terminate and
//! deliver either bit-exact outputs or a structured `Degraded` verdict
//! with a non-empty cause — never a hang, never silent corruption.

use flashoverlap::resilience::{FaultPlan, ResilientOutcome, WatchdogConfig};
use flashoverlap::runtime::{CommPattern, FunctionalInputs};
use flashoverlap::{ExecOptions, OverlapPlan, SystemSpec, WavePartition};
use gpu_sim::gemm::{GemmConfig, GemmDims};
use proptest::prelude::*;

fn plan_for(m: u32, n: u32, k: u32, gpus: usize) -> OverlapPlan {
    let dims = GemmDims::new(m, n, k);
    let mut system = SystemSpec::rtx4090(gpus);
    system.arch.sm_count = 8;
    system.comm_sms = 2;
    let config = GemmConfig::choose(dims, &system.arch);
    let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
    OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system,
        WavePartition::per_wave(waves),
    )
    .expect("valid plan")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every seeded fault plan terminates with an accounted-for verdict:
    /// `Clean`/`Recovered` runs are bit-exact against the fault-free
    /// functional reference, and `Degraded` runs name their cause.
    #[test]
    fn seeded_fault_campaigns_terminate_accountably(
        m in prop::sample::select(vec![128u32, 256, 384]),
        n in prop::sample::select(vec![128u32, 256]),
        gpus in prop::sample::select(vec![2usize, 3]),
        seed in any::<u64>(),
    ) {
        let plan = plan_for(m, n, 64, gpus);
        let num_groups = plan.partition.num_groups();
        let inputs = FunctionalInputs::random(plan.dims, gpus, seed ^ 0x9e37);
        let reference = plan
            .execute_with(&ExecOptions::new().functional(&inputs))
            .expect("reference run");
        let reference_outputs = reference.outputs.unwrap_or_default();
        let faults = FaultPlan::random(seed, gpus, num_groups);
        prop_assert!(!faults.is_empty());

        let run = plan
            .execute_with(
                &ExecOptions::new()
                    .functional(&inputs)
                    .resilient(&faults, &WatchdogConfig::default()),
            )
            .expect("resilient run terminates");

        let run_outputs = run.outputs.clone().unwrap_or_default();
        let bit_exact = run_outputs.len() == reference_outputs.len()
            && run_outputs
                .iter()
                .zip(reference_outputs.iter())
                .all(|(a, b)| a.as_slice() == b.as_slice());
        match &run.outcome {
            ResilientOutcome::Clean => prop_assert!(bit_exact, "clean run must be bit-exact"),
            ResilientOutcome::Recovered { tail_groups, .. } => {
                prop_assert!(bit_exact, "recovered run must be bit-exact");
                prop_assert!(!tail_groups.is_empty(), "recovery must name its groups");
            }
            ResilientOutcome::Degraded { cause, .. } => {
                prop_assert!(!cause.is_empty(), "degraded verdict must carry a cause");
                prop_assert!(bit_exact, "degraded fallback still reads complete tiles");
            }
        }
    }

    /// The same seed always yields the same verdict and latency — fault
    /// campaigns are replayable.
    #[test]
    fn fault_campaigns_are_replayable(seed in any::<u64>()) {
        let plan = plan_for(256, 256, 64, 2);
        let faults = FaultPlan::random(seed, 2, plan.partition.num_groups());
        let a = plan
            .execute_with(&ExecOptions::new().resilient(&faults, &WatchdogConfig::default()))
            .expect("first run");
        let b = plan
            .execute_with(&ExecOptions::new().resilient(&faults, &WatchdogConfig::default()))
            .expect("second run");
        prop_assert_eq!(&a.outcome, &b.outcome);
        prop_assert_eq!(a.report.latency, b.report.latency);
        prop_assert_eq!(a.events.len(), b.events.len());
    }
}
