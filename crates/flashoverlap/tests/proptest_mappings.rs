//! Property-based tests of the reordering mappings: for arbitrary
//! shapes, swizzles, concurrencies, and partitions, the packing must be
//! a bijection with contiguous per-group regions — the invariants the
//! §3.3 correctness arguments rest on.

use flashoverlap::mapping::{SubtileMapping, TileMapping, TokenMapping};
use flashoverlap::partition::WavePartition;
use gpu_sim::swizzle::Swizzle;
use gpu_sim::tile::{TileGrid, TileShape};
use gpu_sim::wave::WaveSchedule;
use proptest::prelude::*;
use sim::DetRng;

/// A random-but-valid (grid, schedule, partition) triple.
fn scenario(
    tiles_m: u32,
    tiles_n: u32,
    tile: u32,
    width: u32,
    conc: u32,
    part_seed: u64,
) -> (TileGrid, WaveSchedule, WavePartition) {
    let grid = TileGrid::new(tiles_m * tile, tiles_n * tile, TileShape::new(tile, tile));
    let order = Swizzle::Strip { width }.issue_order(&grid);
    let schedule = WaveSchedule::new(&order, conc);
    let mut rng = DetRng::new(part_seed);
    let mut sizes = Vec::new();
    let mut left = schedule.num_waves();
    while left > 0 {
        let take = rng.range_inclusive(1, left as u64) as u32;
        sizes.push(take);
        left -= take;
    }
    (grid, schedule, WavePartition::new(sizes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tile mapping: packed_index is a bijection and group regions
    /// partition the buffer contiguously.
    #[test]
    fn tile_mapping_invariants(tm in 1u32..10, tn in 1u32..10, width in 1u32..5,
                               conc in 1u32..20, seed in any::<u64>()) {
        let (grid, schedule, partition) = scenario(tm, tn, 16, width, conc, seed);
        let mapping = TileMapping::build(grid, &schedule, &partition);
        let mut seen = vec![false; mapping.total_elems];
        for r in 0..grid.m() {
            for c in 0..grid.n() {
                let i = mapping.packed_index(r, c);
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let mut acc = 0usize;
        for &(start, count) in &mapping.group_regions {
            prop_assert_eq!(start, acc);
            acc += count;
        }
        prop_assert_eq!(acc, mapping.total_elems);
    }

    /// Subtile mapping: the send packing is a bijection, every group
    /// region splits evenly across ranks, and each element lands in the
    /// destination block matching its row residue.
    #[test]
    fn subtile_mapping_invariants(tm in 1u32..8, tn in 1u32..8, width in 1u32..4,
                                  conc in 1u32..16, seed in any::<u64>(),
                                  ranks in prop::sample::select(vec![2usize, 4, 8])) {
        let (grid, schedule, partition) = scenario(tm, tn, 16, width, conc, seed);
        prop_assume!((16 % ranks) == 0);
        let mapping = SubtileMapping::build(grid, &schedule, &partition, ranks).unwrap();
        let mut seen = vec![false; mapping.total_send_elems];
        for r in 0..grid.m() {
            for c in 0..grid.n() {
                let i = mapping.packed_send_index(r, c);
                prop_assert!(!seen[i]);
                seen[i] = true;
                // Destination block check.
                let g = mapping
                    .send_group_regions
                    .iter()
                    .position(|&(s, cnt)| i >= s && i < s + cnt)
                    .expect("inside some group");
                let (start, count) = mapping.send_group_regions[g];
                prop_assert_eq!(count % ranks, 0);
                let dest = (i - start) / (count / ranks);
                prop_assert_eq!(dest, r as usize % ranks);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Token mapping: all tokens pack exactly once on the send side,
    /// plans conserve tokens, and the receive gather is a permutation of
    /// received rows sorted by (source, row).
    #[test]
    fn token_mapping_invariants(bands in 1u32..10, tn in 1u32..6, conc in 1u32..12,
                                seed in any::<u64>(),
                                ranks in prop::sample::select(vec![2usize, 3, 4])) {
        let grid = TileGrid::new(bands * 16, tn * 16, TileShape::new(16, 16));
        let order = Swizzle::Strip { width: 2 }.issue_order(&grid);
        let schedule = WaveSchedule::new(&order, conc);
        let mut rng = DetRng::new(seed);
        let mut sizes = Vec::new();
        let mut left = schedule.num_waves();
        while left > 0 {
            let take = rng.range_inclusive(1, left as u64) as u32;
            sizes.push(take);
            left -= take;
        }
        let partition = WavePartition::new(sizes);
        let m = grid.m() as usize;
        let routing: Vec<Vec<usize>> = (0..ranks)
            .map(|_| (0..m).map(|_| rng.next_below(ranks as u64) as usize).collect())
            .collect();
        let mapping = TokenMapping::build(grid, &schedule, &partition, &routing).unwrap();

        // Send side: every token offset distinct, row-sized strides.
        for src in 0..ranks {
            let mut offsets = mapping.token_offset[src].clone();
            offsets.sort_unstable();
            let expected: Vec<usize> = (0..m).map(|i| i * grid.n() as usize).collect();
            prop_assert_eq!(offsets, expected);
        }
        // Conservation: sent == routed == received.
        let total_recv: usize = mapping.recv_elems.iter().sum();
        prop_assert_eq!(total_recv, ranks * m * grid.n() as usize);
        // Receive gathers are sorted permutations.
        for dest in 0..ranks {
            let expected_rows = mapping.recv_elems[dest] / grid.n() as usize;
            prop_assert_eq!(mapping.recv_row_gather[dest].len(), expected_rows);
            let mut packed = mapping.recv_row_gather[dest].clone();
            packed.sort_unstable();
            prop_assert_eq!(packed, (0..expected_rows as u32).collect::<Vec<_>>());
            for pair in mapping.recv_expected[dest].windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
        }
    }

    /// AllGather mapping: the receive gather is a bijection onto the
    /// n-times-larger receive buffer for any rank count.
    #[test]
    fn all_gather_mapping_invariants(tm in 1u32..6, tn in 1u32..6, conc in 1u32..10,
                                     seed in any::<u64>(),
                                     ranks in prop::sample::select(vec![2usize, 3, 4, 8])) {
        let (grid, schedule, partition) = scenario(tm, tn, 16, 2, conc, seed);
        let mapping = TileMapping::build(grid, &schedule, &partition);
        let gather = mapping.all_gather_gather(ranks);
        prop_assert_eq!(gather.len(), mapping.total_elems * ranks);
        let mut seen = vec![false; mapping.all_gather_recv_elems(ranks)];
        for &i in &gather {
            prop_assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
