//! Coverage for the deprecated execute shims.
//!
//! `execute_with` is the single public execute entry point on
//! [`OverlapPlan`] and [`Pipeline`]; the old per-mode methods survive
//! as deprecated one-line delegates so downstream callers migrate on
//! their own schedule. This test drives every shim once and pins each
//! one to the `execute_with` call its deprecation note names, so a shim
//! can never drift from the unified path it wraps.

#![allow(deprecated)]
#![allow(clippy::unwrap_used)]

use std::rc::Rc;

use flashoverlap::runtime::CommPattern;
use flashoverlap::{
    ExecOptions, FaultPlan, FunctionalInputs, Instrumentation, LayerSpec, OverlapPlan, Pipeline,
    PipelineExecOptions, SystemSpec, WatchdogConfig,
};
use gpu_sim::elementwise::ElementwiseOp;
use gpu_sim::gemm::GemmDims;
use tensor::Matrix;

fn small_system() -> SystemSpec {
    let mut spec = SystemSpec::rtx4090(2);
    spec.arch.sm_count = 8;
    spec.comm_sms = 2;
    spec
}

fn plan() -> OverlapPlan {
    OverlapPlan::tuned(
        GemmDims::new(256, 256, 64),
        CommPattern::AllReduce,
        small_system(),
    )
    .unwrap()
}

#[test]
fn plan_timing_shims_match_execute_with() {
    let plan = plan();
    let unified = plan.execute_with(&ExecOptions::new()).unwrap();

    assert_eq!(plan.execute().unwrap(), unified.report);

    let instr = Instrumentation::default();
    assert_eq!(plan.execute_instrumented(&instr).unwrap(), unified.report);

    let (report, spans) = plan.execute_traced().unwrap();
    assert_eq!(report, unified.report);
    assert!(!spans.is_empty(), "traced shim records spans");

    let (report, spans) = plan.execute_traced_instrumented(&instr).unwrap();
    assert_eq!(report, unified.report);
    assert!(!spans.is_empty());

    let steady = plan.execute_iterations(3).unwrap();
    let via_options = plan
        .execute_with(&ExecOptions::new().iterations(3))
        .unwrap()
        .steady_state
        .unwrap();
    assert_eq!(steady, via_options);
    assert_eq!(
        plan.execute_iterations_instrumented(3, &instr).unwrap(),
        steady
    );
}

#[test]
fn plan_functional_and_epilogue_shims_match_execute_with() {
    let plan = plan();
    let inputs = FunctionalInputs::random(plan.dims, 2, 42);
    let op = ElementwiseOp::Relu;

    let unified = plan
        .execute_with(&ExecOptions::new().functional(&inputs))
        .unwrap();
    let shim = plan.execute_functional(&inputs).unwrap();
    assert_eq!(shim.report, unified.report);
    assert_eq!(Some(&shim.outputs), unified.outputs.as_ref());

    let unified = plan
        .execute_with(&ExecOptions::new().epilogue(&op))
        .unwrap();
    assert_eq!(plan.execute_with_epilogue(&op).unwrap(), unified.report);

    let unified = plan
        .execute_with(&ExecOptions::new().functional(&inputs).epilogue(&op))
        .unwrap();
    let shim = plan.execute_functional_with_epilogue(&inputs, &op).unwrap();
    assert_eq!(shim.report, unified.report);
    assert_eq!(Some(&shim.outputs), unified.outputs.as_ref());
}

#[test]
fn plan_resilient_shims_match_execute_with() {
    let plan = plan();
    let faults = FaultPlan::random(9, 2, plan.partition.num_groups());
    let watchdog = WatchdogConfig::default();
    let inputs = FunctionalInputs::random(plan.dims, 2, 43);

    let unified = plan
        .execute_with(&ExecOptions::new().resilient(&faults, &watchdog))
        .unwrap();
    let shim = plan.execute_resilient(&faults, &watchdog).unwrap();
    assert_eq!(shim.outcome, unified.outcome);
    assert_eq!(shim.report, unified.report);
    assert_eq!(shim.events, unified.events);
    assert_eq!(shim.faults_armed, unified.faults_armed);

    let shim = plan
        .execute_functional_resilient(&inputs, &faults, &watchdog)
        .unwrap();
    let unified = plan
        .execute_with(
            &ExecOptions::new()
                .functional(&inputs)
                .resilient(&faults, &watchdog),
        )
        .unwrap();
    assert_eq!(shim.resilient.outcome, unified.outcome);
    assert_eq!(Some(&shim.outputs), unified.outputs.as_ref());

    let (report, spans) = plan
        .execute_resilient_traced(&faults, &watchdog, None)
        .unwrap();
    assert_eq!(report.outcome, unified.outcome);
    assert!(!spans.is_empty(), "resilient traced shim records spans");
}

fn pipeline() -> Pipeline {
    Pipeline::tuned(
        small_system(),
        vec![
            LayerSpec {
                dims: GemmDims::new(256, 128, 64),
                pattern: CommPattern::AllReduce,
                epilogue: Some(ElementwiseOp::RmsNorm {
                    weight: Rc::new(vec![1.0; 128]),
                    eps: 1e-6,
                }),
            },
            LayerSpec {
                dims: GemmDims::new(256, 64, 128),
                pattern: CommPattern::AllReduce,
                epilogue: None,
            },
        ],
    )
    .unwrap()
}

#[test]
fn pipeline_shims_match_execute_with() {
    let pipeline = pipeline();
    let unified = pipeline.execute_with(&PipelineExecOptions::new()).unwrap();

    assert_eq!(pipeline.execute().unwrap(), unified.report);

    let instr = Instrumentation::default();
    assert_eq!(
        pipeline.execute_instrumented(&instr, 0).unwrap(),
        unified.report
    );

    let mut rng = sim::DetRng::new(5);
    let first_a: Vec<Matrix> = (0..2).map(|_| Matrix::random(256, 64, &mut rng)).collect();
    let weights: Vec<Vec<Matrix>> = vec![
        (0..2).map(|_| Matrix::random(64, 128, &mut rng)).collect(),
        (0..2).map(|_| Matrix::random(128, 64, &mut rng)).collect(),
    ];
    let unified = pipeline
        .execute_with(&PipelineExecOptions::new().functional(&first_a, &weights))
        .unwrap();
    let shim = pipeline.execute_functional(&first_a, &weights).unwrap();
    assert_eq!(shim.report, unified.report);
    assert_eq!(Some(&shim.outputs), unified.outputs.as_ref());
}
