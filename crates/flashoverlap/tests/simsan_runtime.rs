//! End-to-end sanitizer checks of the overlap runtime.
//!
//! Two complementary properties pin down the signaling protocol:
//!
//! 1. every well-formed plan — any pattern, any partition — executes with
//!    **zero** SimSan findings (the counter/event/rendezvous edges order
//!    every modelled access), and
//! 2. deleting any single signal edge from a valid plan produces at least
//!    one finding of the matching class (the sanitizer has no blind spot
//!    a mutation can hide in).

use flashoverlap::runtime::CommPattern;
use flashoverlap::{
    ExecOptions, Instrumentation, OverlapPlan, PipelineExecOptions, SignalMutation, SystemSpec,
    WavePartition,
};
use gpu_sim::gemm::GemmDims;
use proptest::prelude::*;
use proptest::sample::select;
use simsan::{Finding, Sanitizer};

/// A tiny system whose *planned* waves equal its *runtime* waves.
///
/// With `comm_sms = 0` the planner's capacity (`sm_count - comm_sms`)
/// matches what the simulated GEMM actually gets, so wave (and therefore
/// group) boundaries fall on real temporal boundaries of the execution.
/// That matters for mutation coverage: a vector-clock sanitizer reports
/// races of the *observed* execution, and a dropped signal edge is only
/// observable if some tile of its group is written after the previous
/// group's signal. When planned and runtime waves diverge (the planner
/// reserves SMs that no communication is using yet), whole groups can
/// collapse into one runtime wave where the earlier group's signal
/// already orders everything — a true negative, not a blind spot.
fn small_system(n: usize) -> SystemSpec {
    let mut spec = SystemSpec::rtx4090(n);
    spec.arch.sm_count = 8;
    spec.comm_sms = 0;
    spec
}

/// The wave count the runtime will plan for `dims` under `pattern`
/// (mirrors `OverlapPlan::new`, including the All-to-All rasterization
/// override).
fn wave_count(dims: GemmDims, pattern: &CommPattern, system: &SystemSpec) -> u32 {
    let mut config = gpu_sim::gemm::GemmConfig::choose(dims, &system.arch);
    if matches!(pattern, CommPattern::AllToAll { .. }) {
        config.swizzle = gpu_sim::swizzle::Swizzle::StripRows { height: 1 };
    }
    let grid = config.grid(dims);
    let issue = config.swizzle.issue_order(&grid);
    gpu_sim::wave::WaveSchedule::new(&issue, system.compute_sms()).num_waves()
}

fn plan(pattern: CommPattern, groups: u32) -> OverlapPlan {
    let n = 2;
    let dims = GemmDims::new(384, 512, 64);
    let system = small_system(n);
    let waves = wave_count(dims, &pattern, &system);
    let partition = if groups >= waves {
        WavePartition::per_wave(waves)
    } else {
        // `groups - 1` equal groups plus one catch-all tail.
        let base = waves / groups;
        let mut sizes = vec![base; groups as usize];
        let used = base * (groups - 1);
        sizes[groups as usize - 1] = waves - used;
        WavePartition::new(sizes)
    };
    OverlapPlan::new(dims, pattern, system, partition).expect("valid plan")
}

fn run_sanitized(plan: &OverlapPlan, mutation: Option<SignalMutation>) -> Sanitizer {
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation,
    };
    plan.execute_with(&ExecOptions::new().instrument(&instr))
        .expect("simulation runs");
    sanitizer
}

fn round_robin_routing(rows: usize, n: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|r| (0..rows).map(|t| (t + r) % n).collect())
        .collect()
}

#[test]
fn all_reduce_plan_is_race_free_under_simsan() {
    let p = plan(CommPattern::AllReduce, 2);
    let s = run_sanitized(&p, None);
    assert!(s.is_clean(), "{}", s.summary());
    assert!(s.accesses_checked() > 0, "monitor saw no accesses");
}

#[test]
fn tuned_plan_is_race_free_under_simsan() {
    // The tuner's predictive-search output (tuner.rs partitions, full-size
    // system) must be as clean as hand-built per-wave partitions.
    let dims = GemmDims::new(2048, 4096, 4096);
    let p = OverlapPlan::tuned(dims, CommPattern::AllReduce, SystemSpec::rtx4090(2))
        .expect("tuned plan");
    let s = run_sanitized(&p, None);
    assert!(s.is_clean(), "{}", s.summary());
    assert!(s.accesses_checked() > 0, "monitor saw no accesses");
}

#[test]
fn dropped_wait_is_flagged_as_use_before_signal() {
    let p = plan(CommPattern::AllReduce, 2);
    let s = run_sanitized(&p, Some(SignalMutation::DropWait { rank: 0, group: 0 }));
    let reports = s.reports();
    assert!(
        reports
            .iter()
            .any(|f| matches!(f, Finding::UseBeforeSignal { .. })),
        "dropped wait not flagged: {reports:?}"
    );
}

#[test]
fn raised_threshold_is_flagged_as_lost_signal_and_deadlock() {
    let p = plan(CommPattern::AllReduce, 2);
    let s = run_sanitized(
        &p,
        Some(SignalMutation::RaiseThreshold { rank: 1, group: 1 }),
    );
    let reports = s.reports();
    assert!(
        reports
            .iter()
            .any(|f| matches!(f, Finding::LostSignal { group: 1, .. })),
        "starved wait not flagged: {reports:?}"
    );
    assert!(
        reports
            .iter()
            .any(|f| matches!(f, Finding::Deadlock { .. })),
        "wedged streams not flagged: {reports:?}"
    );
}

#[test]
fn every_single_wait_deletion_is_caught() {
    // Exhaustive over the edge set of one plan: deleting any (rank, group)
    // wait must produce a finding — the mutation coverage matrix.
    let p = plan(CommPattern::AllReduce, 3);
    let n = p.system.n_gpus;
    for rank in 0..n {
        for group in 0..p.partition.num_groups() {
            let s = run_sanitized(&p, Some(SignalMutation::DropWait { rank, group }));
            assert!(
                !s.is_clean(),
                "DropWait {{ rank: {rank}, group: {group} }} went undetected"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any pattern and any partition granularity: a faithful plan runs
    /// clean; the same plan with one dropped signal edge does not.
    #[test]
    fn plans_are_clean_and_mutations_are_caught(
        pattern_id in select(vec![0usize, 1, 2, 3]),
        groups in 1u32..5,
        rank in 0usize..2,
    ) {
        let pattern = match pattern_id {
            0 => CommPattern::AllReduce,
            1 => CommPattern::ReduceScatter,
            2 => CommPattern::AllGather,
            _ => CommPattern::AllToAll { routing: round_robin_routing(384, 2) },
        };
        let p = plan(pattern, groups);
        let clean = run_sanitized(&p, None);
        prop_assert!(clean.is_clean(), "{}", clean.summary());

        // Mutate a group that actually communicates (All-to-All groups can
        // be zero-payload, where no wait exists to drop).
        let target = (0..p.partition.num_groups())
            .find(|&g| p.group_payload_elems()[g] > 0);
        if let Some(group) = target {
            let mutated = run_sanitized(&p, Some(SignalMutation::DropWait { rank, group }));
            prop_assert!(
                !mutated.is_clean(),
                "DropWait {{ rank: {}, group: {} }} went undetected",
                rank,
                group
            );
            let starved = run_sanitized(
                &p,
                Some(SignalMutation::RaiseThreshold { rank, group }),
            );
            prop_assert!(
                starved.reports().iter().any(|f| matches!(f, Finding::LostSignal { .. })),
                "RaiseThreshold {{ rank: {}, group: {} }} went undetected",
                rank,
                group
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-layer and steady-state paths (counting-table reuse).
//
// Pipelines and iterated (steady-state) executions allocate
// counting tables once and ping-pong between two sets, resetting a set
// before reuse. The sanitizer must treat each reset as an epoch boundary:
// clean runs stay clean (no stale-label false positives), and a signal
// edge deleted *after* resets started is still caught (no stale-label
// false negatives).
// ---------------------------------------------------------------------------

fn three_layer_pipeline() -> flashoverlap::Pipeline {
    use flashoverlap::pipeline::LayerSpec;
    use gpu_sim::elementwise::ElementwiseOp;
    use std::rc::Rc;

    let rms = |cols: usize| ElementwiseOp::RmsNorm {
        weight: Rc::new(vec![1.0; cols]),
        eps: 1e-6,
    };
    // Three layers so layer 2 reuses (and resets) layer 0's table set.
    flashoverlap::Pipeline::tuned(
        small_system(2),
        vec![
            LayerSpec {
                dims: GemmDims::new(384, 512, 64),
                pattern: CommPattern::AllReduce,
                epilogue: Some(rms(512)),
            },
            LayerSpec {
                dims: GemmDims::new(384, 256, 512),
                pattern: CommPattern::AllReduce,
                epilogue: Some(rms(256)),
            },
            LayerSpec {
                dims: GemmDims::new(384, 128, 256),
                pattern: CommPattern::AllReduce,
                epilogue: None,
            },
        ],
    )
    .expect("valid pipeline")
}

#[test]
fn multi_layer_pipeline_is_race_free_under_simsan() {
    let pipeline = three_layer_pipeline();
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation: None,
    };
    pipeline
        .execute_with(&PipelineExecOptions::new().instrument(&instr))
        .expect("pipeline runs");
    assert!(sanitizer.is_clean(), "{}", sanitizer.summary());
    assert!(sanitizer.accesses_checked() > 0, "monitor saw no accesses");
}

#[test]
fn late_layer_mutation_is_caught_through_table_reuse() {
    // Layer 2 runs on a reset table set; a wait dropped there must still
    // surface even though the same (device, table, group) slots carried
    // legitimate layer-0 signals before the reset.
    let pipeline = three_layer_pipeline();
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation: Some(SignalMutation::DropWait { rank: 0, group: 0 }),
    };
    pipeline
        .execute_with(
            &PipelineExecOptions::new()
                .instrument(&instr)
                .mutate_layer(2),
        )
        .expect("pipeline runs");
    assert!(
        !sanitizer.is_clean(),
        "layer-2 dropped wait went undetected: {}",
        sanitizer.summary()
    );
}

#[test]
fn steady_state_iterations_are_race_free_under_simsan() {
    let p = plan(CommPattern::AllReduce, 2);
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation: None,
    };
    p.execute_with(&ExecOptions::new().iterations(5).instrument(&instr))
        .expect("iterations run");
    assert!(sanitizer.is_clean(), "{}", sanitizer.summary());
    assert!(sanitizer.accesses_checked() > 0, "monitor saw no accesses");
}

#[test]
fn final_iteration_mutation_is_caught_after_reuse() {
    let p = plan(CommPattern::AllReduce, 2);
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation: Some(SignalMutation::DropWait { rank: 0, group: 0 }),
    };
    p.execute_with(&ExecOptions::new().iterations(4).instrument(&instr))
        .expect("iterations run");
    assert!(
        !sanitizer.is_clean(),
        "final-iteration dropped wait went undetected: {}",
        sanitizer.summary()
    );

    // A starved wait in the final iteration is a lost signal + deadlock,
    // exactly as in the single-shot path.
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation: Some(SignalMutation::RaiseThreshold { rank: 1, group: 1 }),
    };
    p.execute_with(&ExecOptions::new().iterations(4).instrument(&instr))
        .expect("iterations run");
    let reports = sanitizer.reports();
    assert!(
        reports
            .iter()
            .any(|f| matches!(f, Finding::LostSignal { .. })),
        "starved final-iteration wait not flagged: {reports:?}"
    );
}
