//! Chain-level chaos campaign: random pipeline and sequence chains under
//! seeded random fault plans must always terminate with a per-segment
//! verdict in {Clean, Recovered, Degraded}, replay bit-exactly for the
//! same seed, and deliver outputs identical to the fault-free run —
//! recovery re-issues collectives over complete tiles, so even a
//! degraded segment never ships corrupt numerics.

use flashoverlap::pipeline::{Pipeline, PipelineExecOptions};
use flashoverlap::resilience::{FaultPlan, WatchdogConfig};
use flashoverlap::runtime::{CommPattern, FunctionalInputs};
use flashoverlap::{execute_sequence, OverlapPlan, SequenceOptions, SystemSpec, WavePartition};
use gpu_sim::elementwise::ElementwiseOp;
use gpu_sim::gemm::{GemmConfig, GemmDims};
use proptest::prelude::*;
use std::rc::Rc;
use tensor::Matrix;

fn small_system(n: usize) -> SystemSpec {
    let mut system = SystemSpec::rtx4090(n);
    system.arch.sm_count = 8;
    system.comm_sms = 2;
    system
}

fn per_wave_plan(dims: GemmDims, system: &SystemSpec) -> OverlapPlan {
    let config = GemmConfig::choose(dims, &system.arch);
    let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
    OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system.clone(),
        WavePartition::per_wave(waves),
    )
    .expect("valid plan")
}

/// Per-segment fault seed, decorrelated the same way the serving layer
/// salts per-batch seeds.
fn salt(seed: u64, segment: usize) -> u64 {
    seed ^ (segment as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn rms_op(cols: usize) -> ElementwiseOp {
    ElementwiseOp::RmsNorm {
        weight: Rc::new(vec![1.0; cols]),
        eps: 1e-6,
    }
}

/// The three-layer chainable pipeline used across the resilience suite:
/// each layer's logical output is the next layer's activation shape.
fn chaos_pipeline(system: &SystemSpec) -> (Pipeline, Vec<Matrix>, Vec<Vec<Matrix>>) {
    let dims = [
        GemmDims::new(1024, 128, 64),
        GemmDims::new(1024, 64, 128),
        GemmDims::new(1024, 128, 64),
    ];
    let plans: Vec<OverlapPlan> = dims.iter().map(|&d| per_wave_plan(d, system)).collect();
    let pipeline = Pipeline::with_plans(
        system.clone(),
        plans,
        vec![Some(rms_op(128)), Some(rms_op(64)), None],
    )
    .expect("chainable layers");
    let mut rng = sim::DetRng::new(17);
    let first_a: Vec<Matrix> = (0..2).map(|_| Matrix::random(1024, 64, &mut rng)).collect();
    let weights: Vec<Vec<Matrix>> = dims
        .iter()
        .map(|d| {
            (0..2)
                .map(|_| Matrix::random(d.k as usize, d.n as usize, &mut rng))
                .collect()
        })
        .collect();
    (pipeline, first_a, weights)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A random batch chain under per-batch random fault plans
    /// terminates with every batch's verdict accounted for, and the
    /// functional outputs of every batch — wedged or not — match the
    /// fault-free chain tile for tile.
    #[test]
    fn seeded_chaos_chains_terminate_accountably(
        batches in 2usize..=4,
        m in prop::sample::select(vec![256u32, 384, 512]),
        seed in any::<u64>(),
    ) {
        let system = small_system(2);
        let plans: Vec<OverlapPlan> = (0..batches)
            // Alternate shapes so the chain crosses plan boundaries.
            .map(|i| {
                let dims = GemmDims::new(if i % 2 == 0 { m } else { 256 }, 256, 64);
                per_wave_plan(dims, &system)
            })
            .collect();
        let refs: Vec<&OverlapPlan> = plans.iter().collect();
        let inputs: Vec<FunctionalInputs> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| FunctionalInputs::random(p.dims, 2, salt(seed, i) ^ 0x9e37))
            .collect();
        let reference = execute_sequence(&refs, &SequenceOptions::new().functional(&inputs))
            .expect("fault-free chain");
        let reference_outputs = reference.outputs.unwrap_or_default();

        let faults: Vec<FaultPlan> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| FaultPlan::random(salt(seed, i), 2, p.partition.num_groups()))
            .collect();
        prop_assert!(faults.iter().all(|f| !f.is_empty()));
        let watchdog = WatchdogConfig::default();
        let run = execute_sequence(
            &refs,
            &SequenceOptions::new()
                .functional(&inputs)
                .resilient(&faults, &watchdog),
        )
        .expect("chaos chain terminates");

        prop_assert_eq!(run.outcomes.len(), batches, "one verdict per batch");
        for (b, outcome) in run.outcomes.iter().enumerate() {
            prop_assert!(
                matches!(outcome.label(), "clean" | "recovered" | "degraded"),
                "batch {} verdict unaccounted: {:?}",
                b,
                outcome
            );
        }
        prop_assert!(run.faults_armed >= 1, "random plans must arm something");
        let run_outputs = run.outputs.unwrap_or_default();
        prop_assert_eq!(run_outputs.len(), reference_outputs.len());
        for (b, (got, want)) in run_outputs.iter().zip(reference_outputs.iter()).enumerate() {
            prop_assert_eq!(got.len(), want.len());
            for (d, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                prop_assert!(
                    g.as_slice() == w.as_slice(),
                    "batch {} rank {} diverged from the fault-free chain ({:?})",
                    b,
                    d,
                    run.outcomes.get(b)
                );
            }
        }
    }

    /// The same seed replays the same chain bit-exactly: verdicts,
    /// event timeline, and end-to-end latency all match.
    #[test]
    fn chaos_chains_replay_bit_exact(seed in any::<u64>()) {
        let system = small_system(2);
        let plans: Vec<OverlapPlan> = (0..3)
            .map(|_| per_wave_plan(GemmDims::new(256, 256, 64), &system))
            .collect();
        let refs: Vec<&OverlapPlan> = plans.iter().collect();
        let faults: Vec<FaultPlan> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| FaultPlan::random(salt(seed, i), 2, p.partition.num_groups()))
            .collect();
        let watchdog = WatchdogConfig::default();
        let opts = SequenceOptions::new().resilient(&faults, &watchdog);
        let a = execute_sequence(&refs, &opts).expect("first replay");
        let b = execute_sequence(&refs, &opts).expect("second replay");
        prop_assert_eq!(&a.outcomes, &b.outcomes);
        prop_assert_eq!(a.total, b.total);
        prop_assert_eq!(a.events.len(), b.events.len());
        prop_assert_eq!(a.faults_armed, b.faults_armed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A multi-layer pipeline under per-layer random fault plans
    /// terminates accountably, replays bit-exactly, and its final-layer
    /// activations match the fault-free pipeline even when an inner
    /// layer wedged and recovered.
    #[test]
    fn seeded_chaos_pipelines_terminate_accountably(seed in any::<u64>()) {
        let system = small_system(2);
        let (pipeline, first_a, weights) = chaos_pipeline(&system);
        let reference = pipeline
            .execute_with(&PipelineExecOptions::new().functional(&first_a, &weights))
            .expect("fault-free pipeline");
        let reference_outputs = reference.outputs.unwrap_or_default();

        let faults: Vec<FaultPlan> = pipeline
            .plans()
            .iter()
            .enumerate()
            .map(|(l, p)| FaultPlan::random(salt(seed, l), 2, p.partition.num_groups()))
            .collect();
        let watchdog = WatchdogConfig::default();
        let opts = PipelineExecOptions::new()
            .functional(&first_a, &weights)
            .resilient(&faults, &watchdog);
        let run = pipeline.execute_with(&opts).expect("chaos pipeline terminates");

        prop_assert_eq!(run.outcomes.len(), pipeline.plans().len());
        for (l, outcome) in run.outcomes.iter().enumerate() {
            prop_assert!(
                matches!(outcome.label(), "clean" | "recovered" | "degraded"),
                "layer {} verdict unaccounted: {:?}",
                l,
                outcome
            );
        }
        prop_assert!(run.faults_armed >= 1, "random plans must arm something");
        let run_outputs = run.outputs.clone().unwrap_or_default();
        prop_assert_eq!(run_outputs.len(), reference_outputs.len());
        for (d, (g, w)) in run_outputs.iter().zip(reference_outputs.iter()).enumerate() {
            prop_assert!(
                g.as_slice() == w.as_slice(),
                "rank {} final activations diverged ({:?})",
                d,
                run.outcomes
            );
        }

        let replay = pipeline.execute_with(&opts).expect("replay terminates");
        prop_assert_eq!(&replay.outcomes, &run.outcomes);
        prop_assert_eq!(replay.events.len(), run.events.len());
    }
}
