//! Drives the coverage-guided mutation conformance matrix end to end.
//!
//! `planverify::conformance_matrix()` classifies every registered
//! mutation kind crossed with every execute path. These tests make the
//! registry honest in both directions:
//!
//! 1. the **static arm** of every cell is re-proved: `CaughtStatic`
//!    cells produce violations from plan data alone, and every other
//!    cell stays statically clean (the clock-free model really is blind
//!    where the registry says it is);
//! 2. the **dynamic arm** is driven through the seam
//!    [`flashoverlap::runtime_seam`] names — `SignalMutation` under
//!    SimSan, `FaultPlan` under the resilient watchdog, and the
//!    sequence executor's dropped cross-batch edge — so `Caught`
//!    coverage claims are backed by a real detection; and
//! 3. every registered **caveat** is exercised as a concrete schedule:
//!    the observability condition holds (the dynamic layer misses or
//!    no-ops) while the static verdict is unchanged.

use flashoverlap::resilience::{FaultPlan, WatchdogConfig};
use flashoverlap::runtime::CommPattern;
use flashoverlap::{
    execute_sequence, model_of_chain, model_of_plan, runtime_seam, ExecOptions, Instrumentation,
    OverlapPlan, PipelineExecOptions, ResilientOutcome, RuntimeSeam, SequenceOptions,
    SignalMutation, SystemSpec, WavePartition,
};
use gpu_sim::gemm::GemmDims;
use gpu_sim::RuntimeEventKind;
use planverify::{
    caveats, conformance_matrix, verify, DynamicCoverage, ExecPath, Expectation, Mutation,
    MutationKind,
};
use simsan::{Finding, Sanitizer};

// ---------------------------------------------------------------------------
// Shared fixtures (same observability rationale as simsan_runtime.rs /
// simsan_sequence.rs: comm_sms = 0 keeps planned waves == runtime waves,
// so dropped edges stay dynamically visible).
// ---------------------------------------------------------------------------

fn small_system() -> SystemSpec {
    let mut spec = SystemSpec::rtx4090(2);
    spec.arch.sm_count = 8;
    spec.comm_sms = 0;
    spec
}

fn nvlink_system() -> SystemSpec {
    let mut spec = SystemSpec::a800(2);
    spec.arch.sm_count = 8;
    spec.comm_sms = 0;
    spec
}

fn plan_on(system: SystemSpec, dims: GemmDims) -> OverlapPlan {
    let probe = OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system.clone(),
        WavePartition::new(vec![1]),
    );
    let waves = match probe {
        Ok(p) => p.total_waves(),
        Err(flashoverlap::FlashOverlapError::PartitionMismatch { schedule_waves, .. }) => {
            schedule_waves
        }
        Err(e) => panic!("probe failed: {e}"),
    };
    OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system,
        WavePartition::per_wave(waves),
    )
    .expect("valid plan")
}

/// An observable plan with at least two wave groups.
fn observable_plan() -> OverlapPlan {
    let p = plan_on(small_system(), GemmDims::new(384, 512, 64));
    assert!(p.partition.num_groups() >= 2, "fixture needs >= 2 groups");
    p
}

/// A compute-bound plan (deep reduction on an NVLink pair): each GEMM
/// wave is far slower than shipping its payload, so stale-count windows
/// stay open long enough for the dynamic layer to observe.
fn compute_bound_plan() -> OverlapPlan {
    plan_on(nvlink_system(), GemmDims::new(384, 512, 4096))
}

/// The representative mutation the static arm applies per kind — same
/// targets the CLI `verify` subcommand uses.
fn sample_mutation(kind: MutationKind) -> Mutation {
    match kind {
        MutationKind::DropWait => Mutation::DropWait { rank: 0, group: 0 },
        MutationKind::RaiseThreshold => Mutation::RaiseThreshold { rank: 0, group: 0 },
        MutationKind::DropIncrements => Mutation::DropIncrements {
            rank: 0,
            group: 0,
            count: 1,
        },
        MutationKind::DelayIncrements => Mutation::DelayIncrements {
            rank: 0,
            group: 0,
            count: 1,
        },
        MutationKind::ReorderIncrements => Mutation::ReorderIncrements { rank: 0 },
        MutationKind::DropRearm => Mutation::DropRearm,
    }
}

fn run_sanitized(plan: &OverlapPlan, mutation: Option<SignalMutation>) -> Sanitizer {
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation,
    };
    plan.execute_with(&ExecOptions::new().instrument(&instr))
        .expect("simulation runs");
    sanitizer
}

fn sanitized_sequence(
    plans: &[&OverlapPlan],
    options: SequenceOptions<'_>,
    mutation: Option<SignalMutation>,
) -> Sanitizer {
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation,
    };
    let options = options.instrument(&instr);
    execute_sequence(plans, &options).expect("sequence runs");
    sanitizer
}

/// Unwraps the `SignalMutation` seam the registry maps a cell to.
fn signal_seam(mutation: &Mutation, path: ExecPath) -> SignalMutation {
    match runtime_seam(mutation, path) {
        RuntimeSeam::Signal(m) => m,
        other => panic!("expected a signal seam for {mutation:?} on {path}, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// 1. Static arm: every cell's verdict re-proved from plan data alone.
// ---------------------------------------------------------------------------

#[test]
fn static_arm_conforms_in_every_cell() {
    let plan = observable_plan();
    let chain: Vec<&OverlapPlan> = std::iter::repeat_n(&plan, 4).collect();
    for cell in conformance_matrix() {
        let mut model = match cell.path {
            ExecPath::Single => model_of_plan(&plan),
            ExecPath::Pipeline => model_of_chain(&chain, "layer"),
            ExecPath::Sequence => model_of_chain(&chain, "batch"),
        };
        assert!(
            verify(&model).is_clean(),
            "unmutated {} model must verify clean",
            cell.path
        );
        // Rearm edges only exist from the first table reuse (segment 2).
        let segment = match cell.mutation {
            MutationKind::DropRearm => 2.min(model.segments.len() - 1),
            _ => 0,
        };
        model.apply(&sample_mutation(cell.mutation), segment);
        let report = verify(&model);
        match cell.expected {
            Expectation::CaughtStatic => assert!(
                !report.is_clean(),
                "cell ({}, {}) expected caught-static but verified clean",
                cell.mutation,
                cell.path
            ),
            Expectation::CaughtDynamic(_)
            | Expectation::Benign(_)
            | Expectation::NotApplicable(_) => assert!(
                report.is_clean(),
                "cell ({}, {}) must stay statically clean, got: {:?}",
                cell.mutation,
                cell.path,
                report.violations
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Dynamic arm: the seam each `Caught` cell names really detects.
// ---------------------------------------------------------------------------

#[test]
fn signal_seams_are_caught_on_every_path() {
    // DropWait: conditional on observability, and the comm_sms = 0
    // fixtures satisfy the condition — SimSan must flag all three paths.
    let plan = observable_plan();
    let drop_wait = signal_seam(&Mutation::DropWait { rank: 0, group: 0 }, ExecPath::Single);
    let s = run_sanitized(&plan, Some(drop_wait));
    assert!(
        s.reports()
            .iter()
            .any(|f| matches!(f, Finding::UseBeforeSignal { .. })),
        "single-shot dropped wait went undetected: {}",
        s.summary()
    );

    // RaiseThreshold: unconditionally caught — lost signal + deadlock.
    let raise = signal_seam(
        &Mutation::RaiseThreshold { rank: 1, group: 1 },
        ExecPath::Single,
    );
    let s = run_sanitized(&plan, Some(raise));
    let reports = s.reports();
    assert!(
        reports
            .iter()
            .any(|f| matches!(f, Finding::LostSignal { .. })),
        "starved wait not flagged: {reports:?}"
    );
    assert!(
        reports
            .iter()
            .any(|f| matches!(f, Finding::Deadlock { .. })),
        "wedged streams not flagged: {reports:?}"
    );

    // Sequence path: the mutation lands in the last batch (first-reuse
    // territory for the ping-ponged tables).
    let plans = [
        observable_plan(),
        observable_plan(),
        observable_plan(),
        observable_plan(),
    ];
    let refs: Vec<&OverlapPlan> = plans.iter().collect();
    let drop_wait = signal_seam(
        &Mutation::DropWait { rank: 0, group: 0 },
        ExecPath::Sequence,
    );
    let s = sanitized_sequence(&refs, SequenceOptions::new(), Some(drop_wait));
    assert!(
        !s.is_clean(),
        "sequence dropped wait went undetected: {}",
        s.summary()
    );
    let raise = signal_seam(
        &Mutation::RaiseThreshold { rank: 1, group: 1 },
        ExecPath::Sequence,
    );
    let s = sanitized_sequence(&refs, SequenceOptions::new(), Some(raise));
    assert!(
        s.reports()
            .iter()
            .any(|f| matches!(f, Finding::LostSignal { .. })),
        "sequence raised threshold went undetected: {}",
        s.summary()
    );

    // Pipeline path: mutate the layer that reuses (and resets) the first
    // table set.
    let pipeline = three_layer_pipeline();
    for mutation in [
        signal_seam(
            &Mutation::DropWait { rank: 0, group: 0 },
            ExecPath::Pipeline,
        ),
        signal_seam(
            &Mutation::RaiseThreshold { rank: 0, group: 0 },
            ExecPath::Pipeline,
        ),
    ] {
        let sanitizer = Sanitizer::new();
        let instr = Instrumentation {
            monitor: Some(sanitizer.monitor()),
            probe: Some(sanitizer.probe()),
            mutation: Some(mutation),
        };
        pipeline
            .execute_with(
                &PipelineExecOptions::new()
                    .instrument(&instr)
                    .mutate_layer(2),
            )
            .expect("pipeline runs");
        assert!(
            !sanitizer.is_clean(),
            "pipeline {mutation:?} went undetected: {}",
            sanitizer.summary()
        );
    }
}

fn three_layer_pipeline() -> flashoverlap::Pipeline {
    use flashoverlap::pipeline::LayerSpec;
    use gpu_sim::elementwise::ElementwiseOp;
    use std::rc::Rc;

    let rms = |cols: usize| ElementwiseOp::RmsNorm {
        weight: Rc::new(vec![1.0; cols]),
        eps: 1e-6,
    };
    flashoverlap::Pipeline::tuned(
        small_system(),
        vec![
            LayerSpec {
                dims: GemmDims::new(384, 512, 64),
                pattern: CommPattern::AllReduce,
                epilogue: Some(rms(512)),
            },
            LayerSpec {
                dims: GemmDims::new(384, 256, 512),
                pattern: CommPattern::AllReduce,
                epilogue: Some(rms(256)),
            },
            LayerSpec {
                dims: GemmDims::new(384, 128, 256),
                pattern: CommPattern::AllReduce,
                epilogue: None,
            },
        ],
    )
    .expect("valid pipeline")
}

#[test]
fn fault_seams_escalate_the_watchdog_single_shot() {
    // Same shape as the resilience unit tests: 256x256x64 across 2 GPUs,
    // watchdog at its default deadline multiplier.
    let dims = GemmDims::new(256, 256, 64);
    let mut system = SystemSpec::rtx4090(2);
    system.arch.sm_count = 8;
    system.comm_sms = 2;
    let config = gpu_sim::gemm::GemmConfig::choose(dims, &system.arch);
    let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
    let plan = OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system,
        WavePartition::per_wave(waves),
    )
    .expect("valid plan");

    // DropIncrements x Single: the registry maps it to a dropped
    // counting-table increment; the watchdog must leave `Clean`.
    let fault = match runtime_seam(
        &Mutation::DropIncrements {
            rank: 0,
            group: 1,
            count: 1,
        },
        ExecPath::Single,
    ) {
        RuntimeSeam::Fault(f) => f,
        other => panic!("expected a fault seam, got {other:?}"),
    };
    let result = plan
        .execute_with(
            &ExecOptions::new().resilient(&FaultPlan::single(fault), &WatchdogConfig::default()),
        )
        .expect("resilient run terminates");
    assert!(
        !matches!(result.outcome, ResilientOutcome::Clean),
        "dropped increment must escalate, got {:?}",
        result.outcome
    );
    assert!(
        !result.events_of(RuntimeEventKind::WatchdogFired).is_empty(),
        "the watchdog must fire on a starved group"
    );

    // DelayIncrements x Single: the watchdog observes the delay exactly
    // when it pushes the run past the deadline. The seam's fixed delay
    // is small against this plan's absolute latency, so tighten the
    // deadline multiplier until it sits between the clean run and the
    // delayed one (calibrated: 1.05 fires on both, 1.2 on neither; the
    // simulator is deterministic, so the margin is stable).
    let fault = match runtime_seam(
        &Mutation::DelayIncrements {
            rank: 0,
            group: 1,
            count: 1,
        },
        ExecPath::Single,
    ) {
        RuntimeSeam::Fault(f) => f,
        other => panic!("expected a fault seam, got {other:?}"),
    };
    let tight = WatchdogConfig {
        deadline_multiplier: 1.1,
        ..WatchdogConfig::default()
    };
    let clean = plan
        .execute_with(&ExecOptions::new().resilient(&FaultPlan::default(), &tight))
        .expect("clean run terminates");
    assert!(
        clean.events_of(RuntimeEventKind::WatchdogFired).is_empty(),
        "control: the tightened deadline must not fire without the fault"
    );
    let result = plan
        .execute_with(&ExecOptions::new().resilient(&FaultPlan::single(fault), &tight))
        .expect("resilient run terminates");
    assert!(
        !result.events_of(RuntimeEventKind::FaultInjected).is_empty(),
        "the delay fault must take effect"
    );
    assert!(
        !result.events_of(RuntimeEventKind::WatchdogFired).is_empty(),
        "the watchdog must observe a delay past its deadline"
    );
}

/// The resilience-calibrated fixture (same shape as the single-shot
/// fault-seam test): per-wave 256x256x64 across 2 GPUs, multi-group.
fn calibrated_plan() -> OverlapPlan {
    let dims = GemmDims::new(256, 256, 64);
    let mut system = SystemSpec::rtx4090(2);
    system.arch.sm_count = 8;
    system.comm_sms = 2;
    let config = gpu_sim::gemm::GemmConfig::choose(dims, &system.arch);
    let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
    OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system,
        WavePartition::per_wave(waves),
    )
    .expect("valid plan")
}

fn chain_fault(mutation: &Mutation, path: ExecPath) -> flashoverlap::Fault {
    match runtime_seam(mutation, path) {
        RuntimeSeam::Fault(f) => f,
        other => panic!("expected a fault seam for {mutation:?} on {path}, got {other:?}"),
    }
}

#[test]
fn fault_seams_escalate_the_chain_watchdog_on_the_sequence_path() {
    // DropIncrements x Sequence: the per-segment FaultPlan arms the
    // dropped increment at the last batch — steady-state inherited-table
    // territory — and the chain watchdog must break the wedge.
    let plan = calibrated_plan();
    assert!(
        plan.group_tile_counts().len() >= 2,
        "need a completed group"
    );
    let plans: Vec<&OverlapPlan> = std::iter::repeat_n(&plan, 4).collect();
    let fault = chain_fault(
        &Mutation::DropIncrements {
            rank: 0,
            group: 1,
            count: 1,
        },
        ExecPath::Sequence,
    );
    let mut faults = vec![FaultPlan::none(); 4];
    faults[3] = FaultPlan::single(fault);
    let outcome = execute_sequence(
        &plans,
        &SequenceOptions::new().resilient(&faults, &WatchdogConfig::default()),
    )
    .expect("resilient sequence terminates");
    assert!(
        !matches!(outcome.outcomes[3], ResilientOutcome::Clean),
        "dropped increment in batch 3 must escalate, got {:?}",
        outcome.outcomes
    );
    assert!(
        outcome
            .events
            .iter()
            .any(|e| e.kind == RuntimeEventKind::WatchdogFired),
        "the chain watchdog must fire on the starved segment"
    );

    // DelayIncrements x Sequence: per-segment deadlines are calibrated
    // from each batch's predictor-derived budget; tighten the multiplier
    // until it separates the clean chain from the delayed one.
    let tight = WatchdogConfig {
        deadline_multiplier: 1.1,
        ..WatchdogConfig::default()
    };
    let none = vec![FaultPlan::none(); 4];
    let clean = execute_sequence(&plans, &SequenceOptions::new().resilient(&none, &tight))
        .expect("clean chain terminates");
    assert!(
        !clean
            .events
            .iter()
            .any(|e| e.kind == RuntimeEventKind::WatchdogFired),
        "control: the tightened deadline must not fire without the fault"
    );
    // The delay is armed at batch 0: its deadline is anchored at chain
    // start with exactly that segment's budget (the same calibration as
    // the single-shot test), whereas deeper segments re-base the
    // deadline on frontier advances and the pipelining slack would
    // absorb a 200us shift.
    let fault = chain_fault(
        &Mutation::DelayIncrements {
            rank: 0,
            group: 1,
            count: 1,
        },
        ExecPath::Sequence,
    );
    let mut faults = vec![FaultPlan::none(); 4];
    faults[0] = FaultPlan::single(fault);
    let delayed = execute_sequence(&plans, &SequenceOptions::new().resilient(&faults, &tight))
        .expect("delayed chain terminates");
    assert!(
        delayed
            .events
            .iter()
            .any(|e| e.kind == RuntimeEventKind::FaultInjected),
        "the delay fault must take effect"
    );
    assert!(
        delayed
            .events
            .iter()
            .any(|e| e.kind == RuntimeEventKind::WatchdogFired),
        "the chain watchdog must observe a delay past the per-segment deadline"
    );
}

#[test]
fn fault_seams_escalate_the_chain_watchdog_on_the_pipeline_path() {
    use gpu_sim::elementwise::ElementwiseOp;
    use std::rc::Rc;

    // Chainable per-wave layers on the calibrated system (the tuned
    // pipeline collapses to one group per layer, which cannot exercise
    // the tail rung).
    let mut system = SystemSpec::rtx4090(2);
    system.arch.sm_count = 8;
    system.comm_sms = 2;
    let rms = |cols: usize| ElementwiseOp::RmsNorm {
        weight: Rc::new(vec![1.0; cols]),
        eps: 1e-6,
    };
    let per_wave = |dims: GemmDims| {
        let config = gpu_sim::gemm::GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system.clone(),
            WavePartition::per_wave(waves),
        )
        .expect("valid plan")
    };
    let plans = vec![
        per_wave(GemmDims::new(1024, 128, 64)),
        per_wave(GemmDims::new(1024, 64, 128)),
        per_wave(GemmDims::new(1024, 128, 64)),
    ];
    let last_group = plans[1].group_tile_counts().len() - 1;
    assert!(last_group >= 1, "fixture needs a multi-group wedged layer");
    let pipeline = flashoverlap::Pipeline::with_plans(
        system.clone(),
        plans,
        vec![Some(rms(128)), Some(rms(64)), None],
    )
    .expect("valid pipeline");

    // DropIncrements x Pipeline: wedge layer 1, recover via tail rung.
    let fault = chain_fault(
        &Mutation::DropIncrements {
            rank: 0,
            group: last_group,
            count: 64,
        },
        ExecPath::Pipeline,
    );
    let mut faults = vec![FaultPlan::none(); 3];
    faults[1] = FaultPlan::single(fault);
    let outcome = pipeline
        .execute_with(&PipelineExecOptions::new().resilient(&faults, &WatchdogConfig::default()))
        .expect("resilient pipeline terminates");
    assert!(
        !matches!(outcome.outcomes[1], ResilientOutcome::Clean),
        "dropped increment in layer 1 must escalate, got {:?}",
        outcome.outcomes
    );
    assert!(
        outcome
            .events
            .iter()
            .any(|e| e.kind == RuntimeEventKind::WatchdogFired),
        "the chain watchdog must fire on the starved layer"
    );

    // DelayIncrements x Pipeline under the tightened per-segment
    // deadline: clean control stays silent, the delayed layer fires.
    let tight = WatchdogConfig {
        deadline_multiplier: 1.1,
        ..WatchdogConfig::default()
    };
    let none = vec![FaultPlan::none(); 3];
    let clean = pipeline
        .execute_with(&PipelineExecOptions::new().resilient(&none, &tight))
        .expect("clean pipeline terminates");
    assert!(
        !clean
            .events
            .iter()
            .any(|e| e.kind == RuntimeEventKind::WatchdogFired),
        "control: the tightened deadline must not fire without the fault"
    );
    let fault = chain_fault(
        &Mutation::DelayIncrements {
            rank: 0,
            group: last_group,
            count: 1,
        },
        ExecPath::Pipeline,
    );
    let mut faults = vec![FaultPlan::none(); 3];
    faults[1] = FaultPlan::single(fault);
    let delayed = pipeline
        .execute_with(&PipelineExecOptions::new().resilient(&faults, &tight))
        .expect("delayed pipeline terminates");
    assert!(
        delayed
            .events
            .iter()
            .any(|e| e.kind == RuntimeEventKind::FaultInjected),
        "the delay fault must take effect"
    );
    assert!(
        delayed
            .events
            .iter()
            .any(|e| e.kind == RuntimeEventKind::WatchdogFired),
        "the chain watchdog must observe a delay past the per-segment deadline"
    );
}

#[test]
fn no_fault_reachable_cell_is_left_not_applicable() {
    // The acceptance bar for the chain-recovery work: every cell whose
    // seam is a runtime fault must claim dynamic coverage — zero
    // `NotApplicable` verdicts remain on fault-reachable paths.
    for cell in conformance_matrix() {
        let mutation = sample_mutation(cell.mutation);
        if let RuntimeSeam::Fault(_) = runtime_seam(&mutation, cell.path) {
            assert!(
                !matches!(cell.expected, Expectation::NotApplicable(_)),
                "cell ({}, {}) is fault-reachable but marked not-applicable",
                cell.mutation,
                cell.path
            );
            assert!(
                matches!(cell.dynamic, DynamicCoverage::Caught(_)),
                "cell ({}, {}) is fault-reachable but claims dynamic coverage {:?}",
                cell.mutation,
                cell.path,
                cell.dynamic.label()
            );
        }
    }
}

#[test]
fn sequence_edge_seam_is_caught_when_compute_bound() {
    assert!(matches!(
        runtime_seam(&Mutation::DropRearm, ExecPath::Sequence),
        RuntimeSeam::SequenceEdge
    ));
    let plans = [
        compute_bound_plan(),
        compute_bound_plan(),
        compute_bound_plan(),
    ];
    let refs: Vec<&OverlapPlan> = plans.iter().collect();
    // Control: identical schedule with the rearm in place is clean.
    let control = sanitized_sequence(&refs, SequenceOptions::new(), None);
    assert!(control.is_clean(), "{}", control.summary());
    let s = sanitized_sequence(&refs, SequenceOptions::new().drop_cross_batch_edge(2), None);
    assert!(
        s.reports()
            .iter()
            .any(|f| matches!(f, Finding::UseBeforeSignal { .. })),
        "dropped cross-batch rearm went undetected: {}",
        s.summary()
    );
}

// ---------------------------------------------------------------------------
// 3. Caveats: each registered observability condition, as a schedule.
// ---------------------------------------------------------------------------

#[test]
fn sequence_edge_caveat_static_catches_what_a_fast_batch_hides() {
    // Comm-bound batches (shallow reduction, PCIe pair): batch 2's GEMM
    // finishes long before the communication stream reaches its stale
    // counts, so the dropped rearm closes no window SimSan can see.
    let plans = [
        plan_on(small_system(), GemmDims::new(384, 512, 64)),
        plan_on(small_system(), GemmDims::new(384, 512, 64)),
        plan_on(small_system(), GemmDims::new(384, 512, 64)),
    ];
    let refs: Vec<&OverlapPlan> = plans.iter().collect();
    let s = sanitized_sequence(&refs, SequenceOptions::new().drop_cross_batch_edge(2), None);
    assert!(
        s.is_clean(),
        "expected the comm-bound schedule to mask the dropped edge (caveat \
         sequence-edge-observability), but SimSan flagged it: {}",
        s.summary()
    );

    // planverify flags the missing reset unconditionally.
    let mut model = model_of_chain(&refs, "batch");
    model.apply(&Mutation::DropRearm, 2);
    let report = verify(&model);
    assert!(
        report.violations.iter().any(|v| v.label() == "stale-rearm"),
        "planverify must flag the dropped rearm regardless of timing: {:?}",
        report.violations
    );
}

#[test]
fn wave_collapse_caveat_static_catches_what_the_collapsed_run_hides() {
    // The planner reserves comm_sms SMs the simulated GEMM still gets
    // (no collective is resident yet), so both planned waves collapse
    // into one runtime wave and the dropped last-group wait opens no
    // observable use-before-signal window.
    let dims = GemmDims::new(384, 512, 64);
    let mut system = SystemSpec::rtx4090(2);
    system.arch.sm_count = 12;
    system.comm_sms = 4;
    let plan = plan_on(system, dims);
    assert!(
        plan.partition.num_groups() >= 2,
        "fixture needs >= 2 planned groups"
    );
    let last = plan.partition.num_groups() - 1;
    let s = run_sanitized(
        &plan,
        Some(SignalMutation::DropWait {
            rank: 0,
            group: last,
        }),
    );
    assert!(
        s.is_clean(),
        "expected the collapsed run to mask the dropped wait (caveat wave-collapse), but \
         SimSan flagged it: {}",
        s.summary()
    );
    assert!(s.accesses_checked() > 0, "monitor saw no accesses");

    // planverify works from plan data, not runtime timing: still caught.
    let mut model = model_of_plan(&plan);
    model.apply(
        &Mutation::DropWait {
            rank: 0,
            group: last,
        },
        0,
    );
    assert!(
        !verify(&model).is_clean(),
        "planverify must catch the dropped wait from plan data alone"
    );
}

#[test]
fn zero_payload_group_caveat_is_a_no_op_for_both_layers() {
    // A zero-payload group schedules neither wait nor collective, which
    // is exactly a `GroupModel` with `wait: None` and no reads. Real
    // token plans cannot produce one (self-routed rows keep every
    // group's total positive), so the caveat is pinned at model level.
    let plan = observable_plan();
    let mut model = model_of_plan(&plan);
    for seg in &mut model.segments {
        for rank in &mut seg.ranks {
            if let Some(g) = rank.groups.iter_mut().find(|g| g.group == 1) {
                g.wait = None;
                g.increments = 0;
                g.reads.clear();
            }
            rank.tile_writes.retain(|tw| tw.group != 1);
        }
    }
    assert!(
        verify(&model).is_clean(),
        "a zero-payload group must not trip the verifier"
    );
    // Wait mutations aimed at the payload-free group are structural
    // no-ops for the static checker too.
    for mutation in [
        Mutation::DropWait { rank: 0, group: 1 },
        Mutation::RaiseThreshold { rank: 0, group: 1 },
    ] {
        let mut mutated = model.clone();
        mutated.apply(&mutation, 0);
        assert!(
            verify(&mutated).is_clean(),
            "{mutation:?} on a zero-payload group must stay a no-op"
        );
    }
}

// ---------------------------------------------------------------------------
// 4. Benign cells and registry coverage.
// ---------------------------------------------------------------------------

#[test]
fn benign_reorder_cells_stay_clean_both_ways() {
    let plan = observable_plan();
    for path in ExecPath::ALL {
        // Statically: the totals-only model is invariant under
        // permutation (already asserted cell-wise above); dynamically:
        // the registry maps the cell to no seam at all, with a reason.
        match runtime_seam(&Mutation::ReorderIncrements { rank: 0 }, path) {
            RuntimeSeam::Nothing(reason) => {
                assert!(!reason.is_empty(), "benign cell must say why");
            }
            other => panic!("reorder on {path} must map to no seam, got {other:?}"),
        }
    }
    // The simulator's own issue order is one of the permutations the
    // model proves equivalent: the unmutated run is clean.
    let s = run_sanitized(&plan, None);
    assert!(s.is_clean(), "{}", s.summary());
}

#[test]
fn registry_covers_every_historical_mutation_mechanism() {
    // The matrix must collectively reach all three pre-registry
    // mechanisms — SimSan's SignalMutation, the FaultPlan increment
    // arms, and the sequence executor's dropped cross-batch edge — so
    // nothing the old ad-hoc tests could express is lost.
    let mut signal_drop_wait = false;
    let mut signal_raise = false;
    let mut fault_dropped = false;
    let mut fault_delayed = false;
    let mut sequence_edge = false;
    for cell in conformance_matrix() {
        let mutation = match cell.mutation {
            MutationKind::DropWait => Mutation::DropWait { rank: 0, group: 0 },
            MutationKind::RaiseThreshold => Mutation::RaiseThreshold { rank: 0, group: 0 },
            MutationKind::DropIncrements => Mutation::DropIncrements {
                rank: 0,
                group: 0,
                count: 1,
            },
            MutationKind::DelayIncrements => Mutation::DelayIncrements {
                rank: 0,
                group: 0,
                count: 1,
            },
            MutationKind::ReorderIncrements => Mutation::ReorderIncrements { rank: 0 },
            MutationKind::DropRearm => Mutation::DropRearm,
        };
        match runtime_seam(&mutation, cell.path) {
            RuntimeSeam::Signal(SignalMutation::DropWait { .. }) => signal_drop_wait = true,
            RuntimeSeam::Signal(SignalMutation::RaiseThreshold { .. }) => signal_raise = true,
            RuntimeSeam::Fault(flashoverlap::Fault::DroppedIncrement { .. }) => {
                fault_dropped = true;
            }
            RuntimeSeam::Fault(flashoverlap::Fault::DelayedIncrement { .. }) => {
                fault_delayed = true;
            }
            RuntimeSeam::SequenceEdge => sequence_edge = true,
            _ => {}
        }
        // Conditional coverage must point at a registered caveat.
        if let DynamicCoverage::Conditional(id) = cell.dynamic {
            assert!(
                caveats().iter().any(|c| c.id == id),
                "cell ({}, {}) references unregistered caveat {id}",
                cell.mutation,
                cell.path
            );
        }
    }
    assert!(signal_drop_wait, "SignalMutation::DropWait unreachable");
    assert!(signal_raise, "SignalMutation::RaiseThreshold unreachable");
    assert!(fault_dropped, "Fault::DroppedIncrement unreachable");
    assert!(fault_delayed, "Fault::DelayedIncrement unreachable");
    assert!(sequence_edge, "dropped cross-batch edge unreachable");
}
