//! Builder-equivalence coverage for the unified `execute_with` entry
//! point on [`OverlapPlan`] and [`Pipeline`].
//!
//! The per-mode `execute*` shims are gone; these tests pin the option
//! builder's composition rules instead: each mode combination must
//! produce the same report whether the options are chained in one
//! expression or built up piecewise, trace/instrument toggles must not
//! perturb timing, and equivalent functional/resilient configurations
//! must agree with their timing-only counterparts.

#![allow(clippy::unwrap_used)]

use std::rc::Rc;

use flashoverlap::runtime::CommPattern;
use flashoverlap::{
    ExecOptions, FaultPlan, FunctionalInputs, Instrumentation, LayerSpec, OverlapPlan, Pipeline,
    PipelineExecOptions, SystemSpec, WatchdogConfig,
};
use gpu_sim::elementwise::ElementwiseOp;
use gpu_sim::gemm::GemmDims;
use tensor::Matrix;

fn small_system() -> SystemSpec {
    let mut spec = SystemSpec::rtx4090(2);
    spec.arch.sm_count = 8;
    spec.comm_sms = 2;
    spec
}

fn plan() -> OverlapPlan {
    OverlapPlan::tuned(
        GemmDims::new(256, 256, 64),
        CommPattern::AllReduce,
        small_system(),
    )
    .unwrap()
}

#[test]
fn observation_options_do_not_perturb_timing() {
    // Attaching instrumentation and/or span tracing is observation
    // only: every combination must report the identical schedule.
    let plan = plan();
    let baseline = plan.execute_with(&ExecOptions::new()).unwrap();
    let instr = Instrumentation::default();

    let traced = plan.execute_with(&ExecOptions::new().trace()).unwrap();
    assert_eq!(traced.report, baseline.report);
    assert!(!traced.spans.is_empty(), "trace() records spans");
    assert!(
        baseline.spans.is_empty(),
        "spans stay empty unless requested"
    );

    let instrumented = plan
        .execute_with(&ExecOptions::new().instrument(&instr))
        .unwrap();
    assert_eq!(instrumented.report, baseline.report);

    let both = plan
        .execute_with(&ExecOptions::new().instrument(&instr).trace())
        .unwrap();
    assert_eq!(both.report, baseline.report);
    assert_eq!(both.spans, traced.spans);
}

#[test]
fn builder_order_is_immaterial() {
    // The builder only fills fields; chaining order must not matter.
    let plan = plan();
    let inputs = FunctionalInputs::random(plan.dims, 2, 42);
    let op = ElementwiseOp::Relu;
    let a = plan
        .execute_with(&ExecOptions::new().functional(&inputs).epilogue(&op))
        .unwrap();
    let b = plan
        .execute_with(&ExecOptions::new().epilogue(&op).functional(&inputs))
        .unwrap();
    assert_eq!(a.report, b.report);
    assert_eq!(a.outputs, b.outputs);
}

#[test]
fn functional_and_epilogue_modes_compose() {
    let plan = plan();
    let inputs = FunctionalInputs::random(plan.dims, 2, 42);
    let op = ElementwiseOp::Relu;

    let functional = plan
        .execute_with(&ExecOptions::new().functional(&inputs))
        .unwrap();
    let outputs = functional.outputs.as_ref().unwrap();
    assert_eq!(outputs.len(), 2, "one logical output per rank");

    // The fused epilogue applies the op to the functional output: Relu
    // of the plain output must equal the fused run's output.
    let fused = plan
        .execute_with(&ExecOptions::new().functional(&inputs).epilogue(&op))
        .unwrap();
    let fused_outputs = fused.outputs.as_ref().unwrap();
    for (plain, fused) in outputs.iter().zip(fused_outputs) {
        let expected: Vec<f32> = plain.as_slice().iter().map(|&v| v.max(0.0)).collect();
        assert_eq!(fused.as_slice(), &expected[..]);
    }

    // Epilogue-only runs stay timing-only (no outputs) but still pay
    // the fused kernel, so their report is self-consistent.
    let epilogue_only = plan
        .execute_with(&ExecOptions::new().epilogue(&op))
        .unwrap();
    assert!(epilogue_only.outputs.is_none());
    assert_eq!(epilogue_only.report, fused.report);
}

#[test]
fn iteration_mode_reports_steady_state() {
    let plan = plan();
    let instr = Instrumentation::default();
    let steady = plan
        .execute_with(&ExecOptions::new().iterations(3))
        .unwrap()
        .steady_state
        .unwrap();
    let instrumented = plan
        .execute_with(&ExecOptions::new().iterations(3).instrument(&instr))
        .unwrap()
        .steady_state
        .unwrap();
    assert_eq!(steady, instrumented);
    // Steady-state per-iteration latency never exceeds a cold single
    // run (pipelining can only help).
    let single = plan.execute_with(&ExecOptions::new()).unwrap();
    assert!(steady <= single.report.latency);
}

#[test]
fn resilient_mode_composes_with_functional_and_trace() {
    let plan = plan();
    let faults = FaultPlan::random(9, 2, plan.partition.num_groups());
    let watchdog = WatchdogConfig::default();
    let inputs = FunctionalInputs::random(plan.dims, 2, 43);

    let timing = plan
        .execute_with(&ExecOptions::new().resilient(&faults, &watchdog))
        .unwrap();
    let functional = plan
        .execute_with(
            &ExecOptions::new()
                .functional(&inputs)
                .resilient(&faults, &watchdog),
        )
        .unwrap();
    // The fault plan and watchdog policy are deterministic, so the
    // timing-only and data-carrying runs reach the same outcome with
    // the same injected-fault count.
    assert_eq!(timing.outcome, functional.outcome);
    assert_eq!(timing.faults_armed, functional.faults_armed);
    assert!(functional.outputs.is_some());

    let traced = plan
        .execute_with(&ExecOptions::new().resilient(&faults, &watchdog).trace())
        .unwrap();
    assert_eq!(traced.outcome, timing.outcome);
    assert!(!traced.spans.is_empty(), "resilient trace records spans");
}

#[test]
fn invalid_mode_combinations_are_rejected() {
    let plan = plan();
    let op = ElementwiseOp::Relu;
    // iterations is timing-only: epilogue and trace must be refused
    // rather than silently dropped.
    assert!(plan
        .execute_with(&ExecOptions::new().iterations(2).epilogue(&op))
        .is_err());
    assert!(plan
        .execute_with(&ExecOptions::new().iterations(2).trace())
        .is_err());
    assert!(plan
        .execute_with(&ExecOptions::new().iterations(0))
        .is_err());
}

fn pipeline() -> Pipeline {
    Pipeline::tuned(
        small_system(),
        vec![
            LayerSpec {
                dims: GemmDims::new(256, 128, 64),
                pattern: CommPattern::AllReduce,
                epilogue: Some(ElementwiseOp::RmsNorm {
                    weight: Rc::new(vec![1.0; 128]),
                    eps: 1e-6,
                }),
            },
            LayerSpec {
                dims: GemmDims::new(256, 64, 128),
                pattern: CommPattern::AllReduce,
                epilogue: None,
            },
        ],
    )
    .unwrap()
}

#[test]
fn pipeline_options_mirror_plan_options() {
    let pipeline = pipeline();
    let baseline = pipeline.execute_with(&PipelineExecOptions::new()).unwrap();

    let instr = Instrumentation::default();
    let instrumented = pipeline
        .execute_with(
            &PipelineExecOptions::new()
                .instrument(&instr)
                .mutate_layer(0),
        )
        .unwrap();
    assert_eq!(instrumented.report, baseline.report);

    let mut rng = sim::DetRng::new(5);
    let first_a: Vec<Matrix> = (0..2).map(|_| Matrix::random(256, 64, &mut rng)).collect();
    let weights: Vec<Vec<Matrix>> = vec![
        (0..2).map(|_| Matrix::random(64, 128, &mut rng)).collect(),
        (0..2).map(|_| Matrix::random(128, 64, &mut rng)).collect(),
    ];
    let functional = pipeline
        .execute_with(&PipelineExecOptions::new().functional(&first_a, &weights))
        .unwrap();
    assert_eq!(functional.report, baseline.report);
    assert_eq!(
        functional.outputs.as_ref().map(Vec::len),
        Some(2),
        "one final-layer output per rank"
    );
}
