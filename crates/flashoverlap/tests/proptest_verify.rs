//! Property-based agreement between the static verifier and SimSan.
//!
//! `planverify` proves schedules safe from plan data alone; SimSan
//! checks the one execution the simulator produces. The two layers must
//! agree wherever both can see:
//!
//! 1. every well-formed plan — random shape, random partition — is
//!    clean under **both** layers (no static false positives on
//!    schedules the runtime executes race-free);
//! 2. every randomly-targeted wait mutation is caught by **both**
//!    layers on an observable fixture (no static false negatives the
//!    sanitizer would have caught, and vice versa);
//! 3. chained models agree with the sequence executor: random chain
//!    lengths verify clean, and a dropped rearm at any reused segment
//!    is flagged statically.

use flashoverlap::runtime::CommPattern;
use flashoverlap::{
    model_of_chain, verify_sequence, ExecOptions, Instrumentation, OverlapPlan, SignalMutation,
    SystemSpec, WavePartition,
};
use gpu_sim::gemm::GemmDims;
use planverify::{verify, Mutation};
use proptest::prelude::*;
use proptest::sample::select;
use simsan::Sanitizer;

/// Planned waves equal runtime waves (see simsan_runtime.rs) — both
/// layers can observe every signal edge.
fn small_system() -> SystemSpec {
    let mut spec = SystemSpec::rtx4090(2);
    spec.arch.sm_count = 8;
    spec.comm_sms = 0;
    spec
}

/// A plan for `m x 512 x 64` split into `groups` wave groups.
fn plan_with(m: u32, groups: u32) -> OverlapPlan {
    let dims = GemmDims::new(m, 512, 64);
    let system = small_system();
    let probe = OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system.clone(),
        WavePartition::new(vec![1]),
    );
    let waves = match probe {
        Ok(p) => p.total_waves(),
        Err(flashoverlap::FlashOverlapError::PartitionMismatch { schedule_waves, .. }) => {
            schedule_waves
        }
        Err(e) => panic!("probe failed: {e}"),
    };
    let partition = if groups >= waves {
        WavePartition::per_wave(waves)
    } else {
        let base = waves / groups;
        let mut sizes = vec![base; groups as usize];
        let used = base * (groups - 1);
        sizes[groups as usize - 1] = waves - used;
        WavePartition::new(sizes)
    };
    OverlapPlan::new(dims, CommPattern::AllReduce, system, partition).expect("valid plan")
}

fn run_sanitized(plan: &OverlapPlan, mutation: Option<SignalMutation>) -> Sanitizer {
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation,
    };
    plan.execute_with(&ExecOptions::new().instrument(&instr))
        .expect("simulation runs");
    sanitizer
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random well-formed plans are clean under both layers.
    #[test]
    fn clean_plans_pass_both_layers(
        m in select(vec![256u32, 384, 512]),
        groups in 1..5u32,
    ) {
        let plan = plan_with(m, groups);
        let report = plan.verify();
        prop_assert!(report.is_clean(), "static violations: {:?}", report.violations);
        let s = run_sanitized(&plan, None);
        prop_assert!(s.is_clean(), "{}", s.summary());
        prop_assert!(s.accesses_checked() > 0, "monitor saw no accesses");
    }

    /// Any single wait mutation — random rank, random group, both
    /// kinds — is caught by the static verifier AND by SimSan on the
    /// observable two-group fixture.
    #[test]
    fn wait_mutations_are_caught_by_both_layers(
        m in select(vec![384u32, 640, 896]),
        rank in 0..2usize,
        group in 0..2usize,
        raise in any::<bool>(),
    ) {
        let plan = plan_with(m, 2);
        prop_assert_eq!(plan.partition.num_groups(), 2);

        let static_mutation = if raise {
            Mutation::RaiseThreshold { rank, group }
        } else {
            Mutation::DropWait { rank, group }
        };
        let mut model = flashoverlap::model_of_plan(&plan);
        model.apply(&static_mutation, 0);
        let report = verify(&model);
        prop_assert!(
            !report.is_clean(),
            "planverify missed {static_mutation:?}"
        );

        let dynamic_mutation = if raise {
            SignalMutation::RaiseThreshold { rank, group }
        } else {
            SignalMutation::DropWait { rank, group }
        };
        let s = run_sanitized(&plan, Some(dynamic_mutation));
        prop_assert!(
            !s.is_clean(),
            "SimSan missed {dynamic_mutation:?} the static layer caught"
        );
    }

    /// Chained (sequence) models of random length and mixed shapes
    /// verify clean, and dropping the rearm at any reused segment is
    /// flagged statically with the segment named.
    #[test]
    fn chains_verify_clean_and_rearm_drops_are_flagged(
        len in 3..6usize,
        ms in proptest::collection::vec(select(vec![256u32, 384, 512]), 6),
        seg_raw in 0..8usize,
    ) {
        let plans: Vec<OverlapPlan> = ms
            .iter()
            .take(len)
            .map(|&m| plan_with(m, 2))
            .collect();
        let refs: Vec<&OverlapPlan> = plans.iter().collect();
        let report = verify_sequence(&refs);
        prop_assert!(report.is_clean(), "static violations: {:?}", report.violations);

        // Rearm edges exist from the first table reuse onwards.
        let segment = 2 + seg_raw % (len - 2);
        let mut model = model_of_chain(&refs, "batch");
        model.apply(&Mutation::DropRearm, segment);
        let report = verify(&model);
        prop_assert!(!report.is_clean(), "planverify missed a dropped rearm");
        prop_assert!(
            report
                .violations
                .iter()
                .any(|v| v.label() == "stale-rearm"),
            "expected a stale-rearm violation: {:?}",
            report.violations
        );
    }
}
