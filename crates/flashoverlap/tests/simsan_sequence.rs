//! Sanitizer checks of cross-batch pipelined sequences.
//!
//! The serving layer chains batches through
//! [`flashoverlap::execute_sequence`], ping-ponging two counting-table
//! sets so batch *k+1*'s GEMM waves overlap batch *k*'s tail
//! collectives. Table reuse is only safe because the executor inserts
//! a reset/ready edge pair before rearming a table set; these tests pin
//! both directions:
//!
//! 1. pipelined cross-batch schedules — homogeneous and mixed-shape —
//!    run with **zero** SimSan findings, and
//! 2. deliberately skipping one batch's table rearm (the
//!    wait-previous-comm → reset → ready edges that keep a batch's
//!    collectives off stale counts) is flagged, so the sanitizer would
//!    catch a regression in the rearm protocol itself.

use flashoverlap::runtime::CommPattern;
use flashoverlap::{
    execute_sequence, Instrumentation, OverlapPlan, SequenceOptions, SignalMutation, SystemSpec,
    WavePartition,
};
use gpu_sim::gemm::GemmDims;
use simsan::{Finding, Sanitizer};

/// A tiny system whose planned waves equal its runtime waves (see
/// `simsan_runtime.rs` for why that matters for mutation coverage).
fn small_system() -> SystemSpec {
    let mut spec = SystemSpec::rtx4090(2);
    spec.arch.sm_count = 8;
    spec.comm_sms = 0;
    spec
}

/// An NVLink pair with few SMs: collectives are cheap relative to the
/// GEMM, so a communication stream that is not gated on fresh signals
/// overtakes the producer instead of trailing behind signals that (by
/// luck of timing) already fired.
fn nvlink_system() -> SystemSpec {
    let mut spec = SystemSpec::a800(2);
    spec.arch.sm_count = 8;
    spec.comm_sms = 0;
    spec
}

fn plan_on(system: SystemSpec, dims: GemmDims) -> OverlapPlan {
    let probe = OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system.clone(),
        WavePartition::new(vec![1]),
    );
    let waves = match probe {
        Ok(p) => p.total_waves(),
        Err(flashoverlap::FlashOverlapError::PartitionMismatch { schedule_waves, .. }) => {
            schedule_waves
        }
        Err(e) => panic!("probe failed: {e}"),
    };
    OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system,
        WavePartition::per_wave(waves),
    )
    .expect("valid plan")
}

fn plan_for(m: u32) -> OverlapPlan {
    plan_on(small_system(), GemmDims::new(m, 512, 64))
}

/// A compute-bound plan on the NVLink pair: a deep reduction (large
/// `k`) makes each GEMM wave far slower than shipping its payload.
fn plan_compute_bound(m: u32) -> OverlapPlan {
    plan_on(nvlink_system(), GemmDims::new(m, 512, 4096))
}

fn sanitized_sequence(
    plans: &[&OverlapPlan],
    options: SequenceOptions<'_>,
    mutation: Option<SignalMutation>,
) -> Sanitizer {
    let sanitizer = Sanitizer::new();
    let instr = Instrumentation {
        monitor: Some(sanitizer.monitor()),
        probe: Some(sanitizer.probe()),
        mutation,
    };
    let options = options.instrument(&instr);
    execute_sequence(plans, &options).expect("sequence runs");
    sanitizer
}

#[test]
fn pipelined_cross_batch_sequence_is_race_free() {
    let plans = [plan_for(384), plan_for(256), plan_for(384), plan_for(512)];
    let refs: Vec<&OverlapPlan> = plans.iter().collect();
    let sanitizer = sanitized_sequence(&refs, SequenceOptions::new(), None);
    assert!(sanitizer.is_clean(), "{}", sanitizer.summary());
    assert!(sanitizer.accesses_checked() > 0, "monitor saw no accesses");
}

#[test]
fn serial_cross_batch_sequence_is_race_free() {
    let plans = [plan_for(384), plan_for(256), plan_for(384)];
    let refs: Vec<&OverlapPlan> = plans.iter().collect();
    let sanitizer = sanitized_sequence(&refs, SequenceOptions::new().serial(), None);
    assert!(sanitizer.is_clean(), "{}", sanitizer.summary());
}

#[test]
fn dropped_cross_batch_edge_is_caught() {
    // Batch 2 is the first reuse of table set 0 (parity ping-pong).
    // Skipping its rearm leaves batch 0's saturated counts in place, so
    // batch 2's waits are satisfied by stale signals and its
    // collectives read tiles its GEMM has not produced — exactly the
    // hazard the rearm protocol exists to prevent. The plan must be
    // compute-bound for the hazard to be observable: only then does the
    // ungated communication stream outrun the GEMM instead of trailing
    // behind signals that (by luck of timing) already fired.
    let plans = [
        plan_compute_bound(384),
        plan_compute_bound(384),
        plan_compute_bound(384),
    ];
    let refs: Vec<&OverlapPlan> = plans.iter().collect();
    // Control: the identical compute-bound schedule with the rearm in
    // place is clean, so any finding below is the dropped edge's doing.
    let control = sanitized_sequence(&refs, SequenceOptions::new(), None);
    assert!(control.is_clean(), "{}", control.summary());
    let sanitizer =
        sanitized_sequence(&refs, SequenceOptions::new().drop_cross_batch_edge(2), None);
    assert!(
        !sanitizer.is_clean(),
        "dropped cross-batch rearm went undetected"
    );
    let reports = sanitizer.reports();
    assert!(
        reports
            .iter()
            .any(|f| matches!(f, Finding::UseBeforeSignal { .. })),
        "expected a use-before-signal on the reused table set: {reports:?}"
    );
}

#[test]
fn final_batch_mutation_is_caught_through_table_reuse() {
    // A protocol corruption in the *last* batch of a chain must not be
    // masked by the happens-before edges of earlier batches.
    let plans = [plan_for(384), plan_for(384), plan_for(384), plan_for(384)];
    let refs: Vec<&OverlapPlan> = plans.iter().collect();
    let sanitizer = sanitized_sequence(
        &refs,
        SequenceOptions::new(),
        Some(SignalMutation::DropWait { rank: 0, group: 0 }),
    );
    assert!(
        !sanitizer.is_clean(),
        "final-batch dropped wait went undetected: {}",
        sanitizer.summary()
    );
}
