//! Error types of the FlashOverlap library.

use std::error::Error;
use std::fmt;

/// Where in a pipelined/sequenced chain a starved wait sits: the chain
/// segment (layer or batch index), the counting-table parity the segment
/// inherited under double-buffered table reuse, and the table id itself.
/// A wedge that names its chain position names the rearm edge it starved
/// — which prior segment's comm-done the reset was waiting behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPosition {
    /// Chain segment (layer or batch index) whose wait starved.
    pub segment: usize,
    /// Table parity the segment inherited (`segment % 2` under
    /// double-buffering).
    pub parity: usize,
    /// The inherited counting-table id the starved wait watches.
    pub table: usize,
}

impl fmt::Display for ChainPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chain segment {} (parity {}, inherited table {})",
            self.segment, self.parity, self.table
        )
    }
}

/// Errors surfaced by plan construction, tuning, and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashOverlapError {
    /// A wave partition's group sizes do not sum to the schedule's wave
    /// count.
    PartitionMismatch {
        /// Waves the partition accounts for.
        partition_waves: u32,
        /// Waves the schedule actually has.
        schedule_waves: u32,
    },
    /// The problem shape is incompatible with the primitive's reordering
    /// constraints (e.g. ReduceScatter needs every tile's rows divisible
    /// by the rank count).
    IncompatibleShape {
        /// Human-readable constraint description.
        reason: String,
    },
    /// The simulation engine failed (runaway event loop).
    Simulation(String),
    /// The event queue drained but streams never did: at least one rank
    /// is wedged. `waits` carries the precise signal-starvation context —
    /// blocked rank, counter group, reached count, unmet threshold — when
    /// the wedge is a starved signal wait (the lost-signal bug class);
    /// `streams` has one line per wedged stream either way.
    Deadlock {
        /// One diagnostic line per wedged stream (device, stream, op in
        /// flight, queued depth).
        streams: Vec<String>,
        /// Every starved signal wait, with its counter context.
        waits: Vec<gpu_sim::StuckWait>,
        /// Chain positions of the starved waits (one per wait that maps
        /// to a chain segment; empty for single-shot execution).
        chain: Vec<ChainPosition>,
    },
    /// Functional inputs are inconsistent with the plan (wrong matrix
    /// shapes, wrong rank count, missing routing).
    BadInputs {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for FlashOverlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashOverlapError::PartitionMismatch {
                partition_waves,
                schedule_waves,
            } => write!(
                f,
                "wave partition covers {partition_waves} waves but the schedule has {schedule_waves}"
            ),
            FlashOverlapError::IncompatibleShape { reason } => {
                write!(f, "incompatible shape: {reason}")
            }
            FlashOverlapError::Simulation(msg) => write!(f, "simulation failed: {msg}"),
            FlashOverlapError::Deadlock {
                streams,
                waits,
                chain,
            } => {
                write!(f, "deadlock: streams never drained — {}", streams.join("; "))?;
                for wait in waits {
                    write!(f, "; {wait}")?;
                }
                for pos in chain {
                    write!(f, "; {pos}")?;
                }
                Ok(())
            }
            FlashOverlapError::BadInputs { reason } => write!(f, "bad inputs: {reason}"),
        }
    }
}

impl Error for FlashOverlapError {}

impl From<sim::SimError> for FlashOverlapError {
    fn from(e: sim::SimError) -> Self {
        FlashOverlapError::Simulation(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FlashOverlapError::PartitionMismatch {
            partition_waves: 5,
            schedule_waves: 8,
        };
        let text = e.to_string();
        assert!(text.contains('5') && text.contains('8'));

        let e = FlashOverlapError::IncompatibleShape {
            reason: "rows not divisible".into(),
        };
        assert!(e.to_string().contains("rows not divisible"));
    }

    #[test]
    fn deadlock_names_the_starved_wait() {
        let e = FlashOverlapError::Deadlock {
            streams: vec!["device 1 stream 1: 1 in flight, 2 queued (wait-counter)".into()],
            waits: vec![gpu_sim::StuckWait {
                device: 1,
                stream: 1,
                table: 0,
                group: 3,
                count: 5,
                threshold: 8,
            }],
            chain: Vec::new(),
        };
        let text = e.to_string();
        assert!(text.contains("rank 1"), "{text}");
        assert!(text.contains("group 3"), "{text}");
        assert!(text.contains("count 5 < threshold 8"), "{text}");
    }

    #[test]
    fn deadlock_names_the_chain_position() {
        let e = FlashOverlapError::Deadlock {
            streams: vec!["device 0 stream 1: 0 in flight, 1 queued (wait-counter)".into()],
            waits: vec![gpu_sim::StuckWait {
                device: 0,
                stream: 1,
                table: 4,
                group: 0,
                count: 1,
                threshold: 6,
            }],
            chain: vec![ChainPosition {
                segment: 3,
                parity: 1,
                table: 4,
            }],
        };
        let text = e.to_string();
        assert!(text.contains("chain segment 3"), "{text}");
        assert!(text.contains("parity 1"), "{text}");
        assert!(text.contains("inherited table 4"), "{text}");
    }

    #[test]
    fn sim_error_converts() {
        let e: FlashOverlapError = sim::SimError::EventBudgetExhausted { processed: 3 }.into();
        assert!(matches!(e, FlashOverlapError::Simulation(_)));
    }
}
