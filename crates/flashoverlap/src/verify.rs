//! The static-verification seam: lowering plans into
//! [`planverify::ScheduleModel`]s, plus the registry-to-runtime mutation
//! mapping that deduplicates the suite's three corruption mechanisms.
//!
//! Everything the verifier checks is a property of plan data — the wave
//! partition, the reordering mapping, the counting-table thresholds —
//! so the lowering never touches the simulator: per rank it emits the
//! tile write footprints straight from the plan's [`EpilogueWriter`]
//! spans, and per wave group the wait threshold (the group's tile
//! count), the scheduled increments, and the packed-buffer region the
//! group's collective reads. Chained executions (`Pipeline` layers,
//! `execute_sequence` batches) lower to one segment each, carrying the
//! ping-pong counting-table parity and the presence of the rearm chain,
//! exactly as the executors enqueue them.
//!
//! The [`runtime_seam`] mapping is the other half of the conformance
//! story: the `planverify` mutation registry is the single enumeration
//! of schedule corruptions, and this module says which runtime knob —
//! [`SignalMutation`], a [`Fault`], or
//! [`SequenceOptions::drop_cross_batch_edge`] — drives each one on each
//! execute path (or that none exists, keeping the coverage gap
//! explicit).
//!
//! [`SequenceOptions::drop_cross_batch_edge`]:
//! crate::sequence::SequenceOptions::drop_cross_batch_edge

use planverify::{
    ExecPath, GroupModel, Interval, Mutation, RankModel, ScheduleModel, Segment, TileWrite,
    VerifyReport, Violation,
};
use sim::SimDuration;

use crate::error::FlashOverlapError;
use crate::pipeline::Pipeline;
use crate::resilience::Fault;
use crate::runtime::{OverlapPlan, SignalMutation};

/// Lowers one plan into a single-segment schedule model (table set 0, no
/// rearm — single-shot executions never reuse a table).
pub fn model_of_plan(plan: &OverlapPlan) -> ScheduleModel {
    ScheduleModel {
        n_ranks: plan.system.n_gpus,
        node_of: node_map_of(plan),
        segments: vec![segment_of(plan, "plan".to_string(), 0, false)],
    }
}

/// The rank→node map lowered into the model — empty for single-node
/// systems, so the verifier's node-coverage pass only runs on schedules
/// that actually rendezvous across nodes.
fn node_map_of(plan: &OverlapPlan) -> Vec<usize> {
    if plan.system.topology.spans_nodes() {
        plan.system.topology.node_map()
    } else {
        Vec::new()
    }
}

/// Lowers a chained execution — `Pipeline` layers or `execute_sequence`
/// batches — into one segment per plan, with the executors' table
/// ping-pong (parity `i % 2`) and rearm chains (present from the first
/// table reuse, segment 2, onward). `label` names the chain's unit in
/// reports ("layer", "batch").
pub fn model_of_chain(plans: &[&OverlapPlan], label: &str) -> ScheduleModel {
    let n_ranks = plans.first().map_or(0, |p| p.system.n_gpus);
    ScheduleModel {
        n_ranks,
        node_of: plans.first().map_or_else(Vec::new, |p| node_map_of(p)),
        segments: plans
            .iter()
            .enumerate()
            .map(|(i, p)| segment_of(p, format!("{label} {i}"), i % 2, i >= 2))
            .collect(),
    }
}

fn segment_of(plan: &OverlapPlan, label: String, table: usize, rearmed: bool) -> Segment {
    Segment {
        label,
        table,
        rearmed,
        ranks: (0..plan.system.n_gpus)
            .map(|rank| rank_model(plan, rank))
            .collect(),
    }
}

fn rank_model(plan: &OverlapPlan, rank: usize) -> RankModel {
    let grid = plan.config.grid(plan.dims);
    let writer = plan.writer_for(rank);
    let group_of_tile = plan.group_of_tile().to_vec();
    let tile_writes = (0..grid.num_tiles())
        .map(|t| TileWrite {
            tile: t,
            group: group_of_tile.get(t as usize).copied().unwrap_or(0) as usize,
            intervals: writer
                .write_spans(&grid, t)
                .into_iter()
                .map(|r| Interval::new(r.start, r.end - r.start))
                .collect(),
        })
        .collect();
    let counts = plan.group_tile_counts();
    let groups = (0..counts.len())
        .map(|g| {
            let region = plan.group_send_region(g, rank);
            GroupModel {
                group: g,
                // A group with no collective schedules no wait either.
                wait: region.map(|_| counts.get(g).copied().unwrap_or(0)),
                increments: counts.get(g).copied().unwrap_or(0),
                reads: region
                    .filter(|&(_, len)| len > 0)
                    .map(|(start, len)| Interval::new(start, len))
                    .into_iter()
                    .collect(),
            }
        })
        .collect();
    RankModel {
        rank,
        tile_writes,
        groups,
    }
}

impl OverlapPlan {
    /// Statically verifies this plan's signal/wait schedule: threshold
    /// feasibility, deadlock freedom, and tile-granular race/coverage.
    pub fn verify(&self) -> VerifyReport {
        planverify::verify(&model_of_plan(self))
    }

    /// [`OverlapPlan::verify`] as a gate: `Err` on the first violation,
    /// naming the shape, group, and threshold.
    ///
    /// # Errors
    ///
    /// [`FlashOverlapError::BadInputs`] describing the first proven
    /// violation.
    pub fn check_static(&self) -> Result<(), FlashOverlapError> {
        check_report(&self.verify(), &plan_context(self))
    }

    /// Per-group wait thresholds as the runtime enqueues them: the
    /// group's tile count, or `None` for groups that schedule no wait
    /// (zero communicated payload). Persisted with plan-cache snapshots
    /// so preloading can cross-check the rebuilt schedule.
    pub fn wait_thresholds(&self) -> Vec<Option<u32>> {
        let counts = self.group_tile_counts().to_vec();
        counts
            .iter()
            .enumerate()
            .map(|(g, &c)| self.group_send_region(g, 0).map(|_| c))
            .collect()
    }
}

impl Pipeline {
    /// Statically verifies the whole layer chain, including the
    /// counting-table ping-pong and rearm edges `execute_with` enqueues.
    pub fn verify(&self) -> VerifyReport {
        let plans: Vec<&OverlapPlan> = self.plans().iter().collect();
        planverify::verify(&model_of_chain(&plans, "layer"))
    }
}

/// Statically verifies an [`execute_sequence`](crate::execute_sequence)
/// batch chain (pipelined schedule: ping-ponged tables, rearm chains
/// from the first reuse).
pub fn verify_sequence(plans: &[&OverlapPlan]) -> VerifyReport {
    planverify::verify(&model_of_chain(plans, "batch"))
}

fn plan_context(plan: &OverlapPlan) -> String {
    format!(
        "{}x{}x{} {:?}",
        plan.dims.m,
        plan.dims.n,
        plan.dims.k,
        plan.primitive()
    )
}

fn check_report(report: &VerifyReport, context: &str) -> Result<(), FlashOverlapError> {
    match report.violations.first() {
        None => Ok(()),
        Some(v) => Err(FlashOverlapError::BadInputs {
            reason: format!("statically invalid schedule for {context}: {v}"),
        }),
    }
}

/// Gates a verify report with a caller-supplied context string (shape,
/// cache key, file name) — the serving cache and CLI use this to reject
/// corrupt plans with a message naming where they came from.
///
/// # Errors
///
/// [`FlashOverlapError::BadInputs`] describing the first violation.
pub fn reject_if_invalid(report: &VerifyReport, context: &str) -> Result<(), FlashOverlapError> {
    check_report(report, context)
}

/// Renders one violation compactly for logs/JSON (`label: detail`).
pub fn violation_line(v: &Violation) -> String {
    format!("{}: {v}", v.label())
}

/// The runtime knob that drives a registry mutation on a given execute
/// path — or the reason none exists. This is the single source of truth
/// deduplicating the suite's historical mutation mechanisms
/// ([`SignalMutation`], the signal-affecting [`Fault`] arms, and the
/// sequence executor's dropped cross-batch edge) behind the
/// `planverify` registry.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeSeam {
    /// Drive via [`SignalMutation`] (`ExecOptions::instrument`,
    /// `PipelineExecOptions::mutate_layer`, or
    /// `SequenceOptions::mutation_batch`).
    Signal(SignalMutation),
    /// Drive via the resilient runtime's fault injection.
    Fault(Fault),
    /// Drive via `SequenceOptions::drop_cross_batch_edge(batch)`.
    SequenceEdge,
    /// No runtime knob reaches this path; only the static verifier
    /// covers the cell. The string says why.
    StaticOnly(&'static str),
    /// Nothing to drive: the mutation is benign or meaningless here.
    Nothing(&'static str),
}

/// Signal delay used when lowering [`Mutation::DelayIncrements`] to a
/// [`Fault::DelayedIncrement`]: long enough to stretch any overlap
/// window, short enough to stay under watchdog deadlines in self-tests
/// that want a recovered run.
pub const SEAM_DELAY: SimDuration = SimDuration::from_micros(200);

/// Maps a registry mutation on an execute path to the runtime seam that
/// drives it (the dynamic half of the conformance matrix).
pub fn runtime_seam(mutation: &Mutation, path: ExecPath) -> RuntimeSeam {
    match (*mutation, path) {
        (Mutation::DropWait { rank, group }, _) => {
            RuntimeSeam::Signal(SignalMutation::DropWait { rank, group })
        }
        (Mutation::RaiseThreshold { rank, group }, _) => {
            RuntimeSeam::Signal(SignalMutation::RaiseThreshold { rank, group })
        }
        (Mutation::DropIncrements { rank, group, count }, _) => {
            // Every path: single-shot via `ExecOptions::resilient`,
            // chains via `SequenceOptions::resilient` /
            // `PipelineExecOptions::resilient` (per-segment FaultPlans).
            RuntimeSeam::Fault(Fault::DroppedIncrement { rank, group, count })
        }
        (Mutation::DelayIncrements { rank, group, count }, _) => {
            RuntimeSeam::Fault(Fault::DelayedIncrement {
                rank,
                group,
                count,
                delay: SEAM_DELAY,
            })
        }
        (Mutation::ReorderIncrements { .. }, _) => RuntimeSeam::Nothing(
            "increments commute; the simulator's issue order is already one \
                                  of the permutations the totals-only model proves equivalent",
        ),
        (Mutation::DropRearm, ExecPath::Sequence) => RuntimeSeam::SequenceEdge,
        (Mutation::DropRearm, ExecPath::Pipeline) => RuntimeSeam::StaticOnly(
            "Pipeline::execute_with exposes no edge-deletion knob; the seam is static-only",
        ),
        (Mutation::DropRearm, ExecPath::Single) => {
            RuntimeSeam::Nothing("single-shot executions never reuse a counting table")
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::runtime::CommPattern;
    use crate::system::SystemSpec;
    use gpu_sim::gemm::GemmDims;
    use planverify::MutationKind;

    fn plan(pattern: CommPattern) -> OverlapPlan {
        let dims = GemmDims::new(512, 1024, 512);
        let system = SystemSpec::rtx4090(2);
        OverlapPlan::tuned(dims, pattern, system).unwrap()
    }

    #[test]
    fn tuned_plans_verify_clean_for_every_pattern() {
        for pattern in [
            CommPattern::AllReduce,
            CommPattern::ReduceScatter,
            CommPattern::AllGather,
        ] {
            let p = plan(pattern);
            let report = p.verify();
            assert!(report.is_clean(), "{:?}: {:?}", p, report.violations);
            assert!(report.stats.waits > 0, "model must contain real waits");
            assert!(report.stats.reads > 0);
            p.check_static().unwrap();
        }
    }

    #[test]
    fn multi_node_plan_lowers_its_node_map_and_verifies_clean() {
        let dims = GemmDims::new(512, 1024, 512);
        let system = SystemSpec::rtx4090(4).with_nodes(2);
        let p = OverlapPlan::tuned(dims, CommPattern::AllReduce, system).unwrap();
        let model = model_of_plan(&p);
        assert_eq!(model.node_of, vec![0, 0, 1, 1]);
        let report = p.verify();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(
            report.stats.node_checks >= 2,
            "node-coverage pass must run on hierarchical models"
        );
        // Single-node plans lower an empty map: the pass is skipped.
        let flat = plan(CommPattern::AllReduce);
        assert!(model_of_plan(&flat).node_of.is_empty());
        assert_eq!(flat.verify().stats.node_checks, 0);
    }

    #[test]
    fn all_to_all_plan_verifies_clean_including_zero_payload_groups() {
        let dims = GemmDims::new(256, 512, 256);
        let system = SystemSpec::rtx4090(2);
        // Route every token to rank 0: rank-1-bound groups carry zero
        // payload on some (src, dest) pairs.
        let routing = vec![vec![0usize; 256], vec![0usize; 256]];
        let p = OverlapPlan::tuned(dims, CommPattern::AllToAll { routing }, system).unwrap();
        let report = p.verify();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn mutated_model_fails_statically_with_named_target() {
        let p = plan(CommPattern::AllReduce);
        let mut model = model_of_plan(&p);
        model.apply(&Mutation::RaiseThreshold { rank: 1, group: 0 }, 0);
        let report = planverify::verify(&model);
        assert_eq!(report.count_of("unreachable-threshold"), 1);
        let err = reject_if_invalid(&report, "test-plan").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("test-plan"), "{text}");
        assert!(text.contains("rank 1"), "{text}");
        assert!(text.contains("group 0"), "{text}");
    }

    #[test]
    fn chain_model_ping_pongs_tables_and_rearms_from_segment_two() {
        let p = plan(CommPattern::AllReduce);
        let plans = [&p, &p, &p, &p];
        let model = model_of_chain(&plans, "batch");
        let meta: Vec<(usize, bool)> = model
            .segments
            .iter()
            .map(|s| (s.table, s.rearmed))
            .collect();
        assert_eq!(meta, vec![(0, false), (1, false), (0, true), (1, true)]);
        assert!(planverify::verify(&model).is_clean());
        // Dropping batch 2's rearm is the statically visible stale-table
        // hazard the sequence mutation self-test exercises dynamically.
        let mut mutated = model;
        mutated.apply(&Mutation::DropRearm, 2);
        let report = planverify::verify(&mutated);
        assert!(
            report.count_of("stale-rearm") > 0,
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn wait_thresholds_match_group_tile_counts() {
        let p = plan(CommPattern::AllReduce);
        let thresholds = p.wait_thresholds();
        assert_eq!(thresholds.len(), p.group_tile_counts().len());
        for (t, &c) in thresholds.iter().zip(p.group_tile_counts()) {
            assert_eq!(*t, Some(c));
        }
    }

    #[test]
    fn every_matrix_cell_resolves_to_a_seam() {
        // The registry is the single enumeration: every (kind, path) cell
        // must map to a concrete runtime seam or an explicit reason.
        for cell in planverify::conformance_matrix() {
            let mutation = sample_mutation(cell.mutation);
            let seam = runtime_seam(&mutation, cell.path);
            match cell.dynamic.label() {
                "caught" | "conditional" => assert!(
                    matches!(
                        seam,
                        RuntimeSeam::Signal(_) | RuntimeSeam::Fault(_) | RuntimeSeam::SequenceEdge
                    ),
                    "({}, {}) claims dynamic coverage but has seam {seam:?}",
                    cell.mutation,
                    cell.path
                ),
                _ => assert!(
                    matches!(seam, RuntimeSeam::StaticOnly(_) | RuntimeSeam::Nothing(_)),
                    "({}, {}) claims no dynamic coverage but has seam {seam:?}",
                    cell.mutation,
                    cell.path
                ),
            }
        }
    }

    pub(crate) fn sample_mutation(kind: MutationKind) -> Mutation {
        match kind {
            MutationKind::DropWait => Mutation::DropWait { rank: 0, group: 0 },
            MutationKind::RaiseThreshold => Mutation::RaiseThreshold { rank: 0, group: 0 },
            MutationKind::DropIncrements => Mutation::DropIncrements {
                rank: 0,
                group: 0,
                count: 1,
            },
            MutationKind::DelayIncrements => Mutation::DelayIncrements {
                rank: 0,
                group: 0,
                count: 1,
            },
            MutationKind::ReorderIncrements => Mutation::ReorderIncrements { rank: 0 },
            MutationKind::DropRearm => Mutation::DropRearm,
        }
    }
}
