//! Fault injection and the watchdog/degraded-mode runtime (robustness
//! layer).
//!
//! The real FlashOverlap inherits NCCL's failure model: a lost signal
//! (e.g. a dropped epilogue atomic), a stalled or underdelivering link,
//! or a straggler rank turns the tightly-coupled overlap schedule into a
//! distributed hang. NCCL answers with a watchdog thread and
//! `ncclCommAbort`; this module reproduces that ladder over the
//! simulated runtime:
//!
//! 1. **Injection** — a deterministic, seeded [`FaultPlan`] arms faults
//!    at the existing seams: counting-table increments can be dropped or
//!    delayed ([`gpu_sim::counter::CounterTable::arm_fault`]), links can
//!    degrade or stall ([`gpu_sim::CommFault`],
//!    [`interconnect::FabricSpec::degraded`]), and ranks can lose SMs or
//!    start late.
//! 2. **Watchdog** — [`crate::ExecOptions::resilient`] execution derives a
//!    deadline from the latency predictor's expected time times
//!    [`WatchdogConfig::deadline_multiplier`] and steps the simulation
//!    against it. On expiry it escalates: deadline extensions while work
//!    is still flowing, then a *tail recovery* (abort the starved
//!    communicator state, re-issue the missing groups as tail
//!    collectives gated on GEMM completion), then a *bulk degraded
//!    fallback*. Every execution terminates with either a bit-exact
//!    result or a structured [`ResilientOutcome::Degraded`] report —
//!    never a hang.
//! 3. **Campaigns** — [`run_chaos`] executes seeded fault campaigns and
//!    compares each functional output against the fault-free reference.
//!
//! A key semantic choice mirrors the real failure mode: a dropped
//! increment loses only the *signal* — the epilogue's tile write is
//! unaffected, exactly as when a real epilogue's signaling atomic is
//! lost. Recovery collectives run only after the GEMM completes, so they
//! read complete data and degraded-mode results stay bit-exact.
//!
//! Like the other fault hot paths (`gpu_sim::counter`), this module opts
//! in to the indexing lint: fault arming and recovery must not panic on
//! an out-of-range rank or group.
#![warn(clippy::indexing_slicing)]

use std::fmt;

use gpu_sim::gemm::GemmDims;
use sim::{DetRng, SimDuration};

use crate::error::FlashOverlapError;
use crate::runtime::{CommPattern, FunctionalInputs, OverlapPlan, RunReport};
use crate::system::SystemSpec;

/// One injected fault. Ranks and groups refer to the plan the fault runs
/// against; [`FaultPlan::validate`] rejects out-of-range targets before
/// anything is armed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// `count` of `rank`'s counting-table increments for `group` are
    /// dropped: the signal is lost but the tile data is written — the
    /// lost-signal bug class that wedges the group's wait.
    DroppedIncrement {
        /// Rank whose increments are dropped.
        rank: usize,
        /// Target wave group.
        group: usize,
        /// How many increments to drop.
        count: u32,
    },
    /// `count` of `rank`'s increments for `group` land `delay` late
    /// (slow signal propagation; stretches the overlap, never wedges it).
    DelayedIncrement {
        /// Rank whose increments are delayed.
        rank: usize,
        /// Target wave group.
        group: usize,
        /// How many increments to delay.
        count: u32,
        /// Signal delay.
        delay: SimDuration,
    },
    /// Every collective call runs `slowdown` times longer — a
    /// persistently underdelivering link (values below 1 are clamped up).
    LinkDegradation {
        /// Duration multiplier applied at every rendezvous.
        slowdown: f64,
    },
    /// Collectives that *cross a node boundary* run `slowdown` times
    /// longer; single-node collectives are untouched — a congested or
    /// flapping inter-node (InfiniBand-tier) link. On a single-node
    /// topology this fault is armed but never felt.
    InterLinkDegradation {
        /// Duration multiplier applied only at node-spanning rendezvous.
        slowdown: f64,
    },
    /// The next `count` collective calls stall for `stall` before
    /// starting (transient link congestion or retransmit bursts).
    LinkStall {
        /// Extra delay per affected call.
        stall: SimDuration,
        /// How many calls the stall applies to.
        count: u32,
    },
    /// `rank` permanently loses `sms` SMs to a rogue persistent kernel,
    /// shrinking its wave width — the straggler-SM class.
    StragglerSms {
        /// The straggling rank.
        rank: usize,
        /// SMs lost for the whole run.
        sms: u32,
    },
    /// `rank`'s entire program starts `delay` late (straggler rank /
    /// host-process hiccup, beyond the modelled launch skew).
    SlowRank {
        /// The late rank.
        rank: usize,
        /// Extra launch delay on both of the rank's streams.
        delay: SimDuration,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::DroppedIncrement { rank, group, count } => {
                write!(f, "drop {count} increments of group {group} on rank {rank}")
            }
            Fault::DelayedIncrement {
                rank,
                group,
                count,
                delay,
            } => write!(
                f,
                "delay {count} increments of group {group} on rank {rank} by {delay}"
            ),
            Fault::LinkDegradation { slowdown } => {
                write!(f, "degrade links: {slowdown:.2}x slower collectives")
            }
            Fault::InterLinkDegradation { slowdown } => {
                write!(
                    f,
                    "degrade inter-node links: {slowdown:.2}x slower node-spanning collectives"
                )
            }
            Fault::LinkStall { stall, count } => {
                write!(f, "stall next {count} collective calls by {stall}")
            }
            Fault::StragglerSms { rank, sms } => {
                write!(f, "rank {rank} loses {sms} SMs for the whole run")
            }
            Fault::SlowRank { rank, delay } => {
                write!(f, "rank {rank} launches {delay} late")
            }
        }
    }
}

/// A deterministic set of faults injected into one execution. Seeded
/// construction ([`FaultPlan::random`]) uses only [`sim::DetRng`] — no
/// wall-clock — so campaigns replay exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The faults, applied in order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (a fault-free resilient run).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    pub fn single(fault: Fault) -> Self {
        FaultPlan {
            faults: vec![fault],
        }
    }

    /// Draws a deterministic random plan of one to three faults for a
    /// system of `n_ranks` ranks and a partition of `num_groups` groups.
    pub fn random(seed: u64, n_ranks: usize, num_groups: usize) -> Self {
        let mut rng = DetRng::new(seed);
        let n_faults = 1 + rng.next_below(3) as usize;
        let mut faults = Vec::with_capacity(n_faults);
        let rank = |rng: &mut DetRng| rng.next_below(n_ranks.max(1) as u64) as usize;
        let group = |rng: &mut DetRng| rng.next_below(num_groups.max(1) as u64) as usize;
        for _ in 0..n_faults {
            faults.push(match rng.next_below(6) {
                0 => Fault::DroppedIncrement {
                    rank: rank(&mut rng),
                    group: group(&mut rng),
                    count: 1 + rng.next_below(3) as u32,
                },
                1 => Fault::DelayedIncrement {
                    rank: rank(&mut rng),
                    group: group(&mut rng),
                    count: 1 + rng.next_below(3) as u32,
                    delay: SimDuration::from_micros(20 + rng.next_below(200)),
                },
                2 => Fault::LinkDegradation {
                    slowdown: rng.uniform(1.5, 6.0),
                },
                3 => Fault::LinkStall {
                    stall: SimDuration::from_micros(50 + rng.next_below(500)),
                    count: 1 + rng.next_below(4) as u32,
                },
                4 => Fault::StragglerSms {
                    rank: rank(&mut rng),
                    sms: 1 + rng.next_below(4) as u32,
                },
                _ => Fault::SlowRank {
                    rank: rank(&mut rng),
                    delay: SimDuration::from_micros(10 + rng.next_below(300)),
                },
            });
        }
        FaultPlan { faults }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Checks every fault's rank/group against the target plan before
    /// anything is armed.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] naming the out-of-range
    /// fault.
    pub fn validate(&self, n_ranks: usize, num_groups: usize) -> Result<(), FlashOverlapError> {
        for fault in &self.faults {
            let (rank, group) = match *fault {
                Fault::DroppedIncrement { rank, group, .. }
                | Fault::DelayedIncrement { rank, group, .. } => (Some(rank), Some(group)),
                Fault::StragglerSms { rank, .. } | Fault::SlowRank { rank, .. } => {
                    (Some(rank), None)
                }
                Fault::LinkDegradation { .. }
                | Fault::InterLinkDegradation { .. }
                | Fault::LinkStall { .. } => (None, None),
            };
            if let Some(r) = rank {
                if r >= n_ranks {
                    return Err(FlashOverlapError::BadInputs {
                        reason: format!("fault targets rank {r} of {n_ranks}: {fault}"),
                    });
                }
            }
            if let Some(g) = group {
                if g >= num_groups {
                    return Err(FlashOverlapError::BadInputs {
                        reason: format!("fault targets group {g} of {num_groups}: {fault}"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Watchdog escalation policy for resilient executions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// The deadline is the predictor's expected latency times this
    /// multiplier (values below 1 are clamped up). NCCL's
    /// `NCCL_TIMEOUT`-style knob, expressed relative to the expected
    /// time instead of absolute seconds.
    pub deadline_multiplier: f64,
    /// Deadline extensions granted while the simulation still makes
    /// progress before the run is marked degraded.
    pub max_retries: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            deadline_multiplier: 4.0,
            max_retries: 2,
        }
    }
}

/// How a resilient execution terminated.
#[derive(Debug, Clone, PartialEq)]
pub enum ResilientOutcome {
    /// No intervention was needed (deadline extensions may still have
    /// been granted; see the event log).
    Clean,
    /// The watchdog broke at least one wedge and the tail recovery
    /// completed every remaining group — the result is still bit-exact.
    Recovered {
        /// Deadline extensions granted along the way.
        retries: u32,
        /// Groups re-issued as tail collectives.
        tail_groups: Vec<usize>,
    },
    /// The overlap plan was abandoned: the remaining output completed
    /// (when possible) via bulk non-overlapped collectives.
    Degraded {
        /// Why the run degraded (never empty).
        cause: String,
        /// Groups that completed before the plan was abandoned, via
        /// overlap or tail recovery.
        recovered_groups: Vec<usize>,
    },
}

impl ResilientOutcome {
    /// Whether the run needed no intervention.
    pub fn is_clean(&self) -> bool {
        matches!(self, ResilientOutcome::Clean)
    }

    /// Whether the run abandoned the overlap plan.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ResilientOutcome::Degraded { .. })
    }

    /// Short label for reports (`clean` / `recovered` / `degraded`).
    pub fn label(&self) -> &'static str {
        match self {
            ResilientOutcome::Clean => "clean",
            ResilientOutcome::Recovered { .. } => "recovered",
            ResilientOutcome::Degraded { .. } => "degraded",
        }
    }
}

/// Results of one resilient execution.
#[derive(Debug, Clone)]
pub struct ResilientReport {
    /// Timing (identical probe machinery to a plain run).
    pub report: RunReport,
    /// How the run terminated.
    pub outcome: ResilientOutcome,
    /// Fault and recovery timeline: every armed fault, watchdog firing,
    /// tail recovery, and degraded fallback, in order.
    pub events: Vec<gpu_sim::RuntimeEvent>,
    /// Number of faults the plan armed.
    pub faults_armed: usize,
}

impl ResilientReport {
    /// Events of one kind, for assertions over the recovery timeline.
    pub fn events_of(&self, kind: gpu_sim::RuntimeEventKind) -> Vec<&gpu_sim::RuntimeEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }
}

/// Configuration of a seeded chaos campaign run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Base seed; campaign `i` draws its fault plan from `seed + i` and
    /// its inputs from `seed`.
    pub seed: u64,
    /// Number of fault campaigns to run.
    pub campaigns: usize,
    /// Per-rank GEMM dimensions. Functional GEMMs run on the host, so
    /// campaign defaults stay small.
    pub dims: GemmDims,
    /// Simulated ranks.
    pub gpus: usize,
    /// SM count of the miniature campaign system (small keeps runs fast
    /// while still producing multi-wave, multi-group plans).
    pub sm_count: u32,
    /// SMs reserved for communication kernels.
    pub comm_sms: u32,
    /// Watchdog policy under test.
    pub watchdog: WatchdogConfig,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 7,
            campaigns: 20,
            dims: GemmDims::new(384, 512, 64),
            gpus: 2,
            sm_count: 8,
            comm_sms: 2,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// One campaign's result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The fault-plan seed of this campaign.
    pub seed: u64,
    /// Number of faults armed.
    pub faults: usize,
    /// How the run terminated.
    pub outcome: ResilientOutcome,
    /// Whether every rank's output matched the fault-free reference
    /// bit for bit.
    pub bit_exact: bool,
    /// Operator latency of the run, nanoseconds.
    pub latency_ns: u64,
    /// Recovery-timeline events recorded (faults, watchdog firings,
    /// recoveries).
    pub events: usize,
}

/// Aggregate results of a chaos campaign sweep.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The configuration the sweep ran with.
    pub config: ChaosConfig,
    /// Latency of the fault-free reference run, nanoseconds.
    pub reference_latency_ns: u64,
    /// Per-campaign results, in seed order.
    pub results: Vec<CampaignResult>,
}

impl ChaosReport {
    /// Campaigns that ended with a bit-exact result.
    pub fn bit_exact(&self) -> usize {
        self.results.iter().filter(|r| r.bit_exact).count()
    }

    /// Campaigns that completed the overlap plan untouched.
    pub fn clean(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_clean()).count()
    }

    /// Campaigns that needed tail recovery.
    pub fn recovered(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, ResilientOutcome::Recovered { .. }))
            .count()
    }

    /// Campaigns that abandoned the overlap plan.
    pub fn degraded(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.outcome.is_degraded())
            .count()
    }

    /// Campaigns that are neither bit-exact nor flagged degraded with a
    /// cause — the invariant violations. Must be zero.
    pub fn violations(&self) -> usize {
        self.results
            .iter()
            .filter(|r| {
                !r.bit_exact
                    && !matches!(&r.outcome, ResilientOutcome::Degraded { cause, .. }
                                 if !cause.is_empty())
            })
            .count()
    }
}

/// Runs a seeded chaos campaign sweep: builds a miniature multi-wave
/// plan, computes the fault-free functional reference once, then runs
/// `campaigns` seeded fault plans through the watchdog runtime and
/// checks every output against the reference bit for bit.
///
/// Every campaign terminates — a wedge is broken by the watchdog, never
/// reported as a hang. A campaign whose execution nevertheless errors
/// (engine budget, invalid fault target) surfaces as `Err`.
///
/// # Errors
///
/// Returns an error if the plan cannot be built or a campaign's
/// execution fails outright.
pub fn run_chaos(config: &ChaosConfig) -> Result<ChaosReport, FlashOverlapError> {
    if config.campaigns == 0 {
        return Err(FlashOverlapError::BadInputs {
            reason: "need at least one campaign".into(),
        });
    }
    let mut system = SystemSpec::rtx4090(config.gpus);
    system.arch.sm_count = config.sm_count;
    system.comm_sms = config.comm_sms;
    // Per-wave grouping maximizes the number of signal waits — the widest
    // fault surface a partition can offer.
    let gemm_config = gpu_sim::gemm::GemmConfig::choose(config.dims, &system.arch);
    let waves = gemm_config
        .grid(config.dims)
        .num_tiles()
        .div_ceil(system.compute_sms());
    let plan = OverlapPlan::new(
        config.dims,
        CommPattern::AllReduce,
        system,
        crate::partition::WavePartition::per_wave(waves),
    )?;
    let num_groups = plan.group_tile_counts().len();

    let inputs = FunctionalInputs::random(config.dims, config.gpus, config.seed);
    let reference = plan.execute_with(&crate::runtime::ExecOptions::new().functional(&inputs))?;
    let reference_outputs = reference.outputs.unwrap_or_default();

    let mut results = Vec::with_capacity(config.campaigns);
    for i in 0..config.campaigns {
        let seed = config.seed + i as u64;
        let faults = FaultPlan::random(seed, config.gpus, num_groups);
        let run = plan.execute_with(
            &crate::runtime::ExecOptions::new()
                .functional(&inputs)
                .resilient(&faults, &config.watchdog),
        )?;
        let run_outputs = run.outputs.unwrap_or_default();
        let bit_exact = run_outputs.len() == reference_outputs.len()
            && run_outputs
                .iter()
                .zip(&reference_outputs)
                .all(|(a, b)| a.as_slice() == b.as_slice());
        results.push(CampaignResult {
            seed,
            faults: faults.faults.len(),
            outcome: run.outcome,
            bit_exact,
            latency_ns: run.report.latency.as_nanos(),
            events: run.events.len(),
        });
    }
    Ok(ChaosReport {
        config: config.clone(),
        reference_latency_ns: reference.report.latency.as_nanos(),
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_sweep_terminates_with_zero_violations() {
        let config = ChaosConfig {
            campaigns: 6,
            dims: GemmDims::new(256, 256, 64),
            ..ChaosConfig::default()
        };
        let report = run_chaos(&config).unwrap();
        assert_eq!(report.results.len(), 6);
        assert_eq!(report.violations(), 0, "{:?}", report.results);
        assert!(report.results.iter().all(|r| r.faults >= 1));
        assert!(report.reference_latency_ns > 0);
    }

    #[test]
    fn random_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::random(42, 4, 6);
        let b = FaultPlan::random(42, 4, 6);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty() && a.faults.len() <= 3);
        a.validate(4, 6)
            .expect("random plans target valid ranks/groups");
        let c = FaultPlan::random(43, 4, 6);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let plan = FaultPlan::single(Fault::DroppedIncrement {
            rank: 9,
            group: 0,
            count: 1,
        });
        assert!(plan.validate(2, 4).is_err());
        let plan = FaultPlan::single(Fault::DroppedIncrement {
            rank: 0,
            group: 9,
            count: 1,
        });
        assert!(plan.validate(2, 4).is_err());
        assert!(FaultPlan::none().validate(0, 0).is_ok());
    }

    #[test]
    fn fault_display_names_the_seam() {
        let text = Fault::DroppedIncrement {
            rank: 1,
            group: 3,
            count: 2,
        }
        .to_string();
        assert!(
            text.contains("rank 1") && text.contains("group 3"),
            "{text}"
        );
    }
}
