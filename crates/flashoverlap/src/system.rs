//! System specifications: which GPUs, how many, over what fabric.

use collectives::Algorithm;
use gpu_sim::arch::GpuArch;
use gpu_sim::cluster::Cluster;
use interconnect::FabricSpec;
use topology::Topology;

/// A complete description of the simulated multi-GPU server an overlap
/// plan targets.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// GPU architecture of every device.
    pub arch: GpuArch,
    /// Inter-GPU fabric (the intra-node tier of [`SystemSpec::topology`];
    /// kept in sync by the builders).
    pub fabric: FabricSpec,
    /// How the GPUs are laid out across nodes. Single-node by default;
    /// [`SystemSpec::with_nodes`] splits the group across nodes with an
    /// InfiniBand-class inter tier, which switches collectives to the
    /// hierarchical schedule and makes the predictor charge node-spanning
    /// groups at inter-tier cost.
    pub topology: Topology,
    /// Number of GPUs participating (the parallel group size).
    pub n_gpus: usize,
    /// Constant SM footprint of one in-flight collective (§4.2.1:
    /// "a communication primitive across given GPUs occupies a constant SM
    /// number using NCCL").
    pub comm_sms: u32,
    /// Simulation seed (jitter, polling phase).
    pub seed: u64,
    /// Collective algorithm the communication library schedules with
    /// (the overlap design is agnostic to it; Ring matches the paper's
    /// NCCL setup).
    pub algorithm: Algorithm,
    /// Maximum per-rank launch skew in nanoseconds: each rank starts its
    /// work a uniformly random delay in `[0, launch_skew_ns)` late,
    /// modelling host-process jitter in multi-process serving. Zero (the
    /// default) matches the paper's single-process measurement setup.
    pub launch_skew_ns: u64,
}

impl SystemSpec {
    /// The RTX 4090 server: PCIe across NUMA, no peer-to-peer.
    pub fn rtx4090(n_gpus: usize) -> Self {
        SystemSpec {
            arch: GpuArch::rtx4090(),
            fabric: FabricSpec::rtx4090_pcie(),
            topology: Topology::single_node(FabricSpec::rtx4090_pcie(), n_gpus.max(1)),
            n_gpus,
            comm_sms: 16,
            seed: 0x5eed,
            algorithm: Algorithm::Ring,
            launch_skew_ns: 0,
        }
    }

    /// The A800 server: pairwise NVLink, peer-to-peer capable.
    pub fn a800(n_gpus: usize) -> Self {
        SystemSpec {
            arch: GpuArch::a800(),
            fabric: FabricSpec::a800_nvlink(),
            topology: Topology::single_node(FabricSpec::a800_nvlink(), n_gpus.max(1)),
            n_gpus,
            comm_sms: 20,
            seed: 0x5eed,
            algorithm: Algorithm::Ring,
            launch_skew_ns: 0,
        }
    }

    /// Returns a copy with a different seed (repeat-measurement sweeps).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different collective SM footprint (ablation).
    pub fn with_comm_sms(mut self, comm_sms: u32) -> Self {
        self.comm_sms = comm_sms;
        self
    }

    /// Returns a copy using a different collective algorithm (ablation;
    /// the overlap layer is unchanged).
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Returns a copy with per-rank launch skew (robustness studies).
    pub fn with_launch_skew_ns(mut self, launch_skew_ns: u64) -> Self {
        self.launch_skew_ns = launch_skew_ns;
        self
    }

    /// Returns a copy laid out on an explicit two-tier topology. The
    /// fabric field is re-synced to the topology's intra tier so every
    /// single-tier consumer (telemetry peaks, Fig. 8 curves) keeps
    /// reading a coherent value.
    ///
    /// # Panics
    ///
    /// Panics if the topology's GPU count differs from `n_gpus`.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert_eq!(
            topology.n_gpus(),
            self.n_gpus,
            "topology covers {} GPUs but the system has {}",
            topology.n_gpus(),
            self.n_gpus
        );
        self.fabric = topology.intra.clone();
        self.topology = topology;
        self
    }

    /// Returns a copy with the GPUs split evenly across `nodes` nodes:
    /// the existing fabric becomes the intra-node tier and nodes connect
    /// over HDR InfiniBand. `nodes == 1` is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or does not divide the GPU count.
    pub fn with_nodes(self, nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert_eq!(
            self.n_gpus % nodes,
            0,
            "{} GPUs do not split evenly across {nodes} nodes",
            self.n_gpus
        );
        if nodes == 1 {
            return self;
        }
        let topology = Topology::two_tier(
            nodes,
            self.n_gpus / nodes,
            self.fabric.clone(),
            FabricSpec::hdr_infiniband(),
        );
        self.with_topology(topology)
    }

    /// SMs left to the GEMM while communication is in flight (Alg. 1
    /// line 3).
    pub fn compute_sms(&self) -> u32 {
        self.arch
            .sm_count
            .saturating_sub(self.comm_sms)
            .max(gpu_sim::device::Device::min_compute_sms(self.arch.sm_count))
    }

    /// Realistic execution noise of the evaluation systems: kernels and
    /// collectives run up to a few percent slower than the analytic
    /// model, never faster ("the actual latency is always slightly
    /// higher than the predicted", §6.4).
    pub const GEMM_NOISE_FRAC: f64 = 0.03;
    /// Communication noise fraction (see [`SystemSpec::GEMM_NOISE_FRAC`]).
    pub const COMM_NOISE_FRAC: f64 = 0.06;

    /// Builds a fresh cluster for one simulation run (with the
    /// evaluation-grade execution noise enabled).
    pub fn build_cluster(&self, functional: bool) -> Cluster {
        let mut cluster = Cluster::new(self.n_gpus, self.arch.clone(), functional, self.seed);
        cluster.noise = gpu_sim::cluster::NoiseSpec {
            gemm_frac: Self::GEMM_NOISE_FRAC,
            comm_frac: Self::COMM_NOISE_FRAC,
        };
        cluster.set_node_map(self.topology.node_map());
        cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_expose_paper_platforms() {
        let r = SystemSpec::rtx4090(4);
        assert_eq!(r.n_gpus, 4);
        assert!(!r.fabric.peer_to_peer);
        let a = SystemSpec::a800(2);
        assert!(a.fabric.peer_to_peer);
    }

    #[test]
    fn compute_sms_subtracts_footprint() {
        let spec = SystemSpec::rtx4090(4);
        assert_eq!(spec.compute_sms(), 128 - 16);
        let spec = spec.with_comm_sms(127);
        assert_eq!(
            spec.compute_sms(),
            gpu_sim::device::Device::min_compute_sms(128)
        );
    }

    #[test]
    fn build_cluster_matches_spec() {
        let spec = SystemSpec::a800(3).with_seed(9);
        let cluster = spec.build_cluster(true);
        assert_eq!(cluster.num_devices(), 3);
        assert!(cluster.functional);
        assert_eq!(cluster.devices[0].arch.name, "A800");
        assert_eq!(cluster.node_of, vec![0, 0, 0]);
    }

    #[test]
    fn with_nodes_splits_the_group_and_places_devices() {
        let spec = SystemSpec::a800(8).with_nodes(2);
        assert_eq!(spec.topology.nodes, 2);
        assert_eq!(spec.topology.gpus_per_node, 4);
        assert_eq!(spec.fabric.name, spec.topology.intra.name);
        assert_eq!(spec.topology.inter.name, "HDR-IB");
        let cluster = spec.build_cluster(false);
        assert_eq!(cluster.node_of, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        // nodes == 1 is the identity.
        let single = SystemSpec::a800(8).with_nodes(1);
        assert!(!single.topology.spans_nodes());
    }

    #[test]
    #[should_panic(expected = "do not split evenly")]
    fn uneven_node_split_panics() {
        let _ = SystemSpec::a800(6).with_nodes(4);
    }
}
