//! Pre-communication reordering fused into the GEMM epilogue (§3.3.5).
//!
//! Each writer implements [`gpu_sim::gemm::EpilogueWriter`]: when a tile's
//! main loop finishes, its output block is written directly to the packed
//! (reordered) position instead of the matrix position — no extra kernel,
//! no main-loop change, and (since the mapping table is tiny) essentially
//! no extra memory traffic.

use std::rc::Rc;

use gpu_sim::gemm::EpilogueWriter;
use gpu_sim::tile::TileGrid;
use tensor::Matrix;

use crate::mapping::{SubtileMapping, TileMapping, TokenMapping};

/// Packs whole tiles in wave order (AllReduce reordering).
#[derive(Debug, Clone)]
pub struct PackedTileWriter {
    /// The tile mapping (shared with the runtime).
    pub mapping: Rc<TileMapping>,
}

impl EpilogueWriter for PackedTileWriter {
    fn write_tile(&self, grid: &TileGrid, t: u32, block: &Matrix, out: &mut [f32]) {
        debug_assert_eq!(grid.num_tiles(), self.mapping.grid().num_tiles());
        let base = self.mapping.tile_base(t);
        let width = block.cols();
        for r in 0..block.rows() {
            let dst = base + r * width;
            out[dst..dst + width].copy_from_slice(block.row(r));
        }
    }

    fn out_len(&self, _grid: &TileGrid) -> usize {
        self.mapping.total_elems
    }

    fn write_spans(&self, grid: &TileGrid, t: u32) -> Vec<std::ops::Range<usize>> {
        // Whole tiles pack contiguously at their reordered base.
        let base = self.mapping.tile_base(t);
        let rows = grid.rows_of(t);
        let cols = grid.cols_of(t);
        let elems = (rows.end - rows.start) as usize * (cols.end - cols.start) as usize;
        std::iter::once(base..base + elems).collect()
    }
}

/// Packs row-interleaved subtiles per destination rank (ReduceScatter
/// reordering).
#[derive(Debug, Clone)]
pub struct SubtilePackedWriter {
    /// The subtile mapping (shared with the runtime).
    pub mapping: Rc<SubtileMapping>,
}

impl EpilogueWriter for SubtilePackedWriter {
    fn write_tile(&self, grid: &TileGrid, t: u32, block: &Matrix, out: &mut [f32]) {
        let rows = grid.rows_of(t);
        let width = block.cols();
        let n = self.mapping.n_ranks;
        for (br, r) in rows.enumerate() {
            let dest = r as usize % n;
            let row_in_subtile = br / n;
            // Global and local row parities agree because the rank count
            // divides the tile height (validated at build time), so every
            // tile starts on a rank-0 row.
            debug_assert_eq!(br % n, dest);
            let dst = self.mapping.subtile_send_offset[t as usize][dest] + row_in_subtile * width;
            out[dst..dst + width].copy_from_slice(block.row(br));
        }
    }

    fn out_len(&self, _grid: &TileGrid) -> usize {
        self.mapping.total_send_elems
    }

    fn write_spans(&self, grid: &TileGrid, t: u32) -> Vec<std::ops::Range<usize>> {
        let rows = grid.rows_of(t);
        let cols = grid.cols_of(t);
        let width = (cols.end - cols.start) as usize;
        let n = self.mapping.n_ranks;
        rows.enumerate()
            .map(|(br, _)| {
                let dest = br % n;
                let row_in_subtile = br / n;
                let dst =
                    self.mapping.subtile_send_offset[t as usize][dest] + row_in_subtile * width;
                dst..dst + width
            })
            .collect()
    }
}

/// Scatters each tile's row segments into the per-destination token pools
/// (All-to-All reordering). One writer per rank, since routing differs.
#[derive(Debug, Clone)]
pub struct TokenPoolWriter {
    /// The token mapping (shared with the runtime).
    pub mapping: Rc<TokenMapping>,
    /// The rank whose pools this writer fills.
    pub rank: usize,
}

impl EpilogueWriter for TokenPoolWriter {
    fn write_tile(&self, grid: &TileGrid, t: u32, block: &Matrix, out: &mut [f32]) {
        let rows = grid.rows_of(t);
        let cols = grid.cols_of(t);
        let width = block.cols();
        let offsets = &self.mapping.token_offset[self.rank];
        for (br, r) in rows.enumerate() {
            let dst = offsets[r as usize] + cols.start as usize;
            out[dst..dst + width].copy_from_slice(block.row(br));
        }
    }

    fn out_len(&self, _grid: &TileGrid) -> usize {
        self.mapping.send_pool_elems
    }

    fn write_spans(&self, grid: &TileGrid, t: u32) -> Vec<std::ops::Range<usize>> {
        let rows = grid.rows_of(t);
        let cols = grid.cols_of(t);
        let width = (cols.end - cols.start) as usize;
        let offsets = &self.mapping.token_offset[self.rank];
        rows.map(|r| {
            let dst = offsets[r as usize] + cols.start as usize;
            dst..dst + width
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::WavePartition;
    use gpu_sim::swizzle::Swizzle;
    use gpu_sim::tile::TileShape;
    use gpu_sim::wave::WaveSchedule;
    use sim::DetRng;

    fn grid_and_schedule(m: u32, n: u32) -> (TileGrid, WaveSchedule) {
        let grid = TileGrid::new(m, n, TileShape::new(16, 16));
        let order = Swizzle::Strip { width: 2 }.issue_order(&grid);
        let schedule = WaveSchedule::new(&order, 3);
        (grid, schedule)
    }

    fn write_all(writer: &dyn EpilogueWriter, grid: &TileGrid, src: &Matrix) -> Vec<f32> {
        let mut out = vec![f32::NAN; writer.out_len(grid)];
        for t in 0..grid.num_tiles() {
            let rows = grid.rows_of(t);
            let cols = grid.cols_of(t);
            let block = src.submatrix(
                rows.start as usize,
                cols.start as usize,
                (rows.end - rows.start) as usize,
                (cols.end - cols.start) as usize,
            );
            writer.write_tile(grid, t, &block, &mut out);
        }
        out
    }

    #[test]
    fn packed_tile_writer_agrees_with_packed_index() {
        let (grid, schedule) = grid_and_schedule(48, 64);
        let partition = WavePartition::single(schedule.num_waves());
        let mapping = Rc::new(TileMapping::build(grid, &schedule, &partition));
        let mut rng = DetRng::new(1);
        let src = Matrix::random(48, 64, &mut rng);
        let out = write_all(
            &PackedTileWriter {
                mapping: mapping.clone(),
            },
            &grid,
            &src,
        );
        for r in 0..48u32 {
            for c in 0..64u32 {
                assert_eq!(
                    out[mapping.packed_index(r, c)],
                    src[(r as usize, c as usize)],
                    "({r},{c})"
                );
            }
        }
        assert!(
            out.iter().all(|x| !x.is_nan()),
            "packed buffer fully written"
        );
    }

    #[test]
    fn subtile_writer_agrees_with_send_index() {
        let (grid, schedule) = grid_and_schedule(64, 32);
        let partition = WavePartition::new(vec![1; schedule.num_waves() as usize]);
        let mapping = Rc::new(SubtileMapping::build(grid, &schedule, &partition, 4).unwrap());
        let mut rng = DetRng::new(2);
        let src = Matrix::random(64, 32, &mut rng);
        let out = write_all(
            &SubtilePackedWriter {
                mapping: mapping.clone(),
            },
            &grid,
            &src,
        );
        for r in 0..64u32 {
            for c in 0..32u32 {
                assert_eq!(
                    out[mapping.packed_send_index(r, c)],
                    src[(r as usize, c as usize)],
                    "({r},{c})"
                );
            }
        }
        assert!(out.iter().all(|x| !x.is_nan()));
    }

    #[test]
    fn write_spans_cover_exactly_the_written_elements() {
        // For every writer kind and every tile, the monitor-facing spans
        // must name exactly the elements write_tile touches.
        let (grid, schedule) = grid_and_schedule(64, 32);
        let tile_partition = WavePartition::single(schedule.num_waves());
        let sub_partition = WavePartition::new(vec![1; schedule.num_waves() as usize]);
        let mut rng = DetRng::new(4);
        let routing: Vec<Vec<usize>> = (0..2)
            .map(|_| (0..64).map(|_| rng.next_below(2) as usize).collect())
            .collect();
        let writers: Vec<Box<dyn EpilogueWriter>> = vec![
            Box::new(PackedTileWriter {
                mapping: Rc::new(TileMapping::build(grid, &schedule, &tile_partition)),
            }),
            Box::new(SubtilePackedWriter {
                mapping: Rc::new(
                    SubtileMapping::build(grid, &schedule, &sub_partition, 4).unwrap(),
                ),
            }),
            Box::new(TokenPoolWriter {
                mapping: Rc::new(
                    TokenMapping::build(grid, &schedule, &tile_partition, &routing).unwrap(),
                ),
                rank: 0,
            }),
        ];
        let src = Matrix::random(64, 32, &mut rng);
        for writer in &writers {
            for t in 0..grid.num_tiles() {
                let rows = grid.rows_of(t);
                let cols = grid.cols_of(t);
                let block = src.submatrix(
                    rows.start as usize,
                    cols.start as usize,
                    (rows.end - rows.start) as usize,
                    (cols.end - cols.start) as usize,
                );
                let mut out = vec![f32::NAN; writer.out_len(&grid)];
                writer.write_tile(&grid, t, &block, &mut out);
                let written: Vec<usize> = out
                    .iter()
                    .enumerate()
                    .filter(|(_, x)| !x.is_nan())
                    .map(|(i, _)| i)
                    .collect();
                let mut spanned: Vec<usize> =
                    writer.write_spans(&grid, t).into_iter().flatten().collect();
                spanned.sort_unstable();
                assert_eq!(written, spanned, "tile {t}");
            }
        }
    }

    #[test]
    fn token_writer_fills_each_row_slot() {
        let (grid, schedule) = grid_and_schedule(32, 48);
        let partition = WavePartition::single(schedule.num_waves());
        let mut rng = DetRng::new(3);
        let routing: Vec<Vec<usize>> = (0..2)
            .map(|_| (0..32).map(|_| rng.next_below(2) as usize).collect())
            .collect();
        let mapping = Rc::new(TokenMapping::build(grid, &schedule, &partition, &routing).unwrap());
        let src = Matrix::random(32, 48, &mut rng);
        let out = write_all(
            &TokenPoolWriter {
                mapping: mapping.clone(),
                rank: 1,
            },
            &grid,
            &src,
        );
        for row in 0..32usize {
            let base = mapping.token_offset[1][row];
            for c in 0..48usize {
                assert_eq!(out[base + c], src[(row, c)], "row {row} col {c}");
            }
        }
        assert!(out.iter().all(|x| !x.is_nan()));
    }
}
