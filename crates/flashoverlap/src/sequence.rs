//! Cross-batch pipelined overlap: executing a sequence of plans on one
//! replica's stream pair so batch `k + 1`'s GEMM waves are scheduled
//! while batch `k`'s tail collectives drain.
//!
//! A serving replica closes batches one after another; running them in
//! separate simulations (or with a full barrier between them) leaves the
//! GEMM-tail/collective-tail overlap window on the table. [`execute_sequence`]
//! enqueues every batch on the *same* per-rank compute/communication
//! stream pair: the compute stream is in order, so batch `k + 1`'s GEMM
//! starts right after batch `k`'s GEMM retires — while batch `k`'s tail
//! collectives still drain on the communication stream. Counting tables
//! are allocated once, sized for the widest batch, and ping-ponged
//! between two sets (the serving loop's double buffering); every reuse
//! enqueues the cross-batch happens-before edges
//! (wait-previous-comm → reset → ready → comm-wait) in the signal
//! vocabulary SimSan already understands, so the sanitizer verifies the
//! pipelined schedule exactly like a single-operator one.
//!
//! [`SequenceOptions::serial`] switches to the non-pipelined reference
//! schedule (a full barrier between batches), and
//! [`SequenceOptions::drop_cross_batch_edge`] deliberately skips one
//! batch's table rearm — the mutation self-test a correct sanitizer
//! must flag as use-before-signal.

use std::cell::RefCell;
use std::rc::Rc;

use gpu_sim::stream::{enqueue, RecordEvent, ResetCounter, WaitEvent};
use gpu_sim::{ClusterSim, GpuEventId, RuntimeEvent};
use sim::{Sim, SimDuration, SimTime};
use tensor::Matrix;

use crate::chain::{
    arm_cluster_faults, check_quiescent_chain, drive_chain, enqueue_segment_faults, ChainSegment,
    EventLog,
};
use crate::error::FlashOverlapError;
use crate::resilience::{FaultPlan, ResilientOutcome, WatchdogConfig};
use crate::runtime::{FunctionalInputs, Instrumentation, OverlapPlan, RunReport, StreamCtx};

/// Options for [`execute_sequence`].
#[derive(Debug, Default)]
pub struct SequenceOptions<'a> {
    serial: bool,
    instrument: Option<&'a Instrumentation>,
    trace: bool,
    functional: Option<&'a [FunctionalInputs]>,
    mutation_batch: Option<usize>,
    drop_cross_batch_edge: Option<usize>,
    resilient: Option<(&'a [FaultPlan], &'a WatchdogConfig)>,
}

impl<'a> SequenceOptions<'a> {
    /// Pipelined (default) options.
    pub fn new() -> Self {
        SequenceOptions::default()
    }

    /// Full barrier between batches: batch `k + 1`'s GEMM waits for
    /// batch `k`'s collectives to drain. The reference schedule —
    /// functionally bit-identical to the pipelined one, only slower.
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Attaches observation hooks. A seeded
    /// [`crate::runtime::SignalMutation`] applies to the batch selected
    /// by [`SequenceOptions::mutation_batch`] (default: the last batch,
    /// after counting-table reuse reached steady state).
    pub fn instrument(mut self, instr: &'a Instrumentation) -> Self {
        self.instrument = Some(instr);
        self
    }

    /// Records per-stream operation spans into
    /// [`SequenceOutcome::spans`].
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Functional mode: `inputs[i]` feeds plan `i`; per-batch outputs
    /// land in [`SequenceOutcome::outputs`].
    pub fn functional(mut self, inputs: &'a [FunctionalInputs]) -> Self {
        self.functional = Some(inputs);
        self
    }

    /// Selects the batch a seeded mutation applies to.
    pub fn mutation_batch(mut self, batch: usize) -> Self {
        self.mutation_batch = Some(batch);
        self
    }

    /// Deliberately skips batch `batch`'s counting-table rearm (the
    /// wait-previous-comm → reset → ready edges on table reuse). The
    /// table then still holds the saturated counts of the batch that
    /// used it two slots earlier, so this batch's waits are satisfied
    /// by *stale* signals and its collectives read tiles the GEMM has
    /// not yet produced: the cross-batch use-before-signal bug class a
    /// correct sanitizer must flag. Only meaningful for `batch >= 2`
    /// (the first reuse of a table set); otherwise a no-op.
    pub fn drop_cross_batch_edge(mut self, batch: usize) -> Self {
        self.drop_cross_batch_edge = Some(batch);
        self
    }

    /// Runs the whole chain under the chain watchdog with deterministic
    /// fault injection: `faults[i]` arms at batch `i`'s position in the
    /// stream order (the table-quarantine rule disarms whatever budget
    /// the previous same-parity batch left on the inherited table), and
    /// a wedge at batch `k` is broken by the escalation ladder without
    /// poisoning the double-buffered tables batch `k + 1` inherits. One
    /// [`ResilientOutcome`] per batch lands in
    /// [`SequenceOutcome::outcomes`]. Incompatible with probe/mutation
    /// instrumentation and [`SequenceOptions::drop_cross_batch_edge`].
    pub fn resilient(mut self, faults: &'a [FaultPlan], watchdog: &'a WatchdogConfig) -> Self {
        self.resilient = Some((faults, watchdog));
        self
    }
}

/// Results of [`execute_sequence`].
#[derive(Debug, Clone)]
pub struct SequenceOutcome {
    /// Launch of batch 0 to the last batch's completion.
    pub total: SimDuration,
    /// Per-batch reports. Times are absolute simulation times, monotone
    /// in batch order (batch `i`'s `latency` is its completion time).
    pub reports: Vec<RunReport>,
    /// Recorded per-stream spans when tracing was requested.
    pub spans: Vec<gpu_sim::OpSpan>,
    /// Per-batch per-rank logical outputs in functional mode.
    pub outputs: Option<Vec<Vec<Matrix>>>,
    /// Per-batch termination outcome. All `Clean` on non-resilient runs;
    /// under [`SequenceOptions::resilient`], batch `k` wedging ends it
    /// `Recovered`/`Degraded` while later batches report how they rode
    /// out the recovery.
    pub outcomes: Vec<ResilientOutcome>,
    /// Fault/recovery timeline of a resilient run (empty otherwise).
    pub events: Vec<RuntimeEvent>,
    /// Total faults armed across all batches of a resilient run.
    pub faults_armed: usize,
}

/// Executes `plans` back to back on one simulated cluster — batch `i`
/// is plan `i` — reusing two ping-ponged counting-table sets across
/// batches. All plans must target systems with the same rank count (a
/// serving replica executes its chain on one TP group).
///
/// # Errors
///
/// Returns [`FlashOverlapError::BadInputs`] on an empty sequence,
/// mismatched rank counts, or malformed functional inputs;
/// [`FlashOverlapError::Deadlock`] when an uninstrumented schedule
/// wedges; and [`FlashOverlapError::Simulation`] on engine failure.
pub fn execute_sequence(
    plans: &[&OverlapPlan],
    options: &SequenceOptions,
) -> Result<SequenceOutcome, FlashOverlapError> {
    let Some(first) = plans.first() else {
        return Err(FlashOverlapError::BadInputs {
            reason: "sequence needs at least one plan".into(),
        });
    };
    let n = first.system.n_gpus;
    for (i, plan) in plans.iter().enumerate() {
        if plan.system.n_gpus != n {
            return Err(FlashOverlapError::BadInputs {
                reason: format!(
                    "plan {i} targets {} ranks but the sequence runs on {n}",
                    plan.system.n_gpus
                ),
            });
        }
    }
    if let Some(inputs) = options.functional {
        if inputs.len() != plans.len() {
            return Err(FlashOverlapError::BadInputs {
                reason: format!("{} input sets for {} plans", inputs.len(), plans.len()),
            });
        }
        for (plan, inp) in plans.iter().zip(inputs) {
            plan.check_inputs_pub(inp)?;
        }
    }
    let default_instr = Instrumentation::default();
    let instr = options.instrument.unwrap_or(&default_instr);
    if let Some((faults, _)) = options.resilient {
        crate::chain::validate_chain_faults(plans, faults)?;
        if instr.probe.is_some() || instr.mutation.is_some() {
            return Err(FlashOverlapError::BadInputs {
                reason: "resilient sequences inject faults through FaultPlan, \
                         not probes or signal mutations"
                    .into(),
            });
        }
        if options.drop_cross_batch_edge.is_some() {
            return Err(FlashOverlapError::BadInputs {
                reason: "drop_cross_batch_edge is a sanitizer self-test, \
                         incompatible with resilient execution"
                    .into(),
            });
        }
    }

    let mut world = first.system.build_cluster(options.functional.is_some());
    if options.trace {
        world.enable_op_spans();
    }
    if let Some(monitor) = &instr.monitor {
        world.set_monitor(Rc::clone(monitor));
    }
    let mut sim: ClusterSim = Sim::new();
    if let Some(probe) = &instr.probe {
        sim.set_probe(Rc::clone(probe));
    }
    // Cluster-level faults (degraded links, stalls, stragglers) exist
    // before the chain starts, whichever batch's plan armed them.
    let log: EventLog = Rc::new(RefCell::new(Vec::new()));
    let faults_armed = match options.resilient {
        Some((faults, _)) => arm_cluster_faults(&mut world, &sim, faults, &log),
        None => 0,
    };
    let streams = StreamCtx::create(&mut world, n);
    // Tables sized for the widest batch: a reset clears every slot, so a
    // narrower batch simply leaves the tail slots untouched.
    let max_groups = plans
        .iter()
        .map(|p| p.group_tile_counts().len())
        .max()
        .unwrap_or(0);
    let table_sets: [Vec<usize>; 2] = std::array::from_fn(|_| {
        (0..n)
            .map(|d| world.devices[d].create_counter(max_groups))
            .collect()
    });
    // Per set: the comm-done events of the batch that last used it.
    let mut last_use: [Option<Vec<GpuEventId>>; 2] = [None, None];
    // The previous batch's comm-done events (the serial-mode barrier).
    let mut prev_comm: Option<Vec<GpuEventId>> = None;
    let mutation_batch = options.mutation_batch.unwrap_or(plans.len() - 1);

    let mut segments: Vec<ChainSegment> = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let parity = i % 2;
        let mut ready_events: Option<Vec<GpuEventId>> = None;
        if let Some(events) = last_use[parity].take() {
            // Reuse: reset each rank's table on the compute stream,
            // ordered after the previous user's comm stream drained its
            // waits, and hold the comm stream until the reset lands.
            // Without this rearm the table still holds the previous
            // user's saturated counts, so this batch's wait is satisfied
            // the moment the comm stream reaches it and the collective
            // reads tiles the GEMM has not signaled — which is exactly
            // what `drop_cross_batch_edge` injects for the sanitizer
            // self-test.
            if options.drop_cross_batch_edge != Some(i) {
                let mut readies = Vec::with_capacity(n);
                for d in 0..n {
                    enqueue(
                        &mut world,
                        &mut sim,
                        d,
                        streams.compute[d],
                        Box::new(WaitEvent(events[d])),
                    );
                    enqueue(
                        &mut world,
                        &mut sim,
                        d,
                        streams.compute[d],
                        Box::new(ResetCounter {
                            table: table_sets[parity][d],
                        }),
                    );
                    let ready = world.devices[d].create_event();
                    readies.push(ready);
                    enqueue(
                        &mut world,
                        &mut sim,
                        d,
                        streams.compute[d],
                        Box::new(RecordEvent(ready)),
                    );
                    enqueue(
                        &mut world,
                        &mut sim,
                        d,
                        streams.comm[d],
                        Box::new(WaitEvent(ready)),
                    );
                }
                ready_events = Some(readies);
            }
        }
        if options.serial {
            if let Some(events) = &prev_comm {
                // Full barrier: no GEMM wave of batch `i` may issue
                // until batch `i - 1`'s collectives drained.
                for (d, &ev) in events.iter().enumerate() {
                    enqueue(
                        &mut world,
                        &mut sim,
                        d,
                        streams.compute[d],
                        Box::new(WaitEvent(ev)),
                    );
                }
            }
        }
        if let Some((faults, _)) = options.resilient {
            // Between the rearm (reset) and the program: the arming
            // callback quarantines leftover budget on the inherited
            // table, then arms this batch's own faults.
            enqueue_segment_faults(
                &mut world,
                &mut sim,
                &streams,
                i,
                &faults[i],
                &table_sets[parity],
                &log,
            );
        }
        let mutation = if i == mutation_batch {
            instr.mutation
        } else {
            None
        };
        let handles = plan.enqueue_program_on(
            &mut world,
            &mut sim,
            options.functional.map(|f| &f[i]),
            None,
            &streams,
            None,
            mutation,
            Some(&table_sets[parity]),
        );
        let events: Vec<GpuEventId> = (0..n)
            .map(|d| {
                let ev = world.devices[d].create_event();
                enqueue(
                    &mut world,
                    &mut sim,
                    d,
                    streams.comm[d],
                    Box::new(RecordEvent(ev)),
                );
                ev
            })
            .collect();
        last_use[parity] = Some(events.clone());
        prev_comm = Some(events.clone());
        segments.push(ChainSegment::new(
            plan,
            handles,
            parity,
            ready_events,
            events,
        ));
    }

    let (end, outcomes) = if let Some((_, watchdog)) = options.resilient {
        let run = drive_chain(
            &mut world, &mut sim, plans, &segments, &streams, watchdog, &log,
        )?;
        (run.end, run.outcomes)
    } else {
        let end = sim.run(&mut world)?;
        let instrumented =
            instr.monitor.is_some() || instr.probe.is_some() || instr.mutation.is_some();
        if !instrumented && options.drop_cross_batch_edge.is_none() {
            check_quiescent_chain(&world, &segments)?;
        }
        (end, vec![ResilientOutcome::Clean; plans.len()])
    };
    let spans = if options.trace {
        world.op_spans.take().unwrap_or_default()
    } else {
        Vec::new()
    };
    let outputs = options.functional.map(|_| {
        plans
            .iter()
            .zip(&segments)
            .map(|(plan, seg)| plan.extract_outputs(&world, &seg.handles))
            .collect()
    });
    Ok(SequenceOutcome {
        total: end - SimTime::ZERO,
        reports: segments
            .iter()
            .map(|s| s.handles.probes_snapshot().into_report())
            .collect(),
        spans,
        outputs,
        outcomes,
        events: Rc::try_unwrap(log).map_or_else(|rc| rc.borrow().clone(), RefCell::into_inner),
        faults_armed,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::partition::WavePartition;
    use crate::runtime::CommPattern;
    use crate::system::SystemSpec;
    use gpu_sim::gemm::{GemmConfig, GemmDims};
    use tensor::allclose;

    fn small_system(n: usize) -> SystemSpec {
        let mut spec = SystemSpec::rtx4090(n);
        spec.arch.sm_count = 8;
        spec.comm_sms = 2;
        spec
    }

    fn plan_for(dims: GemmDims, system: &SystemSpec) -> OverlapPlan {
        let config = GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system.clone(),
            WavePartition::per_wave(waves),
        )
        .unwrap()
    }

    fn reduced_reference(inputs: &FunctionalInputs) -> Matrix {
        let mut acc = tensor::gemm(&inputs.a[0], &inputs.b[0]);
        for r in 1..inputs.a.len() {
            acc = acc.add(&tensor::gemm(&inputs.a[r], &inputs.b[r]));
        }
        acc
    }

    #[test]
    fn pipelined_beats_serial_and_stays_bit_exact() {
        let system = small_system(2);
        let dims = [
            GemmDims::new(256, 256, 64),
            GemmDims::new(384, 256, 64),
            GemmDims::new(256, 256, 64),
            GemmDims::new(512, 256, 64),
        ];
        let plans: Vec<OverlapPlan> = dims.iter().map(|&d| plan_for(d, &system)).collect();
        let refs: Vec<&OverlapPlan> = plans.iter().collect();
        let inputs: Vec<FunctionalInputs> = dims
            .iter()
            .enumerate()
            .map(|(i, &d)| FunctionalInputs::random(d, 2, 100 + i as u64))
            .collect();
        let pipelined =
            execute_sequence(&refs, &SequenceOptions::new().functional(&inputs)).unwrap();
        let serial =
            execute_sequence(&refs, &SequenceOptions::new().serial().functional(&inputs)).unwrap();
        assert!(
            pipelined.total < serial.total,
            "pipelined {} not faster than serial {}",
            pipelined.total,
            serial.total
        );
        let pipe_out = pipelined.outputs.unwrap();
        let serial_out = serial.outputs.unwrap();
        for (b, inp) in inputs.iter().enumerate() {
            let expected = reduced_reference(inp);
            for d in 0..2 {
                assert_eq!(
                    pipe_out[b][d].as_slice(),
                    serial_out[b][d].as_slice(),
                    "batch {b} rank {d}: pipelined and serial must be bit-exact"
                );
                assert!(allclose(&pipe_out[b][d], &expected, 1e-2), "batch {b}");
            }
        }
        assert_eq!(pipelined.reports.len(), 4);
        for pair in pipelined.reports.windows(2) {
            assert!(
                pair[0].latency <= pair[1].latency,
                "batches complete in order"
            );
        }
    }

    #[test]
    fn resilient_fault_free_chain_is_clean_and_bit_exact() {
        use crate::resilience::{FaultPlan, WatchdogConfig};
        let system = small_system(2);
        let dims = [
            GemmDims::new(256, 256, 64),
            GemmDims::new(384, 256, 64),
            GemmDims::new(256, 256, 64),
        ];
        let plans: Vec<OverlapPlan> = dims.iter().map(|&d| plan_for(d, &system)).collect();
        let refs: Vec<&OverlapPlan> = plans.iter().collect();
        let inputs: Vec<FunctionalInputs> = dims
            .iter()
            .enumerate()
            .map(|(i, &d)| FunctionalInputs::random(d, 2, 300 + i as u64))
            .collect();
        let faults = vec![FaultPlan::none(); plans.len()];
        let watchdog = WatchdogConfig::default();
        let resilient = execute_sequence(
            &refs,
            &SequenceOptions::new()
                .functional(&inputs)
                .resilient(&faults, &watchdog),
        )
        .unwrap();
        let plain = execute_sequence(&refs, &SequenceOptions::new().functional(&inputs)).unwrap();
        assert_eq!(resilient.outcomes.len(), 3);
        assert!(
            resilient.outcomes.iter().all(|o| o.label() == "clean"),
            "{:?}",
            resilient.outcomes
        );
        assert_eq!(resilient.faults_armed, 0);
        assert_eq!(
            resilient.total, plain.total,
            "fault-free watchdog is timing-neutral"
        );
        let res_out = resilient.outputs.unwrap();
        let plain_out = plain.outputs.unwrap();
        for b in 0..3 {
            for d in 0..2 {
                assert_eq!(res_out[b][d].as_slice(), plain_out[b][d].as_slice());
            }
        }
    }

    #[test]
    fn wedged_batch_recovers_without_poisoning_inheritors() {
        use crate::resilience::{Fault, FaultPlan, ResilientOutcome, WatchdogConfig};
        let system = small_system(2);
        let dims = [
            GemmDims::new(256, 256, 64),
            GemmDims::new(512, 256, 64),
            GemmDims::new(256, 256, 64),
            GemmDims::new(384, 256, 64),
        ];
        let plans: Vec<OverlapPlan> = dims.iter().map(|&d| plan_for(d, &system)).collect();
        let refs: Vec<&OverlapPlan> = plans.iter().collect();
        let inputs: Vec<FunctionalInputs> = dims
            .iter()
            .enumerate()
            .map(|(i, &d)| FunctionalInputs::random(d, 2, 400 + i as u64))
            .collect();
        // Drop more increments than batch 1's last group can spare: its
        // wait starves and the watchdog must break the wedge. Batch 1's
        // dims partition into multiple groups and only the last is
        // starved, so earlier groups complete and the ladder takes the
        // tail rung (a single-group batch could only go bulk/degraded) —
        // batch 1 sits mid-chain, so batch 3 inherits its parity-1 table.
        let last_group = plans[1].group_tile_counts().len() - 1;
        assert!(last_group >= 1, "test needs a multi-group wedged batch");
        let mut faults = vec![FaultPlan::none(); plans.len()];
        faults[1] = FaultPlan::single(Fault::DroppedIncrement {
            rank: 0,
            group: last_group,
            count: 64,
        });
        let watchdog = WatchdogConfig::default();
        let outcome = execute_sequence(
            &refs,
            &SequenceOptions::new()
                .functional(&inputs)
                .resilient(&faults, &watchdog),
        )
        .unwrap();
        assert_eq!(outcome.faults_armed, 1);
        assert!(
            matches!(outcome.outcomes[1], ResilientOutcome::Recovered { .. }),
            "wedged batch must recover: {:?}",
            outcome.outcomes
        );
        for (b, o) in outcome.outcomes.iter().enumerate() {
            assert_ne!(o.label(), "degraded", "batch {b}: {o:?}");
        }
        // The hard invariant: recovery must not poison downstream
        // parity — every batch's outputs match the fault-free run
        // tile for tile.
        let fault_free =
            execute_sequence(&refs, &SequenceOptions::new().functional(&inputs)).unwrap();
        let wedged_out = outcome.outputs.unwrap();
        let clean_out = fault_free.outputs.unwrap();
        for b in 0..4 {
            for d in 0..2 {
                assert_eq!(
                    wedged_out[b][d].as_slice(),
                    clean_out[b][d].as_slice(),
                    "batch {b} rank {d} diverged after recovery"
                );
            }
        }
        // The recovery timeline names the wedge and the re-issued work.
        assert!(outcome
            .events
            .iter()
            .any(|e| e.detail.contains("segment 1 wedge detected")));
        assert!(outcome
            .events
            .iter()
            .any(|e| e.detail.contains("re-issued as tail collective")));
    }

    #[test]
    fn resilient_rejects_edge_drop_and_mismatched_fault_plans() {
        use crate::resilience::{FaultPlan, WatchdogConfig};
        let system = small_system(2);
        let plan = plan_for(GemmDims::new(256, 256, 64), &system);
        let watchdog = WatchdogConfig::default();
        let faults = vec![FaultPlan::none()];
        assert!(matches!(
            execute_sequence(
                &[&plan],
                &SequenceOptions::new()
                    .resilient(&faults, &watchdog)
                    .drop_cross_batch_edge(2)
            ),
            Err(FlashOverlapError::BadInputs { .. })
        ));
        let two = vec![FaultPlan::none(); 2];
        assert!(matches!(
            execute_sequence(&[&plan], &SequenceOptions::new().resilient(&two, &watchdog)),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }

    #[test]
    fn empty_sequence_is_rejected() {
        assert!(matches!(
            execute_sequence(&[], &SequenceOptions::new()),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }

    #[test]
    fn mismatched_input_count_is_rejected() {
        let system = small_system(2);
        let plan = plan_for(GemmDims::new(256, 256, 64), &system);
        let inputs = vec![FunctionalInputs::random(GemmDims::new(256, 256, 64), 2, 1); 2];
        assert!(matches!(
            execute_sequence(&[&plan], &SequenceOptions::new().functional(&inputs)),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }
}
