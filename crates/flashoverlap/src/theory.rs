//! Theoretical perfect-overlap bound and the non-overlap reference
//! (§6.3).
//!
//! Assuming perfect overlap, the total latency is bounded below by
//!
//! - `T_gemm + T_comm(last wave)` when computation dominates (the final
//!   wave's data can only be communicated after the GEMM ends), or
//! - `T_gemm(first wave) + T_comm(total)` when communication dominates
//!   (communication cannot start before any data exists and then runs
//!   back-to-back).
//!
//! Both use the *uncontended* GEMM duration and one unfragmented
//! communication call — ignoring SM contention, per-call overheads of
//! segmentation, signaling latency, and rendezvous skew, which is exactly
//! why measured FlashOverlap reaches only 69-98% of this bound.

use collectives::{collective_duration_with, Primitive, BYTES_PER_ELEM};
use gpu_sim::gemm::{gemm_estimate, GemmConfig, GemmDims};
use sim::SimDuration;

use crate::system::SystemSpec;

/// The non-overlapped reference latency: full GEMM (all SMs) followed by
/// one collective over the whole output.
pub fn nonoverlap_latency(
    dims: GemmDims,
    primitive: Primitive,
    system: &SystemSpec,
) -> SimDuration {
    let config = GemmConfig::choose(dims, &system.arch);
    let (_, gemm) = gemm_estimate(dims, &config, system.arch.sm_count, &system.arch);
    let comm = collective_duration_with(
        primitive,
        dims.out_elems() * BYTES_PER_ELEM,
        system.n_gpus,
        &system.fabric,
        system.algorithm,
    );
    gemm + comm
}

/// The perfect-overlap lower bound on the operator latency.
pub fn theoretical_latency(
    dims: GemmDims,
    primitive: Primitive,
    system: &SystemSpec,
) -> SimDuration {
    let config = GemmConfig::choose(dims, &system.arch);
    let grid = config.grid(dims);
    let (waves, gemm) = gemm_estimate(dims, &config, system.arch.sm_count, &system.arch);
    let total_bytes = dims.out_elems() * BYTES_PER_ELEM;
    let comm_total = collective_duration_with(
        primitive,
        total_bytes,
        system.n_gpus,
        &system.fabric,
        system.algorithm,
    );
    if gemm >= comm_total {
        // Compute-bound: only the last wave's communication peeks out.
        let full_waves_tiles = (waves - 1) * system.arch.sm_count;
        let last_wave_tiles = grid.num_tiles().saturating_sub(full_waves_tiles).max(1);
        let last_wave_bytes = last_wave_tiles as u64 * config.tile.elems() * BYTES_PER_ELEM;
        let comm_tail = collective_duration_with(
            primitive,
            last_wave_bytes.min(total_bytes),
            system.n_gpus,
            &system.fabric,
            system.algorithm,
        );
        gemm + comm_tail
    } else {
        // Communication-bound: only the first wave's computation peeks
        // out.
        let first_wave = SimDuration::from_nanos(gemm.as_nanos() / waves as u64);
        first_wave + comm_total
    }
}

/// The theoretical best-case speedup over the non-overlap reference.
pub fn theoretical_speedup(dims: GemmDims, primitive: Primitive, system: &SystemSpec) -> f64 {
    let base = nonoverlap_latency(dims, primitive, system).as_nanos() as f64;
    let theory = theoretical_latency(dims, primitive, system).as_nanos() as f64;
    base / theory
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theory_is_never_slower_than_nonoverlap() {
        for (m, n, k) in [
            (2048u32, 4096u32, 1024u32),
            (8192, 8192, 8192),
            (1024, 1024, 16384),
            (16384, 16384, 4096),
        ] {
            let dims = GemmDims::new(m, n, k);
            for system in [SystemSpec::rtx4090(4), SystemSpec::a800(2)] {
                let t = theoretical_latency(dims, Primitive::AllReduce, &system);
                let b = nonoverlap_latency(dims, Primitive::AllReduce, &system);
                assert!(t <= b, "theory {t} > baseline {b} for {m}x{n}x{k}");
            }
        }
    }

    #[test]
    fn theory_bounded_by_max_of_parts() {
        // Perfect overlap cannot beat max(gemm, comm).
        let dims = GemmDims::new(4096, 8192, 4096);
        let system = SystemSpec::rtx4090(4);
        let config = GemmConfig::choose(dims, &system.arch);
        let (_, gemm) = gemm_estimate(dims, &config, system.arch.sm_count, &system.arch);
        let comm = collective_duration_with(
            Primitive::AllReduce,
            dims.out_elems() * BYTES_PER_ELEM,
            4,
            &system.fabric,
            system.algorithm,
        );
        let t = theoretical_latency(dims, Primitive::AllReduce, &system);
        assert!(t >= gemm.max(comm));
    }

    #[test]
    fn speedup_peaks_when_parts_are_balanced() {
        // Sweep K: the best theoretical speedup appears where computation
        // and communication latencies are close (Sec. 6.3).
        let system = SystemSpec::rtx4090(4);
        let speedups: Vec<f64> = [256u32, 1024, 4096, 16384]
            .iter()
            .map(|&k| {
                theoretical_speedup(GemmDims::new(4096, 8192, k), Primitive::AllReduce, &system)
            })
            .collect();
        let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
        // The extremes (tiny K: comm dominates; huge K: comp dominates)
        // must not be the peak.
        assert!(speedups[0] < max || speedups[3] < max);
        assert!(max < 2.0, "perfect overlap of two phases is at most 2x");
        assert!(max > 1.3, "balanced shapes should show clear headroom");
    }

    #[test]
    fn compute_bound_shapes_add_only_a_tail() {
        let dims = GemmDims::new(1024, 1024, 16384);
        let system = SystemSpec::a800(2);
        let config = GemmConfig::choose(dims, &system.arch);
        let (_, gemm) = gemm_estimate(dims, &config, system.arch.sm_count, &system.arch);
        let t = theoretical_latency(dims, Primitive::AllReduce, &system);
        // Tail communication is small relative to the GEMM itself.
        assert!(t < gemm.mul_f64(1.25));
    }
}
