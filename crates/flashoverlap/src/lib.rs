//! FlashOverlap: a lightweight design for overlapping communication and
//! computation (paper reproduction core).
//!
//! The three properties the paper identifies (Table 1) map onto this crate
//! as follows:
//!
//! - **Tile-wise overlapping** — tiles are bundled into waves and waves
//!   into tunable groups ([`partition`]); a counting table signals each
//!   group's completion ([`gpu_sim::counter`], driven from the GEMM
//!   epilogue) so its communication starts while later waves still
//!   compute.
//! - **Interference-free computation** — the GEMM main loop is untouched:
//!   the runtime ([`runtime`]) only installs an epilogue writer that packs
//!   tiles to contiguous addresses ([`mapping`], [`writers`]) and bumps the
//!   counting table.
//! - **Communication agnosticism** — communication is plain collective
//!   calls on a second stream ([`collectives`]); any primitive with a
//!   region API works.
//!
//! Tuning: the wave-partition design space (§3.4) is searched with a
//! latency predictor built from offline profiles (§4, Alg. 1) in
//! [`predictor`] and [`tuner`]; [`theory`] computes the perfect-overlap
//! upper bound of §6.3.
//!
//! Verification: [`verify`] lowers plans and chained executions into
//! [`planverify`] schedule models, proving threshold feasibility,
//! deadlock freedom, and tile-granular race freedom from plan data
//! alone — before a single simulated cycle runs.

#![warn(missing_docs)]

mod chain;
pub mod error;
pub mod mapping;
pub mod notation;
pub mod partition;
pub mod pipeline;
pub mod predictor;
pub mod resilience;
pub mod runtime;
pub mod sequence;
pub mod system;
pub mod theory;
pub mod tuner;
pub mod verify;
pub mod writers;

pub use error::{ChainPosition, FlashOverlapError};
pub use partition::WavePartition;
pub use pipeline::{LayerSpec, Pipeline, PipelineExecOptions, PipelineExecOutcome, PipelineReport};
pub use predictor::{LatencyPredictor, OfflineProfile};
pub use resilience::{
    run_chaos, CampaignResult, ChaosConfig, ChaosReport, Fault, FaultPlan, ResilientOutcome,
    ResilientReport, WatchdogConfig,
};
pub use runtime::{
    CommPattern, ExecOptions, ExecOutcome, FunctionalInputs, FunctionalReport, Instrumentation,
    OverlapPlan, RunReport, SignalMutation,
};
pub use sequence::{execute_sequence, SequenceOptions, SequenceOutcome};
pub use system::SystemSpec;
pub use theory::{nonoverlap_latency, theoretical_latency, theoretical_speedup};
pub use tuner::{
    exhaustive_search, measure_partition, predictive_search, predictive_search_with, TuneOutcome,
};
pub use verify::{
    model_of_chain, model_of_plan, reject_if_invalid, runtime_seam, verify_sequence, RuntimeSeam,
};
