//! Token-level reordering for All-to-All (§3.3.4).
//!
//! In expert parallelism each output row (token) has a fixed destination
//! GPU, so tiles cannot be reordered freely. Instead, each rank's packed
//! send buffer is organized as per-destination *memory pools*, segmented
//! by group: a token's full row is parked in pool `(group, dest)` where
//! `group` is the wave group in which the token's row band (all tiles
//! covering that row) finishes. When a group signals, one All-to-All(v)
//! moves every pool segment of that group to its destination.

use collectives::A2aPlan;
use gpu_sim::tile::TileGrid;
use gpu_sim::wave::WaveSchedule;

use crate::error::FlashOverlapError;
use crate::mapping::GroupLayout;
use crate::partition::WavePartition;

/// The token-level mapping for an `n`-rank All-to-All after a GEMM.
#[derive(Debug, Clone)]
pub struct TokenMapping {
    /// Shared wave-group structure (drives the counting table exactly as
    /// for the other primitives).
    pub layout: GroupLayout,
    /// Rank count.
    pub n_ranks: usize,
    /// Group in which each row's band completes.
    pub group_of_row: Vec<u32>,
    /// `[rank][row]` element offset of the row's `N`-wide slot in that
    /// rank's packed send pool.
    pub token_offset: Vec<Vec<usize>>,
    /// Send pool size in elements (`== M * N`, every token exactly once).
    pub send_pool_elems: usize,
    /// One All-to-All(v) plan per group.
    pub group_plans: Vec<A2aPlan>,
    /// Received elements per rank.
    pub recv_elems: Vec<usize>,
    /// `[rank][logical_row] -> packed received row index`; logical order
    /// is (source rank ascending, original row ascending) — the order the
    /// post-communication remap restores.
    pub recv_row_gather: Vec<Vec<u32>>,
    /// `[rank][logical_row] -> (source rank, original row)` for
    /// verification.
    pub recv_expected: Vec<Vec<(usize, u32)>>,
    grid: TileGrid,
}

impl TokenMapping {
    /// Builds the mapping from per-rank token routing tables
    /// (`routing[rank][row] = destination rank`).
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] if the routing tables do
    /// not match the rank count / row count or name an invalid
    /// destination.
    pub fn build(
        grid: TileGrid,
        schedule: &WaveSchedule,
        partition: &WavePartition,
        routing: &[Vec<usize>],
    ) -> Result<Self, FlashOverlapError> {
        let n_ranks = routing.len();
        if n_ranks < 2 {
            return Err(FlashOverlapError::BadInputs {
                reason: "All-to-All needs at least 2 ranks".into(),
            });
        }
        let m = grid.m() as usize;
        let n_cols = grid.n() as usize;
        for (r, table) in routing.iter().enumerate() {
            if table.len() != m {
                return Err(FlashOverlapError::BadInputs {
                    reason: format!(
                        "routing table of rank {r} has {} entries, expected {m}",
                        table.len()
                    ),
                });
            }
            if let Some(&bad) = table.iter().find(|&&d| d >= n_ranks) {
                return Err(FlashOverlapError::BadInputs {
                    reason: format!("rank {r} routes to nonexistent rank {bad}"),
                });
            }
        }

        let layout = GroupLayout::new(schedule, partition);
        let num_groups = layout.num_groups();

        // A row's band completes when the slowest tile covering it
        // completes; waves execute in order, so that is the max wave over
        // the band's tiles.
        let tile_m = grid.tile().m;
        let group_of_row: Vec<u32> = (0..grid.m())
            .map(|r| {
                let band = r / tile_m;
                let band_wave = (0..grid.tiles_n())
                    .map(|col| schedule.wave_of(grid.tile_at(band, col)))
                    .max()
                    .expect("grid has at least one column");
                partition.group_of_wave(band_wave) as u32
            })
            .collect();

        // Pools: pools[src][g][d] = rows ascending.
        let mut pools: Vec<Vec<Vec<Vec<u32>>>> =
            vec![vec![vec![Vec::new(); n_ranks]; num_groups]; n_ranks];
        for (src, table) in routing.iter().enumerate() {
            for (row, &dest) in table.iter().enumerate() {
                // Index proofs: every table has exactly m entries
                // (validated above) and group_of_row has one entry per
                // row; src enumerates routing (< n_ranks), g comes from
                // group_of_wave (< num_groups), and dest was validated
                // < n_ranks above.
                let g = *group_of_row
                    .get(row)
                    .expect("tables have one entry per row") as usize;
                pools
                    .get_mut(src)
                    .expect("src enumerates the n_ranks tables")
                    .get_mut(g)
                    .expect("group ids are < num_groups")
                    .get_mut(dest)
                    .expect("destinations validated < n_ranks")
                    .push(row as u32);
            }
        }

        // Send pool layout per rank: (group asc, dest asc, rows asc), one
        // N-wide slot per token.
        let mut token_offset = vec![vec![0usize; m]; n_ranks];
        let mut send_off = vec![vec![vec![0usize; n_ranks]; n_ranks]; num_groups];
        for src in 0..n_ranks {
            let mut acc = 0usize;
            for g in 0..num_groups {
                for dest in 0..n_ranks {
                    // Index proofs: g / src / dest range over exactly the
                    // dimensions send_off and pools were allocated with,
                    // and pool rows were pushed from 0..m above.
                    *send_off
                        .get_mut(g)
                        .expect("g ranges over num_groups")
                        .get_mut(src)
                        .expect("src ranges over n_ranks")
                        .get_mut(dest)
                        .expect("dest ranges over n_ranks") = acc;
                    let pool = pools
                        .get(src)
                        .expect("src ranges over n_ranks")
                        .get(g)
                        .expect("g ranges over num_groups")
                        .get(dest)
                        .expect("dest ranges over n_ranks");
                    for &row in pool {
                        *token_offset
                            .get_mut(src)
                            .expect("src ranges over n_ranks")
                            .get_mut(row as usize)
                            .expect("pool rows are < m") = acc;
                        acc += n_cols;
                    }
                }
            }
            debug_assert_eq!(acc, m * n_cols, "every token packed exactly once");
        }

        // Receive layout per rank: (group asc, src asc, rows in segment
        // order); build plans, gathers, and expectations together.
        let mut recv_elems = vec![0usize; n_ranks];
        let mut recv_off = vec![vec![vec![0usize; n_ranks]; n_ranks]; num_groups];
        let mut received: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n_ranks];
        for dest in 0..n_ranks {
            let mut acc = 0usize;
            for g in 0..num_groups {
                for src in 0..n_ranks {
                    // Index proofs: identical allocation dimensions as the
                    // send-side loop above.
                    *recv_off
                        .get_mut(g)
                        .expect("g ranges over num_groups")
                        .get_mut(dest)
                        .expect("dest ranges over n_ranks")
                        .get_mut(src)
                        .expect("src ranges over n_ranks") = acc;
                    let pool = pools
                        .get(src)
                        .expect("src ranges over n_ranks")
                        .get(g)
                        .expect("g ranges over num_groups")
                        .get(dest)
                        .expect("dest ranges over n_ranks");
                    for &row in pool {
                        received
                            .get_mut(dest)
                            .expect("dest ranges over n_ranks")
                            .push((src, row));
                        acc += n_cols;
                    }
                }
            }
            *recv_elems.get_mut(dest).expect("dest ranges over n_ranks") = acc;
        }

        let group_plans: Vec<A2aPlan> = (0..num_groups)
            .map(|g| {
                let len: Vec<Vec<usize>> = (0..n_ranks)
                    .map(|src| {
                        (0..n_ranks)
                            .map(|dest| {
                                // Index proof: same allocation dimensions
                                // as every pools access above.
                                pools
                                    .get(src)
                                    .expect("src ranges over n_ranks")
                                    .get(g)
                                    .expect("g ranges over num_groups")
                                    .get(dest)
                                    .expect("dest ranges over n_ranks")
                                    .len()
                                    * n_cols
                            })
                            .collect()
                    })
                    .collect();
                A2aPlan {
                    send_off: send_off.get(g).expect("g ranges over num_groups").clone(),
                    len,
                    recv_off: recv_off.get(g).expect("g ranges over num_groups").clone(),
                }
            })
            .collect();

        // Logical order on the receive side: (src asc, original row asc).
        let mut recv_row_gather = Vec::with_capacity(n_ranks);
        let mut recv_expected = Vec::with_capacity(n_ranks);
        for received_rows in &received {
            let mut indexed: Vec<(usize, (usize, u32))> =
                received_rows.iter().copied().enumerate().collect();
            indexed.sort_by_key(|&(_, key)| key);
            recv_row_gather.push(
                indexed
                    .iter()
                    .map(|&(packed_row, _)| packed_row as u32)
                    .collect(),
            );
            recv_expected.push(indexed.into_iter().map(|(_, key)| key).collect());
        }

        Ok(TokenMapping {
            layout,
            n_ranks,
            group_of_row,
            token_offset,
            send_pool_elems: m * n_cols,
            group_plans,
            recv_elems,
            recv_row_gather,
            recv_expected,
            grid,
        })
    }

    /// The tile grid the mapping is built for.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Bytes each rank sends in group `g` (for cost inspection).
    ///
    /// # Panics
    ///
    /// Panics if `g` or `src` is out of range.
    pub fn group_send_elems(&self, g: usize, src: usize) -> usize {
        self.group_plans
            .get(g)
            .expect("group out of range")
            .len
            .get(src)
            .expect("rank out of range")
            .iter()
            .sum()
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use gpu_sim::swizzle::Swizzle;
    use gpu_sim::tile::TileShape;
    use sim::DetRng;

    fn build(
        m: u32,
        n_cols: u32,
        ranks: usize,
        conc: u32,
        sizes: Vec<u32>,
        seed: u64,
    ) -> TokenMapping {
        let grid = TileGrid::new(m, n_cols, TileShape::new(16, 16));
        let order = Swizzle::Strip { width: 2 }.issue_order(&grid);
        let schedule = WaveSchedule::new(&order, conc);
        let partition = if sizes.is_empty() {
            WavePartition::single(schedule.num_waves())
        } else {
            WavePartition::new(sizes)
        };
        let mut rng = DetRng::new(seed);
        let routing: Vec<Vec<usize>> = (0..ranks)
            .map(|_| {
                (0..m)
                    .map(|_| rng.next_below(ranks as u64) as usize)
                    .collect()
            })
            .collect();
        TokenMapping::build(grid, &schedule, &partition, &routing).unwrap()
    }

    #[test]
    fn every_token_packed_exactly_once() {
        let tm = build(48, 32, 4, 3, vec![], 1);
        for src in 0..4 {
            let mut offsets: Vec<usize> = tm.token_offset[src].clone();
            offsets.sort_unstable();
            let expected: Vec<usize> = (0..48).map(|i| i * 32).collect();
            assert_eq!(offsets, expected, "rank {src}");
        }
        assert_eq!(tm.send_pool_elems, 48 * 32);
    }

    #[test]
    fn plans_conserve_tokens() {
        let tm = build(64, 16, 2, 1, vec![2, 2], 7);
        // Total sent over all groups == M rows per rank.
        for src in 0..2 {
            let total: usize = (0..tm.group_plans.len())
                .map(|g| tm.group_send_elems(g, src))
                .sum();
            assert_eq!(total, 64 * 16);
        }
        // Received totals match recv_elems.
        for dest in 0..2 {
            let total: usize = tm
                .group_plans
                .iter()
                .map(|p| (0..2).map(|s| p.len[s][dest]).sum::<usize>())
                .sum();
            assert_eq!(total, tm.recv_elems[dest]);
        }
    }

    #[test]
    fn recv_gather_is_sorted_by_source_then_row() {
        let tm = build(48, 16, 3, 2, vec![1, 1], 3);
        for dest in 0..3 {
            let exp = &tm.recv_expected[dest];
            for pair in exp.windows(2) {
                assert!(pair[0] < pair[1], "logical order must be sorted");
            }
            assert_eq!(tm.recv_row_gather[dest].len(), exp.len());
        }
    }

    #[test]
    fn group_of_row_uses_band_max_wave() {
        let grid = TileGrid::new(32, 64, TileShape::new(16, 16));
        let order = Swizzle::Strip { width: 2 }.issue_order(&grid);
        // 2 tiles per wave: band 0's four tiles are in waves 0, 1 (cols
        // 0-1 in wave 0, cols 2-3 via later strip).
        let schedule = WaveSchedule::new(&order, 2);
        let partition = WavePartition::per_wave(schedule.num_waves());
        let routing = vec![vec![0usize; 32], vec![0usize; 32]];
        let tm = TokenMapping::build(grid, &schedule, &partition, &routing).unwrap();
        for row in 0..32u32 {
            let band = row / 16;
            let max_wave = (0..4)
                .map(|col| schedule.wave_of(grid.tile_at(band, col)))
                .max()
                .unwrap();
            assert_eq!(tm.group_of_row[row as usize], max_wave);
        }
    }

    #[test]
    fn pool_segments_are_contiguous_in_send_pool() {
        let tm = build(64, 16, 2, 1, vec![2, 2], 11);
        for g in 0..tm.group_plans.len() {
            let plan = &tm.group_plans[g];
            for src in 0..2 {
                for dest in 0..2 {
                    let len = plan.len[src][dest];
                    if len == 0 {
                        continue;
                    }
                    let start = plan.send_off[src][dest];
                    // All token offsets of the segment lie in
                    // [start, start + len).
                    let rows: Vec<usize> = (0..64)
                        .filter(|&r| {
                            tm.group_of_row[r] as usize == g
                                && tm.token_offset[src][r] >= start
                                && tm.token_offset[src][r] < start + len
                        })
                        .collect();
                    assert_eq!(rows.len() * 16, len, "segment ({g},{src},{dest})");
                }
            }
        }
    }

    #[test]
    fn bad_routing_is_rejected() {
        let grid = TileGrid::new(16, 16, TileShape::new(16, 16));
        let order = Swizzle::Identity.issue_order(&grid);
        let schedule = WaveSchedule::new(&order, 4);
        let partition = WavePartition::single(1);
        // Wrong length.
        let err = TokenMapping::build(grid, &schedule, &partition, &[vec![0; 8], vec![0; 16]])
            .unwrap_err();
        assert!(matches!(err, FlashOverlapError::BadInputs { .. }));
        // Destination out of range.
        let err = TokenMapping::build(grid, &schedule, &partition, &[vec![0; 16], vec![5; 16]])
            .unwrap_err();
        assert!(matches!(err, FlashOverlapError::BadInputs { .. }));
    }

    #[test]
    fn imbalanced_routing_skews_pools() {
        // All tokens of rank 0 go to rank 1: pools reflect the imbalance.
        let grid = TileGrid::new(32, 16, TileShape::new(16, 16));
        let order = Swizzle::Identity.issue_order(&grid);
        let schedule = WaveSchedule::new(&order, 2);
        let partition = WavePartition::single(schedule.num_waves());
        let routing = vec![vec![1usize; 32], vec![1usize; 32]];
        let tm = TokenMapping::build(grid, &schedule, &partition, &routing).unwrap();
        assert_eq!(tm.recv_elems[0], 0);
        assert_eq!(tm.recv_elems[1], 2 * 32 * 16);
    }
}
