//! Tile-level reordering for AllReduce (§3.3.4).
//!
//! AllReduce only requires a tile order that is *consistent across ranks*;
//! the order itself may differ from the matrix layout. All ranks derive
//! the same mapping from the same (deterministic) wave schedule, so the
//! reordered buffers are element-wise aligned and summing them is correct.

use gpu_sim::tile::TileGrid;
use gpu_sim::wave::WaveSchedule;

use crate::mapping::GroupLayout;
use crate::partition::WavePartition;

/// The tile-level mapping table: packed slot per tile, element offsets,
/// and per-group contiguous regions.
#[derive(Debug, Clone)]
pub struct TileMapping {
    /// Shared wave-group structure.
    pub layout: GroupLayout,
    /// Packed slot index per address-order tile.
    pub slot_of_tile: Vec<u32>,
    /// Element offset of each packed slot (slot sizes vary at matrix
    /// edges).
    pub slot_offset: Vec<usize>,
    /// Per-group `(element offset, element count)` regions in the packed
    /// buffer — the arguments of each group's collective call.
    pub group_regions: Vec<(usize, usize)>,
    /// Total packed elements (`== M * N`).
    pub total_elems: usize,
    grid: TileGrid,
}

impl TileMapping {
    /// Builds the mapping from the planned schedule and partition.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover the schedule.
    pub fn build(grid: TileGrid, schedule: &WaveSchedule, partition: &WavePartition) -> Self {
        let layout = GroupLayout::new(schedule, partition);
        let num_tiles = grid.num_tiles() as usize;
        let mut slot_of_tile = vec![0u32; num_tiles];
        let mut slot_offset = Vec::with_capacity(num_tiles);
        let mut acc = 0usize;
        for (slot, &t) in layout.reorder_order.iter().enumerate() {
            // Index proof: reorder_order is a permutation of
            // 0..num_tiles (GroupLayout invariant), so t indexes
            // slot_of_tile.
            *slot_of_tile
                .get_mut(t as usize)
                .expect("reorder_order permutes 0..num_tiles") = slot as u32;
            slot_offset.push(acc);
            acc += grid.tile_elems(t) as usize;
        }
        // Group regions: consecutive slot runs.
        let mut group_regions = Vec::with_capacity(layout.num_groups());
        let mut slot = 0usize;
        for g in 0..layout.num_groups() {
            let tiles = *layout
                .group_tile_counts
                .get(g)
                .expect("g ranges over num_groups") as usize;
            // Index proofs: slot walks the prefix sums of
            // group_tile_counts, which total num_tiles, so slot <
            // num_tiles here and end_slot <= num_tiles (the == case is
            // handled without indexing).
            let start = *slot_offset
                .get(slot)
                .expect("slot stays below the packed tile count");
            let end_slot = slot + tiles;
            let end = if end_slot == num_tiles {
                acc
            } else {
                *slot_offset
                    .get(end_slot)
                    .expect("non-final group ends below the packed tile count")
            };
            group_regions.push((start, end - start));
            slot = end_slot;
        }
        TileMapping {
            layout,
            slot_of_tile,
            slot_offset,
            group_regions,
            total_elems: acc,
            grid,
        }
    }

    /// The tile grid the mapping is built for.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Element offset of tile `t`'s block in the packed buffer.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a tile of the grid.
    pub fn tile_base(&self, t: u32) -> usize {
        // Index proof: slot_of_tile values are enumeration indices of
        // reorder_order, hence < num_tiles == slot_offset.len().
        let slot = *self
            .slot_of_tile
            .get(t as usize)
            .expect("tile out of range");
        *self
            .slot_offset
            .get(slot as usize)
            .expect("slots enumerate the packed order")
    }

    /// Packed-buffer index of logical element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is out of the matrix bounds.
    pub fn packed_index(&self, r: u32, c: u32) -> usize {
        assert!(
            r < self.grid.m() && c < self.grid.n(),
            "({r},{c}) out of bounds"
        );
        let t = self
            .grid
            .tile_at(r / self.grid.tile().m, c / self.grid.tile().n);
        let rows = self.grid.rows_of(t);
        let cols = self.grid.cols_of(t);
        let width = (cols.end - cols.start) as usize;
        self.tile_base(t) + (r - rows.start) as usize * width + (c - cols.start) as usize
    }

    /// Received elements per rank when each group is AllGathered across
    /// `n_ranks` (every rank ends up with all ranks' packed regions).
    pub fn all_gather_recv_elems(&self, n_ranks: usize) -> usize {
        self.total_elems * n_ranks
    }

    /// Receive-buffer region of group `g` under AllGather: each group's
    /// region expands by the rank count, preserving group order.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn all_gather_recv_region(&self, g: usize, n_ranks: usize) -> (usize, usize) {
        let (offset, count) = *self.group_regions.get(g).expect("group out of range");
        (offset * n_ranks, count * n_ranks)
    }

    /// The post-communication element gather for AllGather: restores the
    /// logical `(M, N * n)` column-concatenated matrix from the received
    /// buffer, whose layout is `[group][source rank][packed region]`.
    pub fn all_gather_gather(&self, n_ranks: usize) -> Vec<u32> {
        let (m, n_local) = (self.grid.m(), self.grid.n());
        let mut map = Vec::with_capacity((m * n_local) as usize * n_ranks);
        for r in 0..m {
            for c in 0..n_local * n_ranks as u32 {
                let src = (c / n_local) as usize;
                let local_col = c % n_local;
                let p = self.packed_index(r, local_col);
                let tile = self
                    .grid
                    .tile_at(r / self.grid.tile().m, local_col / self.grid.tile().n);
                // Index proofs: tile_at returns a tile of the grid
                // (< num_tiles), and group_of_tile values come from
                // group_of_wave (< num_groups == group_regions.len()).
                let g = *self
                    .layout
                    .group_of_tile
                    .get(tile as usize)
                    .expect("tile_at returns an in-grid tile") as usize;
                let (off, count) = *self
                    .group_regions
                    .get(g)
                    .expect("group ids are < num_groups");
                let recv_idx = n_ranks * off + src * count + (p - off);
                map.push(recv_idx as u32);
            }
        }
        map
    }

    /// The post-communication element gather: `out[i] = packed[map[i]]`
    /// restores row-major order. This is what gets fused into the next
    /// element-wise kernel (Fig. 6).
    pub fn element_gather(&self) -> Vec<u32> {
        let (m, n) = (self.grid.m(), self.grid.n());
        let mut map = Vec::with_capacity((m * n) as usize);
        for r in 0..m {
            for c in 0..n {
                map.push(self.packed_index(r, c) as u32);
            }
        }
        map
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use gpu_sim::swizzle::Swizzle;
    use gpu_sim::tile::TileShape;

    fn build(m: u32, n: u32, tile: u32, width: u32, conc: u32, sizes: Vec<u32>) -> TileMapping {
        let grid = TileGrid::new(m, n, TileShape::new(tile, tile));
        let order = Swizzle::Strip { width }.issue_order(&grid);
        let schedule = WaveSchedule::new(&order, conc);
        let partition = if sizes.is_empty() {
            WavePartition::single(schedule.num_waves())
        } else {
            WavePartition::new(sizes)
        };
        TileMapping::build(grid, &schedule, &partition)
    }

    #[test]
    fn slots_are_a_permutation_and_offsets_monotone() {
        let m = build(64, 128, 16, 2, 3, vec![]);
        let mut slots = m.slot_of_tile.clone();
        slots.sort_unstable();
        assert_eq!(slots, (0..m.grid().num_tiles()).collect::<Vec<_>>());
        for pair in m.slot_offset.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert_eq!(m.total_elems, 64 * 128);
    }

    #[test]
    fn group_regions_tile_the_buffer() {
        let m = build(64, 128, 16, 2, 8, vec![2, 1, 1]);
        let mut expected_start = 0;
        for &(start, count) in &m.group_regions {
            assert_eq!(start, expected_start);
            expected_start += count;
        }
        assert_eq!(expected_start, m.total_elems);
    }

    #[test]
    fn packed_index_is_a_bijection() {
        let m = build(48, 80, 16, 3, 2, vec![]);
        let mut seen = vec![false; m.total_elems];
        for r in 0..48 {
            for c in 0..80 {
                let i = m.packed_index(r, c);
                assert!(!seen[i], "packed index {i} hit twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn element_gather_inverts_packing() {
        let m = build(32, 64, 16, 2, 2, vec![1, 1, 1, 1]);
        // Fill a packed buffer via packed_index from a known logical
        // matrix; gathering must restore it.
        let mut packed = vec![0.0f32; m.total_elems];
        for r in 0..32u32 {
            for c in 0..64u32 {
                packed[m.packed_index(r, c)] = (r * 64 + c) as f32;
            }
        }
        let gather = m.element_gather();
        for (i, &src) in gather.iter().enumerate() {
            assert_eq!(packed[src as usize] as usize, i);
        }
    }

    #[test]
    fn ragged_edges_pack_densely() {
        let m = build(40, 72, 16, 2, 3, vec![]);
        assert_eq!(m.total_elems, 40 * 72);
        let mut seen = vec![false; m.total_elems];
        for r in 0..40 {
            for c in 0..72 {
                seen[m.packed_index(r, c)] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn all_gather_gather_is_a_bijection_into_recv_layout() {
        let m = build(48, 32, 16, 2, 3, vec![1, 1]);
        let n_ranks = 3;
        let gather = m.all_gather_gather(n_ranks);
        assert_eq!(gather.len(), 48 * 32 * n_ranks);
        let mut seen = vec![false; m.all_gather_recv_elems(n_ranks)];
        for &i in &gather {
            assert!(!seen[i as usize], "recv index {i} hit twice");
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn all_gather_recv_regions_tile_the_recv_buffer() {
        let m = build(48, 32, 16, 2, 3, vec![1, 1]);
        let mut expected = 0;
        for g in 0..m.layout.num_groups() {
            let (start, count) = m.all_gather_recv_region(g, 4);
            assert_eq!(start, expected);
            expected += count;
        }
        assert_eq!(expected, m.all_gather_recv_elems(4));
    }

    #[test]
    fn group_region_contains_its_tiles() {
        let m = build(64, 64, 16, 2, 4, vec![1, 2, 1]);
        for g in 0..m.layout.num_groups() {
            let (start, count) = m.group_regions[g];
            for t in m.layout.group_tiles(g).collect::<Vec<_>>() {
                let base = m.tile_base(t);
                assert!(
                    base >= start && base < start + count,
                    "tile {t} outside group {g} region"
                );
            }
        }
    }
}
