//! Subtile-level reordering for ReduceScatter (§3.3.4).
//!
//! ReduceScatter slices the reduced result across ranks, so complete rows
//! must land on one rank. Each tile is split by rows into `n` interleaved
//! subtiles — subtile `k` holds the tile rows whose *global* row index is
//! `≡ k (mod n)` — and the packed send buffer arranges every group as
//! `[dest 0 block | dest 1 block | ... | dest n-1 block]`. A single
//! ReduceScatter call per group then delivers rank `k` exactly the rows
//! `row % n == k`, reduced.

use gpu_sim::tile::TileGrid;
use gpu_sim::wave::WaveSchedule;

use crate::error::FlashOverlapError;
use crate::mapping::GroupLayout;
use crate::partition::WavePartition;

/// The subtile-level mapping for an `n`-rank ReduceScatter.
#[derive(Debug, Clone)]
pub struct SubtileMapping {
    /// Shared wave-group structure.
    pub layout: GroupLayout,
    /// Rank count.
    pub n_ranks: usize,
    /// Per-group `(element offset, element count)` regions in the packed
    /// send buffer.
    pub send_group_regions: Vec<(usize, usize)>,
    /// `[tile][dest]` element offset of the tile's dest-subtile in the
    /// packed send buffer.
    pub subtile_send_offset: Vec<Vec<usize>>,
    /// Per-tile element offset of the tile's own-rank subtile in the
    /// packed *receive* buffer (identical on every rank by symmetry).
    pub recv_subtile_offset: Vec<usize>,
    /// Per-group element offsets in the receive buffer.
    pub recv_group_offset: Vec<usize>,
    /// Total packed send elements (`== M * N`).
    pub total_send_elems: usize,
    /// Received elements per rank (`== M * N / n`).
    pub recv_elems: usize,
    grid: TileGrid,
}

impl SubtileMapping {
    /// Builds the mapping.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::IncompatibleShape`] unless the tile
    /// height and every tile's actual row count are divisible by
    /// `n_ranks` (so subtiles are equal and global row parity survives
    /// tiling).
    pub fn build(
        grid: TileGrid,
        schedule: &WaveSchedule,
        partition: &WavePartition,
        n_ranks: usize,
    ) -> Result<Self, FlashOverlapError> {
        if n_ranks < 2 {
            return Err(FlashOverlapError::IncompatibleShape {
                reason: "ReduceScatter needs at least 2 ranks".into(),
            });
        }
        let n = n_ranks as u32;
        if !grid.tile().m.is_multiple_of(n) {
            return Err(FlashOverlapError::IncompatibleShape {
                reason: format!(
                    "tile height {} not divisible by {} ranks",
                    grid.tile().m,
                    n_ranks
                ),
            });
        }
        for t in 0..grid.num_tiles() {
            let rows = grid.rows_of(t);
            if !(rows.end - rows.start).is_multiple_of(n) {
                return Err(FlashOverlapError::IncompatibleShape {
                    reason: format!(
                        "tile {} has {} rows, not divisible by {} ranks (M = {})",
                        t,
                        rows.end - rows.start,
                        n_ranks,
                        grid.m()
                    ),
                });
            }
        }

        let layout = GroupLayout::new(schedule, partition);
        let num_tiles = grid.num_tiles() as usize;
        let subtile_elems = |t: u32| (grid.tile_elems(t) / n_ranks as u64) as usize;

        let mut subtile_send_offset = vec![vec![0usize; n_ranks]; num_tiles];
        let mut recv_subtile_offset = vec![0usize; num_tiles];
        let mut send_group_regions = Vec::with_capacity(layout.num_groups());
        let mut recv_group_offset = Vec::with_capacity(layout.num_groups());
        let mut send_acc = 0usize;
        let mut recv_acc = 0usize;
        for g in 0..layout.num_groups() {
            let tiles: Vec<u32> = layout.group_tiles(g).collect();
            let block: usize = tiles.iter().map(|&t| subtile_elems(t)).sum();
            let group_start = send_acc;
            recv_group_offset.push(recv_acc);
            for dest in 0..n_ranks {
                let mut within = 0usize;
                for &t in &tiles {
                    let offset = group_start + dest * block + within;
                    // Index proofs: group_tiles yields tiles of the grid
                    // (t < num_tiles, the outer Vec length), and dest
                    // ranges over 0..n_ranks (the inner Vec length).
                    *subtile_send_offset
                        .get_mut(t as usize)
                        .expect("group_tiles yields in-grid tiles")
                        .get_mut(dest)
                        .expect("dest ranges over n_ranks") = offset;
                    if dest == 0 {
                        // Receive layout mirrors one dest block per group.
                        *recv_subtile_offset
                            .get_mut(t as usize)
                            .expect("group_tiles yields in-grid tiles") = recv_acc + within;
                    }
                    within += subtile_elems(t);
                }
            }
            send_acc += block * n_ranks;
            recv_acc += block;
            send_group_regions.push((group_start, block * n_ranks));
        }

        Ok(SubtileMapping {
            layout,
            n_ranks,
            send_group_regions,
            subtile_send_offset,
            recv_subtile_offset,
            recv_group_offset,
            total_send_elems: send_acc,
            recv_elems: recv_acc,
            grid,
        })
    }

    /// The tile grid the mapping is built for.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Packed *send*-buffer index of logical element `(r, c)` (rank-
    /// independent: all ranks pack identically).
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is out of bounds.
    pub fn packed_send_index(&self, r: u32, c: u32) -> usize {
        assert!(
            r < self.grid.m() && c < self.grid.n(),
            "({r},{c}) out of bounds"
        );
        let t = self
            .grid
            .tile_at(r / self.grid.tile().m, c / self.grid.tile().n);
        let rows = self.grid.rows_of(t);
        let cols = self.grid.cols_of(t);
        let width = (cols.end - cols.start) as usize;
        let dest = (r as usize) % self.n_ranks;
        // Rows of this tile with the same parity, below r.
        let row_in_subtile = ((r - rows.start) / self.n_ranks as u32) as usize;
        // Index proofs: tile_at returns an in-grid tile (table length is
        // num_tiles), and dest = r % n_ranks < n_ranks (inner length).
        *self
            .subtile_send_offset
            .get(t as usize)
            .expect("tile_at returns an in-grid tile")
            .get(dest)
            .expect("r % n_ranks is < n_ranks")
            + row_in_subtile * width
            + (c - cols.start) as usize
    }

    /// Packed *receive*-buffer index (on rank `k`) of the element at
    /// global row `r` (`r % n == k`), column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is out of bounds.
    pub fn packed_recv_index(&self, r: u32, c: u32) -> usize {
        assert!(
            r < self.grid.m() && c < self.grid.n(),
            "({r},{c}) out of bounds"
        );
        let t = self
            .grid
            .tile_at(r / self.grid.tile().m, c / self.grid.tile().n);
        let rows = self.grid.rows_of(t);
        let cols = self.grid.cols_of(t);
        let width = (cols.end - cols.start) as usize;
        let row_in_subtile = ((r - rows.start) / self.n_ranks as u32) as usize;
        // Index proof: tile_at returns an in-grid tile; the table holds
        // one entry per tile.
        *self
            .recv_subtile_offset
            .get(t as usize)
            .expect("tile_at returns an in-grid tile")
            + row_in_subtile * width
            + (c - cols.start) as usize
    }

    /// The post-communication element gather for rank `k`: restores the
    /// rank's logical output (rows `r % n == k`, ascending, each full
    /// width) from the received packed buffer.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n_ranks` or `M` is not divisible by the rank count.
    pub fn recv_gather(&self, k: usize) -> Vec<u32> {
        assert!(k < self.n_ranks, "rank {k} out of range");
        assert_eq!(
            self.grid.m() as usize % self.n_ranks,
            0,
            "M must divide rank count for a rectangular per-rank output"
        );
        let local_rows = self.grid.m() as usize / self.n_ranks;
        let n = self.grid.n();
        let mut map = Vec::with_capacity(local_rows * n as usize);
        for i in 0..local_rows {
            let r = (k + i * self.n_ranks) as u32;
            for c in 0..n {
                map.push(self.packed_recv_index(r, c) as u32);
            }
        }
        map
    }

    /// The global rows rank `k` ends up holding, in logical order.
    pub fn rows_of_rank(&self, k: usize) -> Vec<u32> {
        (0..self.grid.m())
            .filter(|r| (*r as usize) % self.n_ranks == k)
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use gpu_sim::swizzle::Swizzle;
    use gpu_sim::tile::TileShape;

    fn build(m: u32, n_cols: u32, ranks: usize, sizes: Vec<u32>) -> SubtileMapping {
        let grid = TileGrid::new(m, n_cols, TileShape::new(16, 16));
        let order = Swizzle::Strip { width: 2 }.issue_order(&grid);
        let schedule = WaveSchedule::new(&order, 3);
        let partition = if sizes.is_empty() {
            WavePartition::single(schedule.num_waves())
        } else {
            WavePartition::new(sizes)
        };
        SubtileMapping::build(grid, &schedule, &partition, ranks).unwrap()
    }

    #[test]
    fn send_index_is_a_bijection() {
        let m = build(32, 48, 4, vec![]);
        let mut seen = vec![false; m.total_send_elems];
        for r in 0..32 {
            for c in 0..48 {
                let i = m.packed_send_index(r, c);
                assert!(!seen[i], "send index {i} hit twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn group_regions_are_contiguous_and_divisible() {
        let m = build(64, 32, 2, vec![2, 1]);
        let mut expected = 0;
        for &(start, count) in &m.send_group_regions {
            assert_eq!(start, expected);
            assert_eq!(count % m.n_ranks, 0, "region must split across ranks");
            expected += count;
        }
        assert_eq!(expected, m.total_send_elems);
    }

    #[test]
    fn dest_chunks_hold_matching_row_parity() {
        // Every element in dest block k of any group must come from a
        // global row with r % n == k: this is the ReduceScatter
        // correctness condition of Sec. 3.3.3.
        let m = build(32, 32, 4, vec![1, 1]);
        for r in 0..32u32 {
            for c in 0..32u32 {
                let idx = m.packed_send_index(r, c);
                // Find the group and dest block that contains idx.
                let g = m
                    .send_group_regions
                    .iter()
                    .position(|&(s, cnt)| idx >= s && idx < s + cnt)
                    .expect("index in some group");
                let (start, count) = m.send_group_regions[g];
                let block = count / m.n_ranks;
                let dest = (idx - start) / block;
                assert_eq!(dest, r as usize % m.n_ranks, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn recv_gather_restores_rank_rows() {
        let m = build(32, 16, 2, vec![]);
        for k in 0..2usize {
            // Fill a fake receive buffer with the value each slot should
            // carry (global row * 1000 + col), using packed_recv_index
            // over rank k's rows; the gather must read them in logical
            // order.
            let mut recv = vec![-1.0f32; m.recv_elems];
            for &r in &m.rows_of_rank(k) {
                for c in 0..16u32 {
                    recv[m.packed_recv_index(r, c)] = (r * 1000 + c) as f32;
                }
            }
            let gather = m.recv_gather(k);
            assert_eq!(gather.len(), 16 * 16);
            for (i, &src) in gather.iter().enumerate() {
                let local_row = i / 16;
                let col = i % 16;
                let global_row = k + local_row * 2;
                assert_eq!(recv[src as usize] as u32, (global_row * 1000 + col) as u32);
            }
        }
    }

    #[test]
    fn indivisible_tile_height_is_rejected() {
        let grid = TileGrid::new(32, 32, TileShape::new(6, 16));
        let order = Swizzle::Identity.issue_order(&grid);
        let schedule = WaveSchedule::new(&order, 4);
        let partition = WavePartition::single(schedule.num_waves());
        let err = SubtileMapping::build(grid, &schedule, &partition, 4).unwrap_err();
        assert!(matches!(err, FlashOverlapError::IncompatibleShape { .. }));
    }

    #[test]
    fn ragged_m_with_bad_edge_tile_is_rejected() {
        // Tile height 16 divides 8 ranks, but M = 36 leaves a 4-row edge
        // tile and 4 rows cannot split across 8 ranks.
        let grid = TileGrid::new(36, 32, TileShape::new(16, 16));
        let order = Swizzle::Identity.issue_order(&grid);
        let schedule = WaveSchedule::new(&order, 4);
        let partition = WavePartition::single(schedule.num_waves());
        let err = SubtileMapping::build(grid, &schedule, &partition, 8).unwrap_err();
        assert!(matches!(err, FlashOverlapError::IncompatibleShape { .. }));
    }

    #[test]
    fn recv_elems_is_per_rank_share() {
        let m = build(64, 48, 4, vec![2, 2]);
        assert_eq!(m.recv_elems, 64 * 48 / 4);
        assert_eq!(m.total_send_elems, 64 * 48);
    }
}
