//! Execution-order-aware reordering (§3.3).
//!
//! Contiguous addresses are essential for communication bandwidth, but the
//! swizzled tile execution order is address-incontiguous. FlashOverlap
//! therefore packs finished tiles into a *reordered* buffer whose layout
//! follows the wave schedule — so every group's data is one contiguous
//! region a single NCCL call can send — and un-permutes after
//! communication by fusing a gather into the next element-wise kernel.
//!
//! Each primitive constrains the legal reorderings differently (§3.3.3):
//!
//! - [`tile_map::TileMapping`] (AllReduce): whole tiles reorder freely as
//!   long as all ranks agree.
//! - [`subtile_map::SubtileMapping`] (ReduceScatter): tiles split into
//!   per-destination row-interleaved subtiles so each rank's chunk holds
//!   complete rows.
//! - [`token_map::TokenMapping`] (All-to-All): rows (tokens) route to
//!   per-destination memory pools.
//!
//! The mapping builders run once per plan but their tables are read on
//! every epilogue write and remap, so unchecked indexing is opted out
//! across the module; each site carries its index proof in the `expect`
//! message (ROADMAP: "extend to the mapping builders once their index
//! proofs are written down").
#![warn(clippy::indexing_slicing)]

pub mod subtile_map;
pub mod tile_map;
pub mod token_map;

pub use subtile_map::SubtileMapping;
pub use tile_map::TileMapping;
pub use token_map::TokenMapping;

use gpu_sim::wave::WaveSchedule;

use crate::partition::WavePartition;

/// The wave-group structure shared by every mapping: which group each tile
/// belongs to, the packed (reordered) tile order, and per-group tile
/// counts (the counting-table thresholds of §3.2.4).
#[derive(Debug, Clone)]
pub struct GroupLayout {
    /// Group id per address-order tile index.
    pub group_of_tile: Vec<u32>,
    /// Tiles in packed order: waves ascending, tile index ascending within
    /// each wave (§3.3.4: `W_i` is sorted ascendingly).
    pub reorder_order: Vec<u32>,
    /// Tiles per group — the signaling thresholds.
    pub group_tile_counts: Vec<u32>,
}

impl GroupLayout {
    /// Derives the group layout from a planned wave schedule and a
    /// partition.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover the schedule's waves; use
    /// [`WavePartition::check_covers`] first for a recoverable error.
    pub fn new(schedule: &WaveSchedule, partition: &WavePartition) -> Self {
        assert_eq!(
            partition.total_waves(),
            schedule.num_waves(),
            "partition/schedule wave mismatch"
        );
        let num_tiles = schedule.num_tiles() as usize;
        let mut group_of_tile = vec![0u32; num_tiles];
        let mut reorder_order = Vec::with_capacity(num_tiles);
        let mut group_tile_counts = vec![0u32; partition.num_groups()];
        for w in 0..schedule.num_waves() {
            let g = partition.group_of_wave(w);
            let mut wave_tiles: Vec<u32> = schedule.wave(w).to_vec();
            wave_tiles.sort_unstable();
            for &t in &wave_tiles {
                // Index proofs: the schedule's waves partition exactly the
                // tiles 0..num_tiles (WaveSchedule invariant), so t is in
                // range; group_of_wave returns < num_groups for any wave
                // the partition covers, and the assert above pins the
                // partition to this schedule.
                *group_of_tile
                    .get_mut(t as usize)
                    .expect("schedule tile ids are < num_tiles") = g as u32;
                *group_tile_counts
                    .get_mut(g)
                    .expect("group_of_wave returns < num_groups") += 1;
            }
            reorder_order.extend(wave_tiles);
        }
        GroupLayout {
            group_of_tile,
            reorder_order,
            group_tile_counts,
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.group_tile_counts.len()
    }

    /// Tiles (packed order) of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g >= num_groups()`.
    pub fn group_tiles(&self, g: usize) -> impl Iterator<Item = u32> + '_ {
        // Index proofs: g is bounds-checked by the first get; the prefix
        // sums of group_tile_counts total reorder_order.len() (every tile
        // is packed exactly once), so [start, end) is within the packed
        // order.
        let start: u32 = self
            .group_tile_counts
            .get(..g)
            .expect("group out of range")
            .iter()
            .sum();
        let end = start
            + self
                .group_tile_counts
                .get(g)
                .copied()
                .expect("group out of range");
        self.reorder_order
            .get(start as usize..end as usize)
            .expect("group tile counts sum to the packed tile count")
            .iter()
            .copied()
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use gpu_sim::swizzle::Swizzle;
    use gpu_sim::tile::{TileGrid, TileShape};

    fn schedule() -> WaveSchedule {
        // 2x4 grid of tiles, swizzle width 2, 2 tiles per wave => 4 waves
        // (the Fig. 5 setup).
        let grid = TileGrid::new(32, 64, TileShape::new(16, 16));
        let order = Swizzle::Strip { width: 2 }.issue_order(&grid);
        WaveSchedule::new(&order, 2)
    }

    #[test]
    fn groups_count_their_tiles() {
        let s = schedule();
        let p = WavePartition::new(vec![1, 2, 1]);
        let layout = GroupLayout::new(&s, &p);
        assert_eq!(layout.group_tile_counts, vec![2, 4, 2]);
        assert_eq!(layout.num_groups(), 3);
    }

    #[test]
    fn reorder_order_sorts_within_wave() {
        let s = schedule();
        // Issue order: 0,1,4,5,2,3,6,7 with waves of 2 => waves are
        // {0,1},{4,5},{2,3},{6,7}; all already sorted.
        let p = WavePartition::per_wave(4);
        let layout = GroupLayout::new(&s, &p);
        assert_eq!(layout.reorder_order, vec![0, 1, 4, 5, 2, 3, 6, 7]);
    }

    #[test]
    fn reorder_order_is_permutation() {
        let grid = TileGrid::new(48, 80, TileShape::new(16, 16));
        let order = Swizzle::Strip { width: 3 }.issue_order(&grid);
        let s = WaveSchedule::new(&order, 5);
        let p = WavePartition::single(s.num_waves());
        let layout = GroupLayout::new(&s, &p);
        let mut sorted = layout.reorder_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..grid.num_tiles()).collect::<Vec<_>>());
    }

    #[test]
    fn group_of_tile_matches_wave_group() {
        let s = schedule();
        let p = WavePartition::new(vec![2, 2]);
        let layout = GroupLayout::new(&s, &p);
        for t in 0..s.num_tiles() {
            let expected = p.group_of_wave(s.wave_of(t)) as u32;
            assert_eq!(layout.group_of_tile[t as usize], expected);
        }
    }

    #[test]
    fn group_tiles_iterates_packed_order() {
        let s = schedule();
        let p = WavePartition::new(vec![1, 2, 1]);
        let layout = GroupLayout::new(&s, &p);
        let g1: Vec<u32> = layout.group_tiles(1).collect();
        assert_eq!(g1, vec![4, 5, 2, 3]);
    }
}
