//! The latency predictor and offline profiling stage (§4, Alg. 1).
//!
//! Tuning must be real-time (§4.1.2), so candidate partitions are scored
//! by a cost model instead of online profiling. The model needs two
//! offline artifacts per (shape, primitive, system):
//!
//! 1. the GEMM configuration and its duration under the SM count left
//!    after the communication kernel takes its share (Alg. 1 line 3), and
//! 2. the sampled `(data size, latency)` curve of the communication
//!    primitive (Fig. 8), interpolated at query time.
//!
//! Prediction then walks the groups, accumulating computation linearly
//! (the GEMM is never interrupted) and communication as
//! `acc_comm = max(acc_comp, acc_comm) + comm(group)` — each group's
//! collective starts only after its waves computed *and* the previous
//! collective drained the stream.

use collectives::{tiered_duration, Primitive, BYTES_PER_ELEM};
use gpu_sim::gemm::{gemm_estimate, GemmConfig, GemmDims};
use interconnect::{log_spaced_sizes, SampledCurve};
use sim::SimDuration;

use crate::partition::WavePartition;
use crate::system::SystemSpec;

/// The offline-profiled inputs of the predictor.
#[derive(Debug, Clone)]
pub struct OfflineProfile {
    /// Problem shape.
    pub dims: GemmDims,
    /// Primitive being overlapped.
    pub primitive: Primitive,
    /// GEMM configuration (the CUTLASS-profiler step).
    pub config: GemmConfig,
    /// Planned wave count with communication SMs subtracted.
    pub total_waves: u32,
    /// GEMM duration under contention-adjusted SMs.
    pub gemm_duration: SimDuration,
    /// Sampled communication latency curve.
    pub curve: SampledCurve,
    /// Tiles per full wave under communication contention.
    pub wave_width: u32,
    /// Tiles per full wave with every SM available (before the first
    /// collective launches).
    pub full_wave_width: u32,
    /// Total tiles.
    pub total_tiles: u32,
    /// Elements per full tile.
    pub tile_elems: u64,
}

impl OfflineProfile {
    /// Number of curve sample points (dense enough for <1% interpolation
    /// error on the saturating fabric models).
    pub const CURVE_POINTS: usize = 48;

    /// Runs the offline stage for one (shape, primitive, system) triple.
    pub fn build(dims: GemmDims, primitive: Primitive, system: &SystemSpec) -> Self {
        let config = GemmConfig::choose(dims, &system.arch);
        let grid = config.grid(dims);
        let sms = system.compute_sms();
        let (total_waves, gemm_duration) = gemm_estimate(dims, &config, sms, &system.arch);

        // Sample the communication latency curve over the range a group
        // can span: one tile up to the whole output. Charging goes through
        // the tiered cost model, so on a multi-node topology the curve
        // reflects the hierarchical schedule (inter-tier bandwidth on the
        // leader phase) and `predictive_search` tunes node-spanning groups
        // differently from single-node ones.
        let max_bytes = dims.out_elems() * BYTES_PER_ELEM;
        let min_bytes = (config.tile.elems() * BYTES_PER_ELEM)
            .min(max_bytes / 2)
            .max(2);
        let sizes = log_spaced_sizes(min_bytes, max_bytes, Self::CURVE_POINTS);
        let curve = SampledCurve::from_points(
            sizes
                .into_iter()
                .map(|bytes| {
                    (
                        bytes,
                        tiered_duration(primitive, bytes, &system.topology, system.algorithm),
                    )
                })
                .collect(),
        );

        OfflineProfile {
            dims,
            primitive,
            config,
            total_waves,
            gemm_duration,
            curve,
            wave_width: sms,
            full_wave_width: system.arch.sm_count,
            total_tiles: grid.num_tiles(),
            tile_elems: config.tile.elems(),
        }
    }

    /// Tiles in wave `w` (tail waves are partial).
    pub fn wave_tiles(&self, w: u32) -> u32 {
        let done = w * self.wave_width;
        self.wave_width.min(self.total_tiles.saturating_sub(done))
    }

    /// Approximate communicated bytes of a group of waves `[start, end)`.
    pub fn group_bytes(&self, start: u32, end: u32) -> u64 {
        let tiles: u64 = (start..end).map(|w| self.wave_tiles(w) as u64).sum();
        tiles * self.tile_elems * BYTES_PER_ELEM
    }
}

/// Imbalance safety margin applied to predicted All-to-All group
/// latencies (see [`LatencyPredictor::predict`]).
pub const ALL_TO_ALL_IMBALANCE_MARGIN: f64 = 1.12;

/// The Alg. 1 latency predictor over a fixed offline profile.
///
/// # Examples
///
/// ```
/// use collectives::Primitive;
/// use flashoverlap::{LatencyPredictor, SystemSpec, WavePartition};
/// use gpu_sim::gemm::GemmDims;
///
/// let system = SystemSpec::rtx4090(4);
/// let predictor = LatencyPredictor::build(
///     GemmDims::new(4096, 8192, 8192),
///     Primitive::AllReduce,
///     &system,
/// );
/// let waves = predictor.profile().total_waves;
/// let overlapped = predictor.predict(&WavePartition::per_wave(waves));
/// let serial = predictor.predict_serial();
/// assert!(overlapped < serial, "overlap must be predicted to help here");
/// ```
#[derive(Debug, Clone)]
pub struct LatencyPredictor {
    profile: OfflineProfile,
}

impl LatencyPredictor {
    /// Wraps an offline profile.
    pub fn new(profile: OfflineProfile) -> Self {
        LatencyPredictor { profile }
    }

    /// Builds profile and predictor in one step.
    pub fn build(dims: GemmDims, primitive: Primitive, system: &SystemSpec) -> Self {
        Self::new(OfflineProfile::build(dims, primitive, system))
    }

    /// The underlying profile.
    pub fn profile(&self) -> &OfflineProfile {
        &self.profile
    }

    /// Predicts the overlapped operator latency of a wave partition.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover the profiled wave count.
    pub fn predict(&self, partition: &WavePartition) -> SimDuration {
        let (time, completions) = self.walk(partition);
        let comm_done = completions.last().copied().unwrap_or(0.0);
        SimDuration::from_nanos(comm_done.max(time) as u64)
    }

    /// Predicts when each group's collective completes (absolute, from
    /// GEMM launch) — the per-wait deadlines the watchdog runtime derives
    /// its escalation timers from. The last entry equals
    /// [`LatencyPredictor::predict`] when communication is the tail.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover the profiled wave count.
    pub fn predict_group_completions(&self, partition: &WavePartition) -> Vec<SimDuration> {
        let (_, completions) = self.walk(partition);
        completions
            .into_iter()
            .map(|ns| SimDuration::from_nanos(ns as u64))
            .collect()
    }

    fn walk(&self, partition: &WavePartition) -> (f64, Vec<f64>) {
        assert_eq!(
            partition.total_waves(),
            self.profile.total_waves,
            "partition does not match profiled wave count"
        );
        let per_wave_ns =
            self.profile.gemm_duration.as_nanos() as f64 / self.profile.total_waves as f64;
        // Per-group signaling thresholds (tiles) and payloads (bytes),
        // cumulative.
        let mut thresholds = Vec::with_capacity(partition.num_groups());
        let mut payloads = Vec::with_capacity(partition.num_groups());
        let mut acc_tiles = 0u64;
        for g in 0..partition.num_groups() {
            let range = partition.wave_range(g);
            acc_tiles += (range.start..range.end)
                .map(|w| self.profile.wave_tiles(w) as u64)
                .sum::<u64>();
            thresholds.push(acc_tiles);
            let bytes = self.profile.group_bytes(range.start, range.end);
            let mut comm = self.profile.curve.interpolate(bytes).as_nanos() as f64;
            if self.profile.primitive == Primitive::AllToAll {
                // Dynamic routing makes per-group All-to-All traffic
                // uneven across ranks, and the slowest rank bounds the
                // exchange (Sec. 2.3: "inherent workload imbalance").
                // The curve models balanced traffic, so scoring adds a
                // margin to avoid over-fragmenting.
                comm *= ALL_TO_ALL_IMBALANCE_MARGIN;
            }
            payloads.push(comm);
        }

        // Walk the GEMM wave by wave, exactly like the runtime: each wave
        // takes one tile-time; its width is the full SM count unless a
        // collective is in flight when it starts (communication SMs are
        // held only while a collective runs — a refinement of Alg. 1
        // line 3, which assumes contention for the whole GEMM).
        let total_tiles = self.profile.total_tiles as u64;
        let mut time = 0.0f64;
        let mut tiles_done = 0u64;
        // The communication stream is busy over [comm_busy_from,
        // comm_free): calls serialize, and a new busy period opens when a
        // group signals after the previous calls drained.
        let mut comm_busy_from = f64::INFINITY;
        let mut comm_free = 0.0f64;
        let mut next_group = 0usize;
        let mut completions = Vec::with_capacity(payloads.len());
        while tiles_done < total_tiles {
            // A wave dispatches the moment the previous one retires —
            // before a just-signalled collective can grab its SMs — so it
            // contends only with collectives already in flight at that
            // instant.
            let width = if comm_busy_from < time && time < comm_free {
                self.profile.wave_width
            } else {
                self.profile.full_wave_width
            };
            tiles_done += width as u64;
            time += per_wave_ns;
            while next_group < thresholds.len() && tiles_done >= thresholds[next_group] {
                if comm_free <= time {
                    comm_busy_from = time;
                    comm_free = time + payloads[next_group];
                } else {
                    comm_free += payloads[next_group];
                }
                completions.push(comm_free);
                next_group += 1;
            }
        }
        debug_assert_eq!(next_group, thresholds.len(), "every group signalled");
        (time, completions)
    }

    /// Predicted latency of the non-overlapped execution (single group).
    pub fn predict_serial(&self) -> SimDuration {
        self.predict(&WavePartition::single(self.profile.total_waves))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> LatencyPredictor {
        // K chosen so computation and communication are roughly balanced
        // on the 4-GPU PCIe system (the regime overlap targets).
        LatencyPredictor::build(
            GemmDims::new(4096, 8192, 16384),
            Primitive::AllReduce,
            &SystemSpec::rtx4090(4),
        )
    }

    #[test]
    fn profile_matches_paper_wave_example() {
        // Sec. 4.1.2: M=4096, N=8192 with 256x128 tiles gives 1024 tiles.
        let p = predictor();
        assert_eq!(p.profile().total_tiles, 1024);
        // With 128-16 = 112 compute SMs, 1024 tiles take 10 waves.
        assert_eq!(p.profile().total_waves, 1024u32.div_ceil(112));
    }

    #[test]
    fn group_bytes_sum_to_output_bytes() {
        let p = predictor();
        let profile = p.profile();
        let total = profile.group_bytes(0, profile.total_waves);
        assert_eq!(
            total,
            4096 * 8192 * BYTES_PER_ELEM,
            "all waves together communicate the whole output"
        );
    }

    #[test]
    fn wave_tiles_has_partial_tail() {
        let p = predictor();
        let profile = p.profile();
        let t = profile.total_waves;
        assert_eq!(profile.wave_tiles(0), profile.wave_width);
        let tail = profile.wave_tiles(t - 1);
        assert!(tail > 0 && tail <= profile.wave_width);
        let sum: u32 = (0..t).map(|w| profile.wave_tiles(w)).sum();
        assert_eq!(sum, profile.total_tiles);
    }

    #[test]
    fn overlap_prediction_beats_serial_for_balanced_shapes() {
        let p = predictor();
        let t = p.profile().total_waves;
        let serial = p.predict_serial();
        let grouped = p.predict(&WavePartition::new(vec![2; t as usize / 2]));
        assert!(grouped < serial, "grouped {grouped} vs serial {serial}");
    }

    #[test]
    fn per_wave_partition_pays_fragmentation() {
        // On PCIe the per-wave baseline partition fragments communication
        // enough that a coarser grouping wins (Sec. 4.1.1). Use a
        // communication-leaning K so per-group transfers sit on the
        // bandwidth cliff.
        let p = LatencyPredictor::build(
            GemmDims::new(4096, 8192, 6144),
            Primitive::AllReduce,
            &SystemSpec::rtx4090(4),
        );
        let t = p.profile().total_waves;
        let per_wave = p.predict(&WavePartition::per_wave(t));
        let mut best_grouped = per_wave;
        for size in [2u32, 3] {
            let mut sizes = vec![size; (t / size) as usize];
            let covered: u32 = sizes.iter().sum();
            if covered < t {
                sizes.push(t - covered);
            }
            best_grouped = best_grouped.min(p.predict(&WavePartition::new(sizes)));
        }
        assert!(best_grouped < per_wave);
    }

    #[test]
    fn prediction_is_at_least_computation() {
        let p = predictor();
        let t = p.profile().total_waves;
        for partition in [
            WavePartition::single(t),
            WavePartition::per_wave(t),
            WavePartition::new(vec![1, t - 1]),
        ] {
            assert!(p.predict(&partition) > p.profile().gemm_duration);
        }
    }

    #[test]
    fn group_completions_are_monotone_and_end_at_prediction() {
        let p = predictor();
        let t = p.profile().total_waves;
        let partition = WavePartition::new(vec![2; t as usize / 2]);
        let completions = p.predict_group_completions(&partition);
        assert_eq!(completions.len(), partition.num_groups());
        for pair in completions.windows(2) {
            assert!(pair[0] <= pair[1], "completions must not go backwards");
        }
        assert_eq!(*completions.last().unwrap(), p.predict(&partition));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_wave_count_panics() {
        let p = predictor();
        let _ = p.predict(&WavePartition::new(vec![1, 1]));
    }
}
