//! Multi-layer overlapped pipelines (extension).
//!
//! The paper evaluates single operators; real deployments chain them:
//! every transformer layer runs GEMM + collective (+ norm/activation)
//! twice, feeding the next layer. A [`Pipeline`] executes a sequence of
//! tuned [`OverlapPlan`]s in *one* simulation — each layer's GEMM is
//! enqueued behind the previous layer's fused epilogue on the same
//! compute stream, so launch behaviour, SM contention, and signaling all
//! compose exactly as they would on a device, and in functional mode
//! real activations flow layer to layer.

use gpu_sim::elementwise::ElementwiseOp;
use gpu_sim::gemm::GemmDims;
use gpu_sim::ClusterSim;
use sim::{Sim, SimDuration};
use tensor::Matrix;

use crate::error::FlashOverlapError;
use crate::runtime::{CommPattern, FunctionalInputs, OverlapPlan, RunReport, StreamCtx};
use crate::system::SystemSpec;
use crate::tuner::predictive_search;

/// One pipeline stage: a communicated GEMM plus the element-wise
/// epilogue that feeds the next stage.
#[derive(Debug)]
pub struct LayerSpec {
    /// Local GEMM dimensions of this layer.
    pub dims: GemmDims,
    /// Communication pattern after the GEMM.
    pub pattern: CommPattern,
    /// Fused post-communication epilogue. Required for every layer except
    /// the last (the next layer consumes its logical output).
    pub epilogue: Option<ElementwiseOp>,
}

/// A tuned multi-layer pipeline.
///
/// # Examples
///
/// ```
/// use flashoverlap::pipeline::{LayerSpec, Pipeline};
/// use flashoverlap::runtime::CommPattern;
/// use flashoverlap::SystemSpec;
/// use gpu_sim::elementwise::ElementwiseOp;
/// use gpu_sim::gemm::GemmDims;
/// use std::rc::Rc;
///
/// let dims = GemmDims::new(2048, 2048, 2048);
/// let rms = ElementwiseOp::RmsNorm { weight: Rc::new(vec![1.0; 2048]), eps: 1e-6 };
/// let pipeline = Pipeline::tuned(
///     SystemSpec::rtx4090(4),
///     vec![
///         LayerSpec { dims, pattern: CommPattern::AllReduce, epilogue: Some(rms) },
///         LayerSpec { dims, pattern: CommPattern::AllReduce, epilogue: None },
///     ],
/// )?;
/// let outcome = pipeline.execute_with(&flashoverlap::PipelineExecOptions::new())?;
/// assert_eq!(outcome.report.layers.len(), 2);
/// # Ok::<(), flashoverlap::FlashOverlapError>(())
/// ```
#[derive(Debug)]
pub struct Pipeline {
    /// Target system.
    pub system: SystemSpec,
    plans: Vec<OverlapPlan>,
    epilogues: Vec<Option<ElementwiseOp>>,
}

/// Timing results of a pipeline execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    /// End-to-end simulated time.
    pub total: SimDuration,
    /// Per-layer operator reports (latencies are absolute simulation
    /// times, monotone across layers).
    pub layers: Vec<RunReport>,
}

/// Functional pipeline results.
#[derive(Debug, Clone)]
pub struct FunctionalPipelineReport {
    /// Timing.
    pub report: PipelineReport,
    /// Per-rank logical outputs of the final layer.
    pub outputs: Vec<Matrix>,
}

/// Options for [`Pipeline::execute_with`] — the pipeline mirror of
/// [`crate::runtime::ExecOptions`]. Default options run the whole
/// pipeline in timing mode.
#[derive(Debug, Default)]
pub struct PipelineExecOptions<'a> {
    instrument: Option<&'a crate::runtime::Instrumentation>,
    mutate_layer: usize,
    functional: Option<(&'a [Matrix], &'a [Vec<Matrix>])>,
}

impl<'a> PipelineExecOptions<'a> {
    /// Plain timing-mode options.
    pub fn new() -> Self {
        PipelineExecOptions::default()
    }

    /// Attaches observation hooks — the sanitizer entry point for the
    /// multi-layer path. A seeded [`crate::runtime::SignalMutation`]
    /// applies to the layer selected by
    /// [`PipelineExecOptions::mutate_layer`], and a wedge it causes is
    /// left for the attached probe to report at drain time, not an
    /// error.
    pub fn instrument(mut self, instr: &'a crate::runtime::Instrumentation) -> Self {
        self.instrument = Some(instr);
        self
    }

    /// Selects the layer a seeded mutation applies to (default: 0).
    pub fn mutate_layer(mut self, layer: usize) -> Self {
        self.mutate_layer = layer;
        self
    }

    /// Functional mode: layer 0 consumes `first_a`; every later layer
    /// consumes the previous layer's fused epilogue output;
    /// `weights[l]` is layer `l`'s per-rank `K x N` operand set.
    pub fn functional(mut self, first_a: &'a [Matrix], weights: &'a [Vec<Matrix>]) -> Self {
        self.functional = Some((first_a, weights));
        self
    }
}

/// Unified results of [`Pipeline::execute_with`].
#[derive(Debug, Clone)]
pub struct PipelineExecOutcome {
    /// Per-layer timing.
    pub report: PipelineReport,
    /// Per-rank logical outputs of the final layer (functional mode
    /// only).
    pub outputs: Option<Vec<Matrix>>,
}

impl Pipeline {
    /// Builds a pipeline, tuning every layer's wave partition with the
    /// predictive search.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] if a non-final layer lacks
    /// an epilogue or consecutive layers' shapes do not chain
    /// (`layer l` logical output must be the `M x K` activation of
    /// `layer l+1` on every rank), and propagates plan-construction
    /// errors.
    pub fn tuned(system: SystemSpec, layers: Vec<LayerSpec>) -> Result<Self, FlashOverlapError> {
        if layers.is_empty() {
            return Err(FlashOverlapError::BadInputs {
                reason: "pipeline needs at least one layer".into(),
            });
        }
        let mut plans = Vec::with_capacity(layers.len());
        let mut epilogues = Vec::with_capacity(layers.len());
        for (i, layer) in layers.into_iter().enumerate() {
            let outcome = predictive_search(layer.dims, layer.pattern.primitive(), &system);
            let plan =
                OverlapPlan::new(layer.dims, layer.pattern, system.clone(), outcome.partition)?;
            if let Some(prev) = plans.last() {
                let prev_plan: &OverlapPlan = prev;
                let (rows, cols) = prev_plan.logical_shape(0);
                if matches!(prev_plan.pattern(), CommPattern::AllToAll { .. }) {
                    return Err(FlashOverlapError::BadInputs {
                        reason: "cannot chain after All-to-All: per-rank row counts vary".into(),
                    });
                }
                if rows != plan.dims.m as usize || cols != plan.dims.k as usize {
                    return Err(FlashOverlapError::BadInputs {
                        reason: format!(
                            "layer {i} expects {}x{} activations but the previous layer \
                             produces {rows}x{cols}",
                            plan.dims.m, plan.dims.k
                        ),
                    });
                }
                if epilogues.last().is_some_and(Option::is_none) {
                    return Err(FlashOverlapError::BadInputs {
                        reason: format!("layer {} needs an epilogue to feed layer {i}", i - 1),
                    });
                }
            }
            if let Some(op) = &layer.epilogue {
                plan.validate_epilogue(op)?;
            }
            plans.push(plan);
            epilogues.push(layer.epilogue);
        }
        Ok(Pipeline {
            system,
            plans,
            epilogues,
        })
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.plans.len()
    }

    /// The tuned per-layer plans.
    pub fn plans(&self) -> &[OverlapPlan] {
        &self.plans
    }

    /// Runs the whole pipeline with the given options — the single
    /// execute entry point, mirroring [`OverlapPlan::execute_with`].
    /// Default options give plain timing mode; combine
    /// [`PipelineExecOptions::instrument`] and
    /// [`PipelineExecOptions::functional`] freely.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] on an out-of-range
    /// mutation layer or malformed functional inputs, and
    /// [`FlashOverlapError::Simulation`] on engine failure.
    pub fn execute_with(
        &self,
        options: &PipelineExecOptions,
    ) -> Result<PipelineExecOutcome, FlashOverlapError> {
        if options.mutate_layer >= self.plans.len() {
            return Err(FlashOverlapError::BadInputs {
                reason: format!(
                    "mutation targets layer {} of a {}-layer pipeline",
                    options.mutate_layer,
                    self.plans.len()
                ),
            });
        }
        let n = self.system.n_gpus;
        let default_instr = crate::runtime::Instrumentation::default();
        let instr = options.instrument.unwrap_or(&default_instr);
        let inputs: Option<Vec<FunctionalInputs>> = match options.functional {
            Some((first_a, weights)) => {
                if weights.len() != self.plans.len() {
                    return Err(FlashOverlapError::BadInputs {
                        reason: format!(
                            "{} weight sets for {} layers",
                            weights.len(),
                            self.plans.len()
                        ),
                    });
                }
                let inputs: Vec<FunctionalInputs> = (0..self.plans.len())
                    .map(|l| FunctionalInputs {
                        a: if l == 0 {
                            first_a.to_vec()
                        } else {
                            // Placeholder with the right shape; the runtime
                            // reads activations from the previous layer's
                            // buffer.
                            vec![
                                Matrix::zeros(
                                    self.plans[l].dims.m as usize,
                                    self.plans[l].dims.k as usize
                                );
                                n
                            ]
                        },
                        b: weights[l].clone(),
                    })
                    .collect();
                for (l, inp) in inputs.iter().enumerate() {
                    self.plans[l].check_inputs_pub(inp)?;
                }
                Some(inputs)
            }
            None => None,
        };
        let mut world = self.system.build_cluster(inputs.is_some());
        if let Some(monitor) = &instr.monitor {
            world.set_monitor(std::rc::Rc::clone(monitor));
        }
        let mut sim: ClusterSim = Sim::new();
        if let Some(probe) = &instr.probe {
            sim.set_probe(std::rc::Rc::clone(probe));
        }
        let (reports, handles) = self.enqueue_all(
            &mut world,
            &mut sim,
            inputs.as_deref(),
            instr.mutation.map(|m| (options.mutate_layer, m)),
        )?;
        let end = sim.run(&mut world)?;
        let outputs = inputs.is_some().then(|| {
            let last = self.plans.len() - 1;
            match &self.epilogues[last] {
                Some(_) => (0..n)
                    .map(|d| {
                        let (rows, cols) = self.plans[last].logical_shape(d);
                        let buf = handles.epilogue_bufs[d].expect("epilogue requested");
                        Matrix::from_vec(rows, cols, world.devices[d].mem.snapshot(buf))
                    })
                    .collect(),
                None => self.plans[last].extract_outputs(&world, &handles),
            }
        });
        Ok(PipelineExecOutcome {
            report: PipelineReport {
                total: end - sim::SimTime::ZERO,
                layers: reports
                    .into_iter()
                    .map(crate::runtime::Probes::into_report)
                    .collect(),
            },
            outputs,
        })
    }

    /// Runs the whole pipeline in timing mode.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    #[deprecated(note = "use execute_with(&PipelineExecOptions::new())")]
    pub fn execute(&self) -> Result<PipelineReport, FlashOverlapError> {
        Ok(self.execute_with(&PipelineExecOptions::new())?.report)
    }

    /// Runs the whole pipeline in timing mode with observation hooks
    /// attached; the seeded mutation applies to layer `mutate_layer`.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] if `mutate_layer` is out
    /// of range, and [`FlashOverlapError::Simulation`] on engine failure.
    #[deprecated(
        note = "use execute_with(&PipelineExecOptions::new().instrument(instr).mutate_layer(l))"
    )]
    pub fn execute_instrumented(
        &self,
        instr: &crate::runtime::Instrumentation,
        mutate_layer: usize,
    ) -> Result<PipelineReport, FlashOverlapError> {
        let options = PipelineExecOptions::new()
            .instrument(instr)
            .mutate_layer(mutate_layer);
        Ok(self.execute_with(&options)?.report)
    }

    /// Runs the whole pipeline functionally.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed inputs or simulation failure.
    #[deprecated(
        note = "use execute_with(&PipelineExecOptions::new().functional(first_a, weights))"
    )]
    pub fn execute_functional(
        &self,
        first_a: &[Matrix],
        weights: &[Vec<Matrix>],
    ) -> Result<FunctionalPipelineReport, FlashOverlapError> {
        let out = self.execute_with(&PipelineExecOptions::new().functional(first_a, weights))?;
        Ok(FunctionalPipelineReport {
            report: out.report,
            outputs: out.outputs.unwrap_or_default(),
        })
    }

    fn enqueue_all(
        &self,
        world: &mut gpu_sim::Cluster,
        sim: &mut ClusterSim,
        inputs: Option<&[FunctionalInputs]>,
        mutation: Option<(usize, crate::runtime::SignalMutation)>,
    ) -> Result<(Vec<crate::runtime::Probes>, crate::runtime::ProgramHandles), FlashOverlapError>
    {
        use gpu_sim::stream::{enqueue, RecordEvent, ResetCounter, WaitEvent};

        let n = self.system.n_gpus;
        let streams = StreamCtx::create(world, n);
        let mut probes = Vec::with_capacity(self.plans.len());
        let mut prev_outputs: Option<Vec<gpu_sim::memory::BufferId>> = None;
        let mut last_handles = None;
        // Counting tables are allocated once, sized for the widest layer,
        // and ping-ponged between two sets across layers (steady-state
        // double buffering): layer `l`'s signals must not land in a table
        // whose waits layer `l - 1` still consumes.
        let max_groups = self
            .plans
            .iter()
            .map(|p| p.group_tile_counts().len())
            .max()
            .unwrap_or(0);
        let table_sets: [Vec<usize>; 2] = std::array::from_fn(|_| {
            (0..n)
                .map(|d| world.devices[d].create_counter(max_groups))
                .collect()
        });
        // Per set: comm-done events of the layer that last used it.
        let mut last_use: [Option<Vec<gpu_sim::GpuEventId>>; 2] = [None, None];
        for (l, plan) in self.plans.iter().enumerate() {
            let parity = l % 2;
            if let Some(events) = last_use[parity].take() {
                // Reuse: reset the tables on the compute stream, ordered
                // after the previous user's comm stream drained its waits.
                for d in 0..n {
                    enqueue(
                        world,
                        sim,
                        d,
                        streams.compute[d],
                        Box::new(WaitEvent(events[d])),
                    );
                    enqueue(
                        world,
                        sim,
                        d,
                        streams.compute[d],
                        Box::new(ResetCounter {
                            table: table_sets[parity][d],
                        }),
                    );
                    // The comm stream must not consult the table before the
                    // reset lands: a stale (pre-reset) count would satisfy
                    // the new layer's wait and release its collective
                    // before any tile is written. (SimSan flags exactly
                    // this as use-before-signal when the edge is missing.)
                    let ready = world.devices[d].create_event();
                    enqueue(
                        world,
                        sim,
                        d,
                        streams.compute[d],
                        Box::new(RecordEvent(ready)),
                    );
                    enqueue(world, sim, d, streams.comm[d], Box::new(WaitEvent(ready)));
                }
            }
            let layer_inputs = inputs.map(|i| &i[l]);
            let layer_mutation = mutation.and_then(|(target, m)| (target == l).then_some(m));
            let handles = plan.enqueue_program_on(
                world,
                sim,
                layer_inputs,
                self.epilogues[l].as_ref(),
                &streams,
                prev_outputs.as_deref(),
                layer_mutation,
                Some(&table_sets[parity]),
            );
            let events: Vec<gpu_sim::GpuEventId> = (0..n)
                .map(|d| {
                    let ev = world.devices[d].create_event();
                    enqueue(world, sim, d, streams.comm[d], Box::new(RecordEvent(ev)));
                    ev
                })
                .collect();
            last_use[parity] = Some(events);
            prev_outputs = self.epilogues[l].as_ref().map(|_| {
                (0..n)
                    .map(|d| handles.epilogue_bufs[d].expect("epilogue requested"))
                    .collect()
            });
            probes.push(handles.probes_snapshot());
            last_handles = Some(handles);
        }
        Ok((probes, last_handles.expect("at least one layer")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use tensor::{allclose, gemm, rmsnorm};

    fn small_system(n: usize) -> SystemSpec {
        let mut spec = SystemSpec::rtx4090(n);
        spec.arch.sm_count = 8;
        spec.comm_sms = 2;
        spec
    }

    fn rms_op(cols: usize) -> ElementwiseOp {
        ElementwiseOp::RmsNorm {
            weight: Rc::new(vec![1.0; cols]),
            eps: 1e-6,
        }
    }

    #[test]
    fn two_layer_pipeline_matches_reference_numerics() {
        // Layer 1: (256x128x64) + AllReduce + RMSNorm; layer 2 consumes
        // the normalized activations: (256x64x128) + AllReduce.
        let system = small_system(2);
        let l1 = GemmDims::new(256, 128, 64);
        let l2 = GemmDims::new(256, 64, 128);
        let pipeline = Pipeline::tuned(
            system,
            vec![
                LayerSpec {
                    dims: l1,
                    pattern: CommPattern::AllReduce,
                    epilogue: Some(rms_op(128)),
                },
                LayerSpec {
                    dims: l2,
                    pattern: CommPattern::AllReduce,
                    epilogue: None,
                },
            ],
        )
        .unwrap();

        let mut rng = sim::DetRng::new(8);
        let first_a: Vec<Matrix> = (0..2).map(|_| Matrix::random(256, 64, &mut rng)).collect();
        let weights: Vec<Vec<Matrix>> = vec![
            (0..2).map(|_| Matrix::random(64, 128, &mut rng)).collect(),
            (0..2).map(|_| Matrix::random(128, 64, &mut rng)).collect(),
        ];
        let result = pipeline
            .execute_with(&PipelineExecOptions::new().functional(&first_a, &weights))
            .unwrap();

        // Reference: layer 1 reduce + rmsnorm, then layer 2 reduce.
        let h1 = gemm(&first_a[0], &weights[0][0]).add(&gemm(&first_a[1], &weights[0][1]));
        let act = rmsnorm(&h1, &vec![1.0; 128], 1e-6);
        let h2 = gemm(&act, &weights[1][0]).add(&gemm(&act, &weights[1][1]));
        for (d, out) in result
            .outputs
            .as_deref()
            .unwrap_or_default()
            .iter()
            .enumerate()
        {
            assert!(allclose(out, &h2, 5e-2), "rank {d}");
        }
        assert_eq!(result.report.layers.len(), 2);
        assert!(result.report.total >= result.report.layers[1].latency);
    }

    #[test]
    fn pipeline_timing_is_monotone_across_layers() {
        let system = SystemSpec::rtx4090(4);
        let dims = GemmDims::new(2048, 2048, 2048);
        let pipeline = Pipeline::tuned(
            system,
            vec![
                LayerSpec {
                    dims,
                    pattern: CommPattern::AllReduce,
                    epilogue: Some(rms_op(2048)),
                },
                LayerSpec {
                    dims,
                    pattern: CommPattern::AllReduce,
                    epilogue: Some(rms_op(2048)),
                },
                LayerSpec {
                    dims,
                    pattern: CommPattern::AllReduce,
                    epilogue: None,
                },
            ],
        )
        .unwrap();
        let report = pipeline
            .execute_with(&PipelineExecOptions::new())
            .unwrap()
            .report;
        assert_eq!(report.layers.len(), 3);
        for pair in report.layers.windows(2) {
            assert!(pair[0].latency < pair[1].latency, "layers run in order");
        }
        assert!(report.total >= report.layers[2].latency);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let system = small_system(2);
        let err = Pipeline::tuned(
            system,
            vec![
                LayerSpec {
                    dims: GemmDims::new(256, 128, 64),
                    pattern: CommPattern::AllReduce,
                    epilogue: Some(rms_op(128)),
                },
                LayerSpec {
                    dims: GemmDims::new(256, 64, 999),
                    pattern: CommPattern::AllReduce,
                    epilogue: None,
                },
            ],
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, FlashOverlapError::BadInputs { .. }));
    }

    #[test]
    fn missing_intermediate_epilogue_is_rejected() {
        let system = small_system(2);
        let err = Pipeline::tuned(
            system,
            vec![
                LayerSpec {
                    dims: GemmDims::new(256, 128, 64),
                    pattern: CommPattern::AllReduce,
                    epilogue: None,
                },
                LayerSpec {
                    dims: GemmDims::new(256, 64, 128),
                    pattern: CommPattern::AllReduce,
                    epilogue: None,
                },
            ],
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, FlashOverlapError::BadInputs { .. }));
    }

    #[test]
    fn empty_pipeline_is_rejected() {
        assert!(matches!(
            Pipeline::tuned(small_system(2), vec![]).map(|_| ()),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }
}
