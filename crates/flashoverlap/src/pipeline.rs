//! Multi-layer overlapped pipelines (extension).
//!
//! The paper evaluates single operators; real deployments chain them:
//! every transformer layer runs GEMM + collective (+ norm/activation)
//! twice, feeding the next layer. A [`Pipeline`] executes a sequence of
//! tuned [`OverlapPlan`]s in *one* simulation — each layer's GEMM is
//! enqueued behind the previous layer's fused epilogue on the same
//! compute stream, so launch behaviour, SM contention, and signaling all
//! compose exactly as they would on a device, and in functional mode
//! real activations flow layer to layer.

use std::cell::RefCell;
use std::rc::Rc;

use gpu_sim::elementwise::ElementwiseOp;
use gpu_sim::gemm::GemmDims;
use gpu_sim::{ClusterSim, RuntimeEvent};
use sim::{Sim, SimDuration};
use tensor::Matrix;

use crate::chain::{
    arm_cluster_faults, check_quiescent_chain, drive_chain, enqueue_segment_faults,
    validate_chain_faults, ChainSegment, EventLog,
};
use crate::error::FlashOverlapError;
use crate::resilience::{FaultPlan, ResilientOutcome, WatchdogConfig};
use crate::runtime::{CommPattern, FunctionalInputs, OverlapPlan, RunReport, StreamCtx};
use crate::system::SystemSpec;
use crate::tuner::predictive_search;

/// One pipeline stage: a communicated GEMM plus the element-wise
/// epilogue that feeds the next stage.
#[derive(Debug)]
pub struct LayerSpec {
    /// Local GEMM dimensions of this layer.
    pub dims: GemmDims,
    /// Communication pattern after the GEMM.
    pub pattern: CommPattern,
    /// Fused post-communication epilogue. Required for every layer except
    /// the last (the next layer consumes its logical output).
    pub epilogue: Option<ElementwiseOp>,
}

/// A tuned multi-layer pipeline.
///
/// # Examples
///
/// ```
/// use flashoverlap::pipeline::{LayerSpec, Pipeline};
/// use flashoverlap::runtime::CommPattern;
/// use flashoverlap::SystemSpec;
/// use gpu_sim::elementwise::ElementwiseOp;
/// use gpu_sim::gemm::GemmDims;
/// use std::rc::Rc;
///
/// let dims = GemmDims::new(2048, 2048, 2048);
/// let rms = ElementwiseOp::RmsNorm { weight: Rc::new(vec![1.0; 2048]), eps: 1e-6 };
/// let pipeline = Pipeline::tuned(
///     SystemSpec::rtx4090(4),
///     vec![
///         LayerSpec { dims, pattern: CommPattern::AllReduce, epilogue: Some(rms) },
///         LayerSpec { dims, pattern: CommPattern::AllReduce, epilogue: None },
///     ],
/// )?;
/// let outcome = pipeline.execute_with(&flashoverlap::PipelineExecOptions::new())?;
/// assert_eq!(outcome.report.layers.len(), 2);
/// # Ok::<(), flashoverlap::FlashOverlapError>(())
/// ```
#[derive(Debug)]
pub struct Pipeline {
    /// Target system.
    pub system: SystemSpec,
    plans: Vec<OverlapPlan>,
    epilogues: Vec<Option<ElementwiseOp>>,
}

/// Timing results of a pipeline execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    /// End-to-end simulated time.
    pub total: SimDuration,
    /// Per-layer operator reports (latencies are absolute simulation
    /// times, monotone across layers).
    pub layers: Vec<RunReport>,
}

/// Options for [`Pipeline::execute_with`] — the pipeline mirror of
/// [`crate::runtime::ExecOptions`]. Default options run the whole
/// pipeline in timing mode.
#[derive(Debug, Default)]
pub struct PipelineExecOptions<'a> {
    instrument: Option<&'a crate::runtime::Instrumentation>,
    mutate_layer: usize,
    functional: Option<(&'a [Matrix], &'a [Vec<Matrix>])>,
    resilient: Option<(&'a [FaultPlan], &'a WatchdogConfig)>,
}

impl<'a> PipelineExecOptions<'a> {
    /// Plain timing-mode options.
    pub fn new() -> Self {
        PipelineExecOptions::default()
    }

    /// Attaches observation hooks — the sanitizer entry point for the
    /// multi-layer path. A seeded [`crate::runtime::SignalMutation`]
    /// applies to the layer selected by
    /// [`PipelineExecOptions::mutate_layer`], and a wedge it causes is
    /// left for the attached probe to report at drain time, not an
    /// error.
    pub fn instrument(mut self, instr: &'a crate::runtime::Instrumentation) -> Self {
        self.instrument = Some(instr);
        self
    }

    /// Selects the layer a seeded mutation applies to (default: 0).
    pub fn mutate_layer(mut self, layer: usize) -> Self {
        self.mutate_layer = layer;
        self
    }

    /// Functional mode: layer 0 consumes `first_a`; every later layer
    /// consumes the previous layer's fused epilogue output;
    /// `weights[l]` is layer `l`'s per-rank `K x N` operand set.
    pub fn functional(mut self, first_a: &'a [Matrix], weights: &'a [Vec<Matrix>]) -> Self {
        self.functional = Some((first_a, weights));
        self
    }

    /// Runs the pipeline under the chain watchdog with deterministic
    /// fault injection: `faults[l]` arms at layer `l`'s position in the
    /// stream order (the table-quarantine rule disarms whatever budget
    /// the previous same-parity layer left on the inherited table), and
    /// a wedge at layer `k` is broken by the escalation ladder without
    /// poisoning the double-buffered tables layer `k + 1` inherits. One
    /// [`ResilientOutcome`] per layer lands in
    /// [`PipelineExecOutcome::outcomes`]. Incompatible with
    /// probe/mutation instrumentation.
    pub fn resilient(mut self, faults: &'a [FaultPlan], watchdog: &'a WatchdogConfig) -> Self {
        self.resilient = Some((faults, watchdog));
        self
    }
}

/// Unified results of [`Pipeline::execute_with`].
#[derive(Debug, Clone)]
pub struct PipelineExecOutcome {
    /// Per-layer timing.
    pub report: PipelineReport,
    /// Per-rank logical outputs of the final layer (functional mode
    /// only).
    pub outputs: Option<Vec<Matrix>>,
    /// Per-layer termination outcome. All `Clean` on non-resilient runs;
    /// under [`PipelineExecOptions::resilient`], layer `k` wedging ends
    /// it `Recovered`/`Degraded` while later layers report how they rode
    /// out the recovery.
    pub outcomes: Vec<ResilientOutcome>,
    /// Fault/recovery timeline of a resilient run (empty otherwise).
    pub events: Vec<RuntimeEvent>,
    /// Total faults armed across all layers of a resilient run.
    pub faults_armed: usize,
}

impl Pipeline {
    /// Builds a pipeline, tuning every layer's wave partition with the
    /// predictive search.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] if a non-final layer lacks
    /// an epilogue or consecutive layers' shapes do not chain
    /// (`layer l` logical output must be the `M x K` activation of
    /// `layer l+1` on every rank), and propagates plan-construction
    /// errors.
    pub fn tuned(system: SystemSpec, layers: Vec<LayerSpec>) -> Result<Self, FlashOverlapError> {
        let mut plans = Vec::with_capacity(layers.len());
        let mut epilogues = Vec::with_capacity(layers.len());
        for layer in layers {
            let outcome = predictive_search(layer.dims, layer.pattern.primitive(), &system);
            plans.push(OverlapPlan::new(
                layer.dims,
                layer.pattern,
                system.clone(),
                outcome.partition,
            )?);
            epilogues.push(layer.epilogue);
        }
        Pipeline::with_plans(system, plans, epilogues)
    }

    /// Builds a pipeline from pre-tuned plans — one per layer, with
    /// `epilogues[l]` the fused epilogue feeding layer `l + 1` — without
    /// re-running the partition search. Use this to pin explicit wave
    /// partitions (e.g. a per-wave partition per layer) instead of the
    /// predictive tuner's choice.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] under the same chaining
    /// rules as [`Pipeline::tuned`], on a plan/epilogue count mismatch,
    /// or when a plan targets a different rank count than `system`.
    pub fn with_plans(
        system: SystemSpec,
        plans: Vec<OverlapPlan>,
        epilogues: Vec<Option<ElementwiseOp>>,
    ) -> Result<Self, FlashOverlapError> {
        if plans.is_empty() {
            return Err(FlashOverlapError::BadInputs {
                reason: "pipeline needs at least one layer".into(),
            });
        }
        if epilogues.len() != plans.len() {
            return Err(FlashOverlapError::BadInputs {
                reason: format!(
                    "{} epilogue slots for {} layers",
                    epilogues.len(),
                    plans.len()
                ),
            });
        }
        for (i, plan) in plans.iter().enumerate() {
            if plan.system.n_gpus != system.n_gpus {
                return Err(FlashOverlapError::BadInputs {
                    reason: format!(
                        "layer {i} targets {} ranks but the pipeline runs on {}",
                        plan.system.n_gpus, system.n_gpus
                    ),
                });
            }
            if i > 0 {
                let prev_plan = &plans[i - 1];
                let (rows, cols) = prev_plan.logical_shape(0);
                if matches!(prev_plan.pattern(), CommPattern::AllToAll { .. }) {
                    return Err(FlashOverlapError::BadInputs {
                        reason: "cannot chain after All-to-All: per-rank row counts vary".into(),
                    });
                }
                if rows != plan.dims.m as usize || cols != plan.dims.k as usize {
                    return Err(FlashOverlapError::BadInputs {
                        reason: format!(
                            "layer {i} expects {}x{} activations but the previous layer \
                             produces {rows}x{cols}",
                            plan.dims.m, plan.dims.k
                        ),
                    });
                }
                if epilogues[i - 1].is_none() {
                    return Err(FlashOverlapError::BadInputs {
                        reason: format!("layer {} needs an epilogue to feed layer {i}", i - 1),
                    });
                }
            }
            if let Some(op) = &epilogues[i] {
                plan.validate_epilogue(op)?;
            }
        }
        Ok(Pipeline {
            system,
            plans,
            epilogues,
        })
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.plans.len()
    }

    /// The tuned per-layer plans.
    pub fn plans(&self) -> &[OverlapPlan] {
        &self.plans
    }

    /// Runs the whole pipeline with the given options — the single
    /// execute entry point, mirroring [`OverlapPlan::execute_with`].
    /// Default options give plain timing mode; combine
    /// [`PipelineExecOptions::instrument`] and
    /// [`PipelineExecOptions::functional`] freely.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] on an out-of-range
    /// mutation layer or malformed functional inputs, and
    /// [`FlashOverlapError::Simulation`] on engine failure.
    pub fn execute_with(
        &self,
        options: &PipelineExecOptions,
    ) -> Result<PipelineExecOutcome, FlashOverlapError> {
        if options.mutate_layer >= self.plans.len() {
            return Err(FlashOverlapError::BadInputs {
                reason: format!(
                    "mutation targets layer {} of a {}-layer pipeline",
                    options.mutate_layer,
                    self.plans.len()
                ),
            });
        }
        let n = self.system.n_gpus;
        let default_instr = crate::runtime::Instrumentation::default();
        let instr = options.instrument.unwrap_or(&default_instr);
        if let Some((faults, _)) = options.resilient {
            let plan_refs: Vec<&OverlapPlan> = self.plans.iter().collect();
            validate_chain_faults(&plan_refs, faults)?;
            if instr.probe.is_some() || instr.mutation.is_some() {
                return Err(FlashOverlapError::BadInputs {
                    reason: "resilient pipelines inject faults through FaultPlan, \
                             not probes or signal mutations"
                        .into(),
                });
            }
        }
        let inputs: Option<Vec<FunctionalInputs>> = match options.functional {
            Some((first_a, weights)) => {
                if weights.len() != self.plans.len() {
                    return Err(FlashOverlapError::BadInputs {
                        reason: format!(
                            "{} weight sets for {} layers",
                            weights.len(),
                            self.plans.len()
                        ),
                    });
                }
                let inputs: Vec<FunctionalInputs> = (0..self.plans.len())
                    .map(|l| FunctionalInputs {
                        a: if l == 0 {
                            first_a.to_vec()
                        } else {
                            // Placeholder with the right shape; the runtime
                            // reads activations from the previous layer's
                            // buffer.
                            vec![
                                Matrix::zeros(
                                    self.plans[l].dims.m as usize,
                                    self.plans[l].dims.k as usize
                                );
                                n
                            ]
                        },
                        b: weights[l].clone(),
                    })
                    .collect();
                for (l, inp) in inputs.iter().enumerate() {
                    self.plans[l].check_inputs_pub(inp)?;
                }
                Some(inputs)
            }
            None => None,
        };
        let mut world = self.system.build_cluster(inputs.is_some());
        if let Some(monitor) = &instr.monitor {
            world.set_monitor(std::rc::Rc::clone(monitor));
        }
        let mut sim: ClusterSim = Sim::new();
        if let Some(probe) = &instr.probe {
            sim.set_probe(std::rc::Rc::clone(probe));
        }
        // Cluster-level faults (degraded links, stalls, stragglers) exist
        // before the chain starts, whichever layer's plan armed them.
        let log: EventLog = Rc::new(RefCell::new(Vec::new()));
        let faults_armed = match options.resilient {
            Some((faults, _)) => arm_cluster_faults(&mut world, &sim, faults, &log),
            None => 0,
        };
        let streams = StreamCtx::create(&mut world, n);
        let segments = self.enqueue_all(
            &mut world,
            &mut sim,
            &streams,
            inputs.as_deref(),
            instr.mutation.map(|m| (options.mutate_layer, m)),
            options.resilient.map(|(faults, _)| faults),
            &log,
        );
        let (end, outcomes) = if let Some((_, watchdog)) = options.resilient {
            let plan_refs: Vec<&OverlapPlan> = self.plans.iter().collect();
            let run = drive_chain(
                &mut world, &mut sim, &plan_refs, &segments, &streams, watchdog, &log,
            )?;
            (run.end, run.outcomes)
        } else {
            let end = sim.run(&mut world)?;
            let instrumented =
                instr.monitor.is_some() || instr.probe.is_some() || instr.mutation.is_some();
            if !instrumented {
                check_quiescent_chain(&world, &segments)?;
            }
            (end, vec![ResilientOutcome::Clean; self.plans.len()])
        };
        let last_handles = &segments.last().expect("at least one layer").handles;
        let outputs = inputs.is_some().then(|| {
            let last = self.plans.len() - 1;
            match &self.epilogues[last] {
                Some(_) => (0..n)
                    .map(|d| {
                        let (rows, cols) = self.plans[last].logical_shape(d);
                        let buf = last_handles.epilogue_bufs[d].expect("epilogue requested");
                        Matrix::from_vec(rows, cols, world.devices[d].mem.snapshot(buf))
                    })
                    .collect(),
                None => self.plans[last].extract_outputs(&world, last_handles),
            }
        });
        Ok(PipelineExecOutcome {
            report: PipelineReport {
                total: end - sim::SimTime::ZERO,
                layers: segments
                    .iter()
                    .map(|s| s.handles.probes_snapshot().into_report())
                    .collect(),
            },
            outputs,
            outcomes,
            events: Rc::try_unwrap(log).map_or_else(|rc| rc.borrow().clone(), RefCell::into_inner),
            faults_armed,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn enqueue_all(
        &self,
        world: &mut gpu_sim::Cluster,
        sim: &mut ClusterSim,
        streams: &StreamCtx,
        inputs: Option<&[FunctionalInputs]>,
        mutation: Option<(usize, crate::runtime::SignalMutation)>,
        faults: Option<&[FaultPlan]>,
        log: &EventLog,
    ) -> Vec<ChainSegment> {
        use gpu_sim::stream::{enqueue, RecordEvent, ResetCounter, WaitEvent};

        let n = self.system.n_gpus;
        let mut segments: Vec<ChainSegment> = Vec::with_capacity(self.plans.len());
        let mut prev_outputs: Option<Vec<gpu_sim::memory::BufferId>> = None;
        // Counting tables are allocated once, sized for the widest layer,
        // and ping-ponged between two sets across layers (steady-state
        // double buffering): layer `l`'s signals must not land in a table
        // whose waits layer `l - 1` still consumes.
        let max_groups = self
            .plans
            .iter()
            .map(|p| p.group_tile_counts().len())
            .max()
            .unwrap_or(0);
        let table_sets: [Vec<usize>; 2] = std::array::from_fn(|_| {
            (0..n)
                .map(|d| world.devices[d].create_counter(max_groups))
                .collect()
        });
        // Per set: comm-done events of the layer that last used it.
        let mut last_use: [Option<Vec<gpu_sim::GpuEventId>>; 2] = [None, None];
        for (l, plan) in self.plans.iter().enumerate() {
            let parity = l % 2;
            let mut ready_events: Option<Vec<gpu_sim::GpuEventId>> = None;
            if let Some(events) = last_use[parity].take() {
                // Reuse: reset the tables on the compute stream, ordered
                // after the previous user's comm stream drained its waits.
                let mut readies = Vec::with_capacity(n);
                for d in 0..n {
                    enqueue(
                        world,
                        sim,
                        d,
                        streams.compute[d],
                        Box::new(WaitEvent(events[d])),
                    );
                    enqueue(
                        world,
                        sim,
                        d,
                        streams.compute[d],
                        Box::new(ResetCounter {
                            table: table_sets[parity][d],
                        }),
                    );
                    // The comm stream must not consult the table before the
                    // reset lands: a stale (pre-reset) count would satisfy
                    // the new layer's wait and release its collective
                    // before any tile is written. (SimSan flags exactly
                    // this as use-before-signal when the edge is missing.)
                    let ready = world.devices[d].create_event();
                    readies.push(ready);
                    enqueue(
                        world,
                        sim,
                        d,
                        streams.compute[d],
                        Box::new(RecordEvent(ready)),
                    );
                    enqueue(world, sim, d, streams.comm[d], Box::new(WaitEvent(ready)));
                }
                ready_events = Some(readies);
            }
            if let Some(faults) = faults {
                // Between the rearm (reset) and the program: the arming
                // callback quarantines leftover budget on the inherited
                // table, then arms this layer's own faults.
                if let Some(fp) = faults.get(l) {
                    enqueue_segment_faults(world, sim, streams, l, fp, &table_sets[parity], log);
                }
            }
            let layer_inputs = inputs.map(|i| &i[l]);
            let layer_mutation = mutation.and_then(|(target, m)| (target == l).then_some(m));
            let handles = plan.enqueue_program_on(
                world,
                sim,
                layer_inputs,
                self.epilogues[l].as_ref(),
                streams,
                prev_outputs.as_deref(),
                layer_mutation,
                Some(&table_sets[parity]),
            );
            let events: Vec<gpu_sim::GpuEventId> = (0..n)
                .map(|d| {
                    let ev = world.devices[d].create_event();
                    enqueue(world, sim, d, streams.comm[d], Box::new(RecordEvent(ev)));
                    ev
                })
                .collect();
            last_use[parity] = Some(events.clone());
            prev_outputs = self.epilogues[l].as_ref().map(|_| {
                (0..n)
                    .map(|d| handles.epilogue_bufs[d].expect("epilogue requested"))
                    .collect()
            });
            segments.push(ChainSegment::new(
                plan,
                handles,
                parity,
                ready_events,
                events,
            ));
        }
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use tensor::{allclose, gemm, rmsnorm};

    fn small_system(n: usize) -> SystemSpec {
        let mut spec = SystemSpec::rtx4090(n);
        spec.arch.sm_count = 8;
        spec.comm_sms = 2;
        spec
    }

    fn rms_op(cols: usize) -> ElementwiseOp {
        ElementwiseOp::RmsNorm {
            weight: Rc::new(vec![1.0; cols]),
            eps: 1e-6,
        }
    }

    #[test]
    fn two_layer_pipeline_matches_reference_numerics() {
        // Layer 1: (256x128x64) + AllReduce + RMSNorm; layer 2 consumes
        // the normalized activations: (256x64x128) + AllReduce.
        let system = small_system(2);
        let l1 = GemmDims::new(256, 128, 64);
        let l2 = GemmDims::new(256, 64, 128);
        let pipeline = Pipeline::tuned(
            system,
            vec![
                LayerSpec {
                    dims: l1,
                    pattern: CommPattern::AllReduce,
                    epilogue: Some(rms_op(128)),
                },
                LayerSpec {
                    dims: l2,
                    pattern: CommPattern::AllReduce,
                    epilogue: None,
                },
            ],
        )
        .unwrap();

        let mut rng = sim::DetRng::new(8);
        let first_a: Vec<Matrix> = (0..2).map(|_| Matrix::random(256, 64, &mut rng)).collect();
        let weights: Vec<Vec<Matrix>> = vec![
            (0..2).map(|_| Matrix::random(64, 128, &mut rng)).collect(),
            (0..2).map(|_| Matrix::random(128, 64, &mut rng)).collect(),
        ];
        let result = pipeline
            .execute_with(&PipelineExecOptions::new().functional(&first_a, &weights))
            .unwrap();

        // Reference: layer 1 reduce + rmsnorm, then layer 2 reduce.
        let h1 = gemm(&first_a[0], &weights[0][0]).add(&gemm(&first_a[1], &weights[0][1]));
        let act = rmsnorm(&h1, &vec![1.0; 128], 1e-6);
        let h2 = gemm(&act, &weights[1][0]).add(&gemm(&act, &weights[1][1]));
        for (d, out) in result
            .outputs
            .as_deref()
            .unwrap_or_default()
            .iter()
            .enumerate()
        {
            assert!(allclose(out, &h2, 5e-2), "rank {d}");
        }
        assert_eq!(result.report.layers.len(), 2);
        assert!(result.report.total >= result.report.layers[1].latency);
    }

    #[test]
    fn pipeline_timing_is_monotone_across_layers() {
        let system = SystemSpec::rtx4090(4);
        let dims = GemmDims::new(2048, 2048, 2048);
        let pipeline = Pipeline::tuned(
            system,
            vec![
                LayerSpec {
                    dims,
                    pattern: CommPattern::AllReduce,
                    epilogue: Some(rms_op(2048)),
                },
                LayerSpec {
                    dims,
                    pattern: CommPattern::AllReduce,
                    epilogue: Some(rms_op(2048)),
                },
                LayerSpec {
                    dims,
                    pattern: CommPattern::AllReduce,
                    epilogue: None,
                },
            ],
        )
        .unwrap();
        let report = pipeline
            .execute_with(&PipelineExecOptions::new())
            .unwrap()
            .report;
        assert_eq!(report.layers.len(), 3);
        for pair in report.layers.windows(2) {
            assert!(pair[0].latency < pair[1].latency, "layers run in order");
        }
        assert!(report.total >= report.layers[2].latency);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let system = small_system(2);
        let err = Pipeline::tuned(
            system,
            vec![
                LayerSpec {
                    dims: GemmDims::new(256, 128, 64),
                    pattern: CommPattern::AllReduce,
                    epilogue: Some(rms_op(128)),
                },
                LayerSpec {
                    dims: GemmDims::new(256, 64, 999),
                    pattern: CommPattern::AllReduce,
                    epilogue: None,
                },
            ],
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, FlashOverlapError::BadInputs { .. }));
    }

    #[test]
    fn missing_intermediate_epilogue_is_rejected() {
        let system = small_system(2);
        let err = Pipeline::tuned(
            system,
            vec![
                LayerSpec {
                    dims: GemmDims::new(256, 128, 64),
                    pattern: CommPattern::AllReduce,
                    epilogue: None,
                },
                LayerSpec {
                    dims: GemmDims::new(256, 64, 128),
                    pattern: CommPattern::AllReduce,
                    epilogue: None,
                },
            ],
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, FlashOverlapError::BadInputs { .. }));
    }

    fn per_wave_plan(dims: GemmDims, system: &SystemSpec) -> OverlapPlan {
        let config = gpu_sim::gemm::GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system.clone(),
            crate::WavePartition::per_wave(waves),
        )
        .unwrap()
    }

    fn three_layer_resilient_fixture(
        system: &SystemSpec,
    ) -> (Pipeline, Vec<Matrix>, Vec<Vec<Matrix>>) {
        let dims = [
            GemmDims::new(1024, 128, 64),
            GemmDims::new(1024, 64, 128),
            GemmDims::new(1024, 128, 64),
        ];
        let plans: Vec<OverlapPlan> = dims.iter().map(|&d| per_wave_plan(d, system)).collect();
        let pipeline = Pipeline::with_plans(
            system.clone(),
            plans,
            vec![Some(rms_op(128)), Some(rms_op(64)), None],
        )
        .unwrap();
        let mut rng = sim::DetRng::new(17);
        let first_a: Vec<Matrix> = (0..2).map(|_| Matrix::random(1024, 64, &mut rng)).collect();
        let weights: Vec<Vec<Matrix>> = dims
            .iter()
            .map(|d| {
                (0..2)
                    .map(|_| Matrix::random(d.k as usize, d.n as usize, &mut rng))
                    .collect()
            })
            .collect();
        (pipeline, first_a, weights)
    }

    #[test]
    fn resilient_fault_free_pipeline_is_clean_and_bit_exact() {
        use crate::resilience::{FaultPlan, WatchdogConfig};
        let system = small_system(2);
        let (pipeline, first_a, weights) = three_layer_resilient_fixture(&system);
        let faults = vec![FaultPlan::none(); 3];
        let watchdog = WatchdogConfig::default();
        let resilient = pipeline
            .execute_with(
                &PipelineExecOptions::new()
                    .functional(&first_a, &weights)
                    .resilient(&faults, &watchdog),
            )
            .unwrap();
        let plain = pipeline
            .execute_with(&PipelineExecOptions::new().functional(&first_a, &weights))
            .unwrap();
        assert_eq!(resilient.outcomes.len(), 3);
        assert!(
            resilient.outcomes.iter().all(|o| o.label() == "clean"),
            "{:?}",
            resilient.outcomes
        );
        assert_eq!(resilient.faults_armed, 0);
        assert_eq!(
            resilient.report.total, plain.report.total,
            "fault-free watchdog is timing-neutral"
        );
        let res_out = resilient.outputs.unwrap();
        let plain_out = plain.outputs.unwrap();
        for d in 0..2 {
            assert_eq!(res_out[d].as_slice(), plain_out[d].as_slice());
        }
    }

    #[test]
    fn wedged_layer_recovers_and_downstream_layers_stay_bit_exact() {
        use crate::resilience::{Fault, FaultPlan, ResilientOutcome, WatchdogConfig};
        let system = small_system(2);
        let (pipeline, first_a, weights) = three_layer_resilient_fixture(&system);
        // Starve layer 1's last group: its wait wedges mid-pipeline, the
        // watchdog breaks the wedge via the tail rung (earlier groups
        // complete), and layer 2 — whose activations flow through the
        // recovered collective — must still match the fault-free run.
        let last_group = pipeline.plans()[1].group_tile_counts().len() - 1;
        assert!(last_group >= 1, "test needs a multi-group wedged layer");
        let mut faults = vec![FaultPlan::none(); 3];
        faults[1] = FaultPlan::single(Fault::DroppedIncrement {
            rank: 0,
            group: last_group,
            count: 64,
        });
        let watchdog = WatchdogConfig::default();
        let outcome = pipeline
            .execute_with(
                &PipelineExecOptions::new()
                    .functional(&first_a, &weights)
                    .resilient(&faults, &watchdog),
            )
            .unwrap();
        assert_eq!(outcome.faults_armed, 1);
        assert!(
            matches!(outcome.outcomes[1], ResilientOutcome::Recovered { .. }),
            "wedged layer must recover: {:?}",
            outcome.outcomes
        );
        for (l, o) in outcome.outcomes.iter().enumerate() {
            assert_ne!(o.label(), "degraded", "layer {l}: {o:?}");
        }
        let fault_free = pipeline
            .execute_with(&PipelineExecOptions::new().functional(&first_a, &weights))
            .unwrap();
        let wedged_out = outcome.outputs.unwrap();
        let clean_out = fault_free.outputs.unwrap();
        for d in 0..2 {
            assert_eq!(
                wedged_out[d].as_slice(),
                clean_out[d].as_slice(),
                "rank {d} diverged after mid-pipeline recovery"
            );
        }
        assert!(outcome
            .events
            .iter()
            .any(|e| e.detail.contains("segment 1 wedge detected")));
        assert!(outcome
            .events
            .iter()
            .any(|e| e.detail.contains("re-issued as tail collective")));
    }

    #[test]
    fn resilient_rejects_mutations_and_mismatched_fault_plans() {
        use crate::resilience::{FaultPlan, WatchdogConfig};
        let system = small_system(2);
        let (pipeline, _, _) = three_layer_resilient_fixture(&system);
        let watchdog = WatchdogConfig::default();
        let two = vec![FaultPlan::none(); 2];
        assert!(matches!(
            pipeline.execute_with(&PipelineExecOptions::new().resilient(&two, &watchdog)),
            Err(FlashOverlapError::BadInputs { .. })
        ));
        let three = vec![FaultPlan::none(); 3];
        let instr = crate::runtime::Instrumentation {
            mutation: Some(crate::runtime::SignalMutation::DropWait { rank: 0, group: 0 }),
            ..Default::default()
        };
        assert!(matches!(
            pipeline.execute_with(
                &PipelineExecOptions::new()
                    .resilient(&three, &watchdog)
                    .instrument(&instr)
            ),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }

    #[test]
    fn empty_pipeline_is_rejected() {
        assert!(matches!(
            Pipeline::tuned(small_system(2), vec![]).map(|_| ()),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }
}
