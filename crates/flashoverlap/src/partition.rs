//! Wave partitions: the tunable grouping design space (§3.4).
//!
//! After each wave, the accumulated tiles can either be communicated or
//! held — a binary decision per wave boundary, giving `2^(T-1)` partitions
//! of `T` waves into ordered groups. A partition is represented by its
//! group sizes, e.g. `(1, 2, 2)` for communicating after waves 1, 3, 5.
//!
//! `wave_range`/`group_of_wave` run per tile-group inside the planner and
//! predictor loops, so unchecked indexing is opted out here.
#![warn(clippy::indexing_slicing)]

use crate::error::FlashOverlapError;

/// An ordered partition of `T` waves into `P` groups of consecutive waves.
///
/// # Examples
///
/// ```
/// use flashoverlap::WavePartition;
///
/// // Fig. 7's first example: communicate after waves 1, 3, and 5.
/// let p = WavePartition::new(vec![1, 2, 2]);
/// assert_eq!(p.total_waves(), 5);
/// assert_eq!(p.group_of_wave(3), 2);
/// assert_eq!(p.to_string(), "(1,2,2)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WavePartition {
    sizes: Vec<u32>,
}

impl WavePartition {
    /// Creates a partition from group sizes.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or contains zero.
    pub fn new(sizes: Vec<u32>) -> Self {
        assert!(!sizes.is_empty(), "partition needs at least one group");
        assert!(sizes.iter().all(|&s| s > 0), "group sizes must be positive");
        WavePartition { sizes }
    }

    /// The baseline partition of §4.1.1: one wave per group (the most
    /// fine-grained signaling).
    pub fn per_wave(total_waves: u32) -> Self {
        assert!(total_waves > 0, "need at least one wave");
        WavePartition {
            sizes: vec![1; total_waves as usize],
        }
    }

    /// The no-overlap partition: a single group holding every wave
    /// (communication starts only after the whole GEMM).
    pub fn single(total_waves: u32) -> Self {
        assert!(total_waves > 0, "need at least one wave");
        WavePartition {
            sizes: vec![total_waves],
        }
    }

    /// Group sizes `|G_1| .. |G_P|`.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Number of groups `P`.
    pub fn num_groups(&self) -> usize {
        self.sizes.len()
    }

    /// Total waves `T` covered.
    pub fn total_waves(&self) -> u32 {
        self.sizes.iter().sum()
    }

    /// The wave range `[start, end)` of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn wave_range(&self, g: usize) -> std::ops::Range<u32> {
        let size = *self.sizes.get(g).expect("group out of range");
        let start: u32 = self.sizes.iter().take(g).sum();
        start..start + size
    }

    /// The group containing wave `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= total_waves()`.
    pub fn group_of_wave(&self, w: u32) -> usize {
        let mut acc = 0;
        for (g, &s) in self.sizes.iter().enumerate() {
            acc += s;
            if w < acc {
                return g;
            }
        }
        panic!("wave {w} beyond partition of {} waves", self.total_waves());
    }

    /// Checks the partition covers exactly `waves` waves.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::PartitionMismatch`] on mismatch.
    pub fn check_covers(&self, waves: u32) -> Result<(), FlashOverlapError> {
        if self.total_waves() == waves {
            Ok(())
        } else {
            Err(FlashOverlapError::PartitionMismatch {
                partition_waves: self.total_waves(),
                schedule_waves: waves,
            })
        }
    }
}

impl std::fmt::Display for WavePartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.sizes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

/// Wave count above which exhaustive candidate enumeration is replaced by
/// the structured family (the pruned space would still be exponential).
pub const EXHAUSTIVE_WAVE_LIMIT: u32 = 14;

/// Enumerates every partition of `waves` waves (the full `2^(T-1)` design
/// space). Only tractable for small `T`; the evaluation's exhaustive-search
/// experiments (§4.1.1, §6.4) stay below [`EXHAUSTIVE_WAVE_LIMIT`].
///
/// # Panics
///
/// Panics if `waves` is zero or exceeds 24 (enumeration would explode).
pub fn all_partitions(waves: u32) -> Vec<WavePartition> {
    assert!(waves > 0, "need at least one wave");
    assert!(
        waves <= 24,
        "exhaustive enumeration of {waves} waves is intractable"
    );
    let mut out = Vec::with_capacity(1usize << (waves - 1));
    let mut current = Vec::new();
    fn recurse(remaining: u32, current: &mut Vec<u32>, out: &mut Vec<WavePartition>) {
        if remaining == 0 {
            out.push(WavePartition::new(current.clone()));
            return;
        }
        for size in 1..=remaining {
            current.push(size);
            recurse(remaining - size, current, out);
            current.pop();
        }
    }
    recurse(waves, &mut current, &mut out);
    out
}

/// Generates the pruned candidate set of §4.1.4: first group at most
/// `s1_max` (default 2) waves, last group at most `sp_max` (default 4).
///
/// For `T` beyond [`EXHAUSTIVE_WAVE_LIMIT`] the constrained space is still
/// exponential, so a structured family is generated instead: geometric
/// group-size ladders (ratios 1, 1.5, 2) seeded with small first groups and
/// clamped last groups. This keeps real-time search possible for very
/// large GEMMs and is an engineering extension over the paper, which only
/// evaluates moderate `T`.
pub fn candidate_partitions(waves: u32, s1_max: u32, sp_max: u32) -> Vec<WavePartition> {
    assert!(waves > 0, "need at least one wave");
    if waves == 1 {
        return vec![WavePartition::new(vec![1])];
    }
    if waves <= EXHAUSTIVE_WAVE_LIMIT {
        return all_partitions(waves)
            .into_iter()
            .filter(|p| {
                let sizes = p.sizes();
                // The single-group (no-overlap) fallback always stays; the
                // S1/SP bounds prune everything else.
                sizes.len() == 1
                    || (sizes.first().is_some_and(|&s| s <= s1_max)
                        && sizes.last().is_some_and(|&s| s <= sp_max))
            })
            .collect();
    }
    structured_partitions(waves, s1_max, sp_max)
}

fn structured_partitions(waves: u32, s1_max: u32, sp_max: u32) -> Vec<WavePartition> {
    let mut out = Vec::new();
    for first in 1..=s1_max {
        for &ratio in &[1.0f64, 1.5, 2.0] {
            for cap in [2u32, 4, 8, 16, 32] {
                let mut sizes = vec![first];
                let mut used = first;
                let mut size = first as f64;
                while used < waves {
                    size = (size * ratio).min(cap as f64);
                    let step = (size.round() as u32).clamp(1, waves - used);
                    sizes.push(step);
                    used += step;
                }
                // Clamp the last group: split its excess into the
                // second-to-last group when possible.
                if let [.., second_last, last] = sizes.as_mut_slice() {
                    if *last > sp_max {
                        *second_last += *last - sp_max;
                        *last = sp_max;
                    }
                }
                out.push(WavePartition::new(sizes));
            }
        }
    }
    // Coarse candidates: communication-dominated workloads pay per-call
    // fragmentation for every extra group, so the best partitions there
    // are very coarse — down to a single group (no overlap at all). The
    // geometric ladders above never produce these.
    out.push(WavePartition::single(waves));
    for head in 1..=s1_max {
        for tail in [1u32, 2, 4] {
            let tail = tail.min(sp_max);
            if head + tail >= waves {
                continue;
            }
            let middle = waves - head - tail;
            // One big middle group, and a two-way split of it.
            out.push(WavePartition::new(vec![head, middle, tail]));
            if middle >= 2 {
                out.push(WavePartition::new(vec![
                    head,
                    middle / 2,
                    middle - middle / 2,
                    tail,
                ]));
            }
            // Big head-overlap variant: everything but the tail in two
            // groups.
            out.push(WavePartition::new(vec![head, waves - head]));
        }
    }
    out.sort_by(|a, b| a.sizes().cmp(b.sizes()));
    out.dedup();
    out
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn partition_accessors() {
        let p = WavePartition::new(vec![1, 2, 2]);
        assert_eq!(p.num_groups(), 3);
        assert_eq!(p.total_waves(), 5);
        assert_eq!(p.wave_range(0), 0..1);
        assert_eq!(p.wave_range(1), 1..3);
        assert_eq!(p.wave_range(2), 3..5);
        assert_eq!(p.to_string(), "(1,2,2)");
    }

    #[test]
    fn group_of_wave_is_consistent_with_ranges() {
        let p = WavePartition::new(vec![2, 3, 1]);
        for g in 0..p.num_groups() {
            for w in p.wave_range(g) {
                assert_eq!(p.group_of_wave(w), g);
            }
        }
    }

    #[test]
    fn per_wave_and_single_partitions() {
        assert_eq!(WavePartition::per_wave(4).sizes(), &[1, 1, 1, 1]);
        assert_eq!(WavePartition::single(4).sizes(), &[4]);
    }

    #[test]
    fn check_covers_detects_mismatch() {
        let p = WavePartition::new(vec![2, 2]);
        assert!(p.check_covers(4).is_ok());
        assert!(matches!(
            p.check_covers(5),
            Err(FlashOverlapError::PartitionMismatch { .. })
        ));
    }

    #[test]
    fn all_partitions_counts_compositions() {
        // The number of compositions of T is 2^(T-1) (the paper's design
        // space size).
        for t in 1..=10u32 {
            assert_eq!(all_partitions(t).len(), 1usize << (t - 1), "T={t}");
        }
    }

    #[test]
    fn all_partitions_cover_exactly() {
        for p in all_partitions(6) {
            assert_eq!(p.total_waves(), 6);
        }
    }

    #[test]
    fn paper_example_eight_waves_gives_128_candidates() {
        // Sec. 4.1.2: T = 8 -> 2^7 = 128 candidates before pruning.
        assert_eq!(all_partitions(8).len(), 128);
    }

    #[test]
    fn candidates_respect_head_tail_constraints() {
        let cands = candidate_partitions(10, 2, 4);
        assert!(!cands.is_empty());
        for p in &cands {
            let sizes = p.sizes();
            if sizes.len() > 1 {
                assert!(sizes[0] <= 2, "first group too large in {p}");
                assert!(*sizes.last().unwrap() <= 4, "last group too large in {p}");
            }
            assert_eq!(p.total_waves(), 10);
        }
        // Pruning really removes candidates.
        assert!(cands.len() < all_partitions(10).len());
    }

    #[test]
    fn structured_candidates_for_large_t() {
        let cands = candidate_partitions(64, 2, 4);
        assert!(!cands.is_empty());
        assert!(cands.len() < 200, "structured family must stay small");
        for p in &cands {
            assert_eq!(p.total_waves(), 64);
            // Fine partitions honor the head bound; coarse fallbacks
            // (1-2 groups, for communication-dominated workloads) are
            // exempt.
            assert!(p.sizes()[0] <= 2 || p.num_groups() <= 2);
        }
        // The no-overlap fallback is always a candidate.
        assert!(cands.contains(&WavePartition::single(64)));
        // Candidate sets are duplicate-free.
        let mut sorted = cands.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), cands.len());
    }

    #[test]
    fn single_wave_has_single_candidate() {
        let cands = candidate_partitions(1, 2, 4);
        assert_eq!(cands, vec![WavePartition::new(vec![1])]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_group_size_panics() {
        let _ = WavePartition::new(vec![1, 0]);
    }
}
