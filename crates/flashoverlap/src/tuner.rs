//! Partition tuning: predictive search (§4.1.4) and the exhaustive
//! oracle used to evaluate it (§4.1.1, §6.4).

use collectives::Primitive;
use gpu_sim::gemm::GemmDims;
use sim::SimDuration;

use crate::error::FlashOverlapError;
use crate::partition::{
    all_partitions, candidate_partitions, WavePartition, EXHAUSTIVE_WAVE_LIMIT,
};
use crate::predictor::LatencyPredictor;
use crate::runtime::{CommPattern, OverlapPlan};
use crate::system::SystemSpec;

/// First-group size bound `S_1` used for evaluation (§4.1.4).
pub const DEFAULT_S1: u32 = 2;

/// Last-group size bound `S_P` used for evaluation (§4.1.4).
pub const DEFAULT_SP: u32 = 4;

/// Result of a tuning pass.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The chosen partition.
    pub partition: WavePartition,
    /// Its predicted (or, for the exhaustive oracle, measured) latency.
    pub latency: SimDuration,
    /// Number of candidates examined.
    pub evaluated: usize,
}

/// Predictive search: scores the pruned candidate set with the Alg. 1
/// predictor and returns the argmin — no online execution at all.
pub fn predictive_search(dims: GemmDims, primitive: Primitive, system: &SystemSpec) -> TuneOutcome {
    predictive_search_with(dims, primitive, system, DEFAULT_S1, DEFAULT_SP)
}

/// Predictive search with explicit pruning bounds `S_1` / `S_P`
/// (§4.1.4's design-space constraints; the ablation bench sweeps them).
pub fn predictive_search_with(
    dims: GemmDims,
    primitive: Primitive,
    system: &SystemSpec,
    s1_max: u32,
    sp_max: u32,
) -> TuneOutcome {
    let predictor = LatencyPredictor::build(dims, primitive, system);
    let waves = predictor.profile().total_waves;
    let candidates = candidate_partitions(waves, s1_max, sp_max);
    let mut best: Option<(SimDuration, WavePartition)> = None;
    let evaluated = candidates.len();
    for partition in candidates {
        let predicted = predictor.predict(&partition);
        if best.as_ref().is_none_or(|(b, _)| predicted < *b) {
            best = Some((predicted, partition));
        }
    }
    let (latency, partition) = best.expect("candidate set is never empty");
    TuneOutcome {
        partition,
        latency,
        evaluated,
    }
}

/// The exhaustive oracle: *executes* every partition of the full
/// `2^(T-1)` design space in the simulator and returns the true optimum.
/// Only used by the evaluation (the paper's "online profiling" baseline);
/// limited to small wave counts.
///
/// # Errors
///
/// Returns [`FlashOverlapError::IncompatibleShape`] if the wave count
/// exceeds [`EXHAUSTIVE_WAVE_LIMIT`], or any plan/execution error.
pub fn exhaustive_search(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
) -> Result<TuneOutcome, FlashOverlapError> {
    // Derive the wave count from a throwaway single-group plan.
    let probe = OverlapPlan::new(
        dims,
        pattern.clone(),
        system.clone(),
        WavePartition::new(vec![1]),
    );
    let waves = match probe {
        Ok(p) => p.total_waves(),
        Err(FlashOverlapError::PartitionMismatch { schedule_waves, .. }) => schedule_waves,
        Err(e) => return Err(e),
    };
    if waves > EXHAUSTIVE_WAVE_LIMIT {
        return Err(FlashOverlapError::IncompatibleShape {
            reason: format!(
                "exhaustive search over {waves} waves exceeds the {EXHAUSTIVE_WAVE_LIMIT}-wave limit"
            ),
        });
    }
    let candidates = all_partitions(waves);
    let evaluated = candidates.len();
    let mut best: Option<(SimDuration, WavePartition)> = None;
    for partition in candidates {
        let plan = OverlapPlan::new(dims, pattern.clone(), system.clone(), partition.clone())?;
        // Prove the candidate's signal/wait schedule safe before spending
        // a simulated execution on it.
        plan.check_static()?;
        let report = plan
            .execute_with(&crate::runtime::ExecOptions::new())?
            .report;
        if best.as_ref().is_none_or(|(b, _)| report.latency < *b) {
            best = Some((report.latency, partition));
        }
    }
    let (latency, partition) = best.expect("at least one partition exists");
    Ok(TuneOutcome {
        partition,
        latency,
        evaluated,
    })
}

/// Measures one partition's true (simulated) latency.
///
/// # Errors
///
/// Propagates plan construction and simulation errors.
pub fn measure_partition(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
    partition: WavePartition,
) -> Result<SimDuration, FlashOverlapError> {
    let plan = OverlapPlan::new(dims, pattern.clone(), system.clone(), partition)?;
    plan.check_static()?;
    Ok(plan
        .execute_with(&crate::runtime::ExecOptions::new())?
        .report
        .latency)
}

impl OverlapPlan {
    /// Builds a plan with the partition chosen by predictive search — the
    /// end-to-end "just make it fast" entry point.
    ///
    /// # Errors
    ///
    /// Propagates plan construction errors.
    pub fn tuned(
        dims: GemmDims,
        pattern: CommPattern,
        system: SystemSpec,
    ) -> Result<OverlapPlan, FlashOverlapError> {
        let outcome = predictive_search(dims, pattern.primitive(), &system);
        let plan = OverlapPlan::new(dims, pattern, system, outcome.partition)?;
        // The searched partition is only scored analytically; prove its
        // signal/wait schedule safe before handing it out for execution.
        plan.check_static()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictive_search_returns_valid_partition() {
        let dims = GemmDims::new(4096, 8192, 4096);
        let system = SystemSpec::rtx4090(4);
        let outcome = predictive_search(dims, Primitive::AllReduce, &system);
        assert!(outcome.evaluated > 1);
        let plan = OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system,
            outcome.partition.clone(),
        )
        .unwrap();
        assert_eq!(plan.partition.total_waves(), plan.total_waves());
    }

    #[test]
    fn tuned_plan_beats_serial_on_balanced_shape() {
        let dims = GemmDims::new(8192, 8192, 16384);
        let system = SystemSpec::rtx4090(4);
        let tuned = OverlapPlan::tuned(dims, CommPattern::AllReduce, system.clone()).unwrap();
        let tuned_latency = tuned
            .execute_with(&crate::runtime::ExecOptions::new())
            .unwrap()
            .report
            .latency;
        let serial = measure_partition(
            dims,
            &CommPattern::AllReduce,
            &system,
            WavePartition::single(tuned.total_waves()),
        )
        .unwrap();
        assert!(
            tuned_latency < serial,
            "tuned {tuned_latency} vs serial {serial}"
        );
    }

    #[test]
    fn exhaustive_search_finds_at_least_predictive_quality() {
        // A small shape keeps the wave count within the exhaustive limit.
        let dims = GemmDims::new(2048, 4096, 2048);
        let system = SystemSpec::rtx4090(4);
        let exhaustive = exhaustive_search(dims, &CommPattern::AllReduce, &system).unwrap();
        let predicted = predictive_search(dims, Primitive::AllReduce, &system);
        let predicted_actual = measure_partition(
            dims,
            &CommPattern::AllReduce,
            &system,
            predicted.partition.clone(),
        )
        .unwrap();
        assert!(exhaustive.latency <= predicted_actual);
        // Sec. 6.4: the searched partition achieves > 99% of optimal; give
        // the simulator a little slack.
        let ratio = exhaustive.latency.as_nanos() as f64 / predicted_actual.as_nanos() as f64;
        assert!(ratio > 0.95, "searched partition only {ratio} of optimal");
    }

    #[test]
    fn tighter_pruning_examines_fewer_candidates() {
        let dims = GemmDims::new(2048, 8192, 4096);
        let system = SystemSpec::rtx4090(4);
        let tight = predictive_search_with(dims, Primitive::AllReduce, &system, 1, 1);
        let default =
            predictive_search_with(dims, Primitive::AllReduce, &system, DEFAULT_S1, DEFAULT_SP);
        assert!(tight.evaluated < default.evaluated);
        // The default bounds can only improve (or match) the tighter set's
        // predicted optimum.
        assert!(default.latency <= tight.latency);
    }

    #[test]
    fn cross_node_topology_tunes_a_different_plan() {
        // The predictor charges node-spanning groups at inter-tier cost,
        // so on at least one shape the argmin partition must move when
        // the same 8 GPUs split across two nodes.
        let shapes = [
            GemmDims::new(4096, 8192, 4096),
            GemmDims::new(8192, 8192, 8192),
            GemmDims::new(2048, 16384, 4096),
            GemmDims::new(4096, 4096, 2048),
        ];
        let flat = SystemSpec::a800(8);
        let tiered = SystemSpec::a800(8).with_nodes(2);
        let mut diverged = false;
        for dims in shapes {
            let f = predictive_search(dims, Primitive::AllReduce, &flat);
            let t = predictive_search(dims, Primitive::AllReduce, &tiered);
            // Both searches must still produce executable partitions.
            assert_eq!(f.partition.total_waves(), t.partition.total_waves());
            if f.partition != t.partition {
                diverged = true;
            }
        }
        assert!(
            diverged,
            "splitting the group across nodes never changed the tuned plan"
        );
    }

    #[test]
    fn exhaustive_search_rejects_large_wave_counts() {
        let dims = GemmDims::new(16384, 16384, 1024);
        let system = SystemSpec::rtx4090(4);
        let err = exhaustive_search(dims, &CommPattern::AllReduce, &system).unwrap_err();
        assert!(matches!(err, FlashOverlapError::IncompatibleShape { .. }));
    }
}
