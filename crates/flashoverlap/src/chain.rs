//! Chain-aware fault injection and watchdog recovery (shared by
//! [`crate::sequence::execute_sequence`] and [`crate::pipeline::Pipeline`]).
//!
//! Single-shot resilience (PR 3) watches one program on one stream pair.
//! Chained execution — pipelined layers, sequenced batches — threads
//! counting-table state across segments via parity-ping-ponged table
//! reuse, so a wedge in segment `k` can silently poison every inheritor:
//! the table `k + 2` rearms still holds `k`'s armed fault budget, and the
//! compute stream parks forever on `k`'s never-recorded comm-done event.
//! This module extends the watchdog/escalation ladder to whole chains
//! under two rules:
//!
//! - **Table quarantine.** Before a segment's first increment can land,
//!   a compute-stream callback disarms whatever fault budget the
//!   previous same-parity segment left on the inherited table
//!   ([`gpu_sim::CounterTable::disarm_faults`]) and only then arms the
//!   segment's own faults. A fault armed for segment `k` can therefore
//!   never leak into segment `k + 2`.
//! - **Recovery completes the rearm protocol.** Breaking a wedge at
//!   frontier segment `k` aborts the starved communication state, re-
//!   issues `k`'s incomplete groups as tail/bulk collectives (safe: the
//!   GEMM main loop retired, so packed buffers are complete), re-records
//!   `k`'s comm-side events *with the same event ids* so parked compute
//!   streams wake into their rearm edges, and re-enqueues every later
//!   segment's communication program behind its rearm-ready gate — so
//!   downstream parity stays sound and the chain stays bit-exact.
//!
//! The watchdog deadline is calibrated per segment: each segment gets a
//! predictor-derived budget, and the frontier advancing into a new
//! segment re-bases the deadline without consuming a retry.
#![warn(clippy::indexing_slicing)]

use std::cell::RefCell;
use std::rc::Rc;

use collectives::CollectiveRole;
use gpu_sim::stream::{
    abort_counter_waits, enqueue, Callback, Delay, RecordEvent, WaitCounter, WaitEvent,
};
use gpu_sim::{
    Cluster, ClusterSim, GpuEventId, IncrementFault, RuntimeEvent, RuntimeEventKind, StuckWait,
};
use sim::{SimDuration, SimTime};

use crate::error::{ChainPosition, FlashOverlapError};
use crate::resilience::{Fault, FaultPlan, ResilientOutcome, WatchdogConfig};
use crate::runtime::{OverlapPlan, ProgramHandles, StreamCtx};

/// Shared fault/recovery timeline: segment-arming callbacks append from
/// inside the simulation, the watchdog appends from outside.
pub(crate) type EventLog = Rc<RefCell<Vec<RuntimeEvent>>>;

/// One chain segment (a pipeline layer or a sequenced batch) with the
/// retained handles recovery needs: the comm-side event ids to re-record
/// and the rearm gate to respect when re-enqueuing downstream.
pub(crate) struct ChainSegment {
    pub(crate) handles: ProgramHandles,
    /// Table parity the segment inherited (`segment % 2`).
    pub(crate) parity: usize,
    /// Per-rank rearm-ready events of this segment's own table rearm
    /// (`None` for the first two segments, which get fresh tables).
    pub(crate) ready: Option<Vec<GpuEventId>>,
    /// Per-rank end-of-segment comm-done events (the cross-batch /
    /// cross-layer edges later segments wait on).
    pub(crate) comm_done: Vec<GpuEventId>,
    /// Which groups owe a collective (zero-payload groups excluded).
    pub(crate) expected: Vec<bool>,
}

impl ChainSegment {
    pub(crate) fn new(
        plan: &OverlapPlan,
        handles: ProgramHandles,
        parity: usize,
        ready: Option<Vec<GpuEventId>>,
        comm_done: Vec<GpuEventId>,
    ) -> Self {
        let expected = (0..plan.group_tile_counts().len())
            .map(|g| plan.group_send_region(g, 0).is_some())
            .collect();
        ChainSegment {
            handles,
            parity,
            ready,
            comm_done,
            expected,
        }
    }
}

/// Whether every owed collective of the segment completed (and its GEMM
/// retired). Rank 0 carries the probes; collectives are rendezvous, so
/// rank 0 completing implies every rank completed.
pub(crate) fn segment_complete(seg: &ChainSegment) -> bool {
    if seg.handles.probes.gemm_done.get().is_none() {
        return false;
    }
    let done = seg.handles.probes.group_done.borrow();
    seg.expected
        .iter()
        .enumerate()
        .all(|(g, &exp)| !exp || done.get(g).is_some_and(Option::is_some))
}

/// Groups of the segment whose collectives completed (overlap or
/// recovery).
fn completed_groups(seg: &ChainSegment) -> Vec<usize> {
    seg.handles
        .probes
        .group_done
        .borrow()
        .iter()
        .enumerate()
        .filter_map(|(g, t)| t.map(|_| g))
        .collect()
}

/// The first incomplete segment — where the watchdog aims its deadline.
fn frontier(segments: &[ChainSegment]) -> Option<usize> {
    segments.iter().position(|s| !segment_complete(s))
}

/// The last probed completion time across the chain — the chain's end,
/// independent of where `run_until` happened to park the clock.
fn chain_end(segments: &[ChainSegment]) -> SimTime {
    let mut end = SimTime::ZERO;
    for seg in segments {
        let probes = &seg.handles.probes;
        if let Some(t) = probes.gemm_done.get() {
            end = end.max(t);
        }
        for t in probes.group_done.borrow().iter().flatten() {
            end = end.max(*t);
        }
        if let Some(t) = probes.epilogue_done.get() {
            end = end.max(t);
        }
    }
    end
}

/// Maps starved waits onto chain positions: the starved rearm edge is
/// named by the first incomplete segment watching that counter table.
pub(crate) fn chain_positions(
    waits: &[StuckWait],
    segments: &[ChainSegment],
) -> Vec<ChainPosition> {
    let mut out: Vec<ChainPosition> = Vec::new();
    for w in waits {
        let found = segments.iter().enumerate().find(|(_, s)| {
            s.handles.tables.get(w.device).copied() == Some(w.table) && !segment_complete(s)
        });
        if let Some((segment, seg)) = found {
            let pos = ChainPosition {
                segment,
                parity: seg.parity,
                table: w.table,
            };
            if !out.contains(&pos) {
                out.push(pos);
            }
        }
    }
    out
}

/// [`crate::runtime::check_quiescent`] for chains: the `Deadlock` error
/// additionally names each starved wait's chain position (segment,
/// parity, inherited table) — which rearm edge it starved.
pub(crate) fn check_quiescent_chain(
    world: &Cluster,
    segments: &[ChainSegment],
) -> Result<(), FlashOverlapError> {
    world.check_quiescent().map_err(|streams| {
        let waits = world.stuck_waits();
        let chain = chain_positions(&waits, segments);
        FlashOverlapError::Deadlock {
            streams,
            waits,
            chain,
        }
    })
}

/// Validates one fault plan per chain segment against its plan's shape.
pub(crate) fn validate_chain_faults(
    plans: &[&OverlapPlan],
    faults: &[FaultPlan],
) -> Result<(), FlashOverlapError> {
    if faults.len() != plans.len() {
        return Err(FlashOverlapError::BadInputs {
            reason: format!(
                "{} fault plans for {} chain segments (one per segment required)",
                faults.len(),
                plans.len()
            ),
        });
    }
    for (plan, fp) in plans.iter().zip(faults) {
        fp.validate(plan.system.n_gpus, plan.group_tile_counts().len())?;
    }
    Ok(())
}

/// Arms the cluster-level (time-global) faults of every segment before
/// the program starts: link degradation/stalls and straggler SMs exist
/// for the whole chain. Returns the total number of faults armed across
/// all segments (including the per-segment ones armed later).
pub(crate) fn arm_cluster_faults(
    world: &mut Cluster,
    sim: &ClusterSim,
    faults: &[FaultPlan],
    log: &EventLog,
) -> usize {
    let mut armed = 0;
    for (segment, fp) in faults.iter().enumerate() {
        for fault in &fp.faults {
            armed += 1;
            match *fault {
                Fault::LinkDegradation { slowdown } => {
                    let prior = world.comm_fault.slowdown.max(1.0);
                    world.comm_fault.slowdown = prior * slowdown.max(1.0);
                }
                Fault::InterLinkDegradation { slowdown } => {
                    let prior = world.comm_fault.inter_slowdown.max(1.0);
                    world.comm_fault.inter_slowdown = prior * slowdown.max(1.0);
                }
                Fault::LinkStall { stall, count } => {
                    world.comm_fault.stall = world.comm_fault.stall.max(stall);
                    world.comm_fault.stall_count += count;
                }
                Fault::StragglerSms { rank, sms } => {
                    world
                        .devices
                        .get_mut(rank)
                        .expect("validate_chain_faults proved the rank")
                        .occupy_comm_sms(sms);
                }
                // Slow ranks and counter faults arm at their segment's
                // position in the stream order (below).
                Fault::SlowRank { .. }
                | Fault::DroppedIncrement { .. }
                | Fault::DelayedIncrement { .. } => continue,
            }
            let event = RuntimeEvent {
                at: sim.now(),
                device: fault_device(fault),
                kind: RuntimeEventKind::FaultInjected,
                group: None,
                detail: format!("segment {segment}: armed: {fault}"),
            };
            world.notify_runtime_event(&event);
            log.borrow_mut().push(event);
        }
    }
    armed
}

/// The rank a fault targets (the lead rank for cluster-wide faults).
fn fault_device(fault: &Fault) -> gpu_sim::DeviceId {
    match *fault {
        Fault::DroppedIncrement { rank, .. }
        | Fault::DelayedIncrement { rank, .. }
        | Fault::StragglerSms { rank, .. }
        | Fault::SlowRank { rank, .. } => rank,
        Fault::LinkDegradation { .. }
        | Fault::InterLinkDegradation { .. }
        | Fault::LinkStall { .. } => 0,
    }
}

/// Enqueues segment `segment`'s stream-positioned faults. Must be called
/// after the segment's table-rearm block and before its program is
/// enqueued, so the arming callback lands between the inherited table's
/// reset and the segment's first increment.
///
/// Slow-rank faults become `Delay` ops at the segment's launch position.
/// Counter faults arm from a per-rank *compute-stream callback* — each
/// rank's compute stream passes its own rearm independently (launch
/// skew), so arming from rank 0 could race another rank's reset. The
/// callback first applies the table-quarantine rule: any fault budget
/// the previous same-parity segment left armed is disarmed before this
/// segment's faults go in.
pub(crate) fn enqueue_segment_faults(
    world: &mut Cluster,
    sim: &mut ClusterSim,
    streams: &StreamCtx,
    segment: usize,
    faults: &FaultPlan,
    table_set: &[usize],
    log: &EventLog,
) {
    for fault in &faults.faults {
        if let Fault::SlowRank { rank, delay } = *fault {
            let (Some(&compute), Some(&comm)) = (streams.compute.get(rank), streams.comm.get(rank))
            else {
                continue;
            };
            for stream in [compute, comm] {
                enqueue(world, sim, rank, stream, Box::new(Delay(delay)));
            }
            let event = RuntimeEvent {
                at: sim.now(),
                device: rank,
                kind: RuntimeEventKind::FaultInjected,
                group: None,
                detail: format!("segment {segment}: armed: {fault}"),
            };
            world.notify_runtime_event(&event);
            log.borrow_mut().push(event);
        }
    }
    let n = streams.compute.len();
    for d in 0..n {
        let rank_faults: Vec<(usize, IncrementFault, u32, String)> = faults
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::DroppedIncrement { rank, group, count } if rank == d => {
                    Some((group, IncrementFault::Dropped, count, f.to_string()))
                }
                Fault::DelayedIncrement {
                    rank,
                    group,
                    count,
                    delay,
                } if rank == d => {
                    Some((group, IncrementFault::Delayed(delay), count, f.to_string()))
                }
                _ => None,
            })
            .collect();
        // Fresh tables (segments 0 and 1) hold no leftover budget; skip
        // the callback entirely when there is also nothing to arm.
        if segment < 2 && rank_faults.is_empty() {
            continue;
        }
        let (Some(&table), Some(&compute)) = (table_set.get(d), streams.compute.get(d)) else {
            continue;
        };
        let log = Rc::clone(log);
        enqueue(
            world,
            sim,
            d,
            compute,
            Box::new(Callback(Box::new(move |world, s| {
                let cleared = world
                    .devices
                    .get_mut(d)
                    .map(|dev| dev.counter_mut(table).disarm_faults())
                    .unwrap_or(0);
                if cleared > 0 {
                    let event = RuntimeEvent {
                        at: s.now(),
                        device: d,
                        kind: RuntimeEventKind::FaultQuarantined,
                        group: None,
                        detail: format!(
                            "segment {segment}: quarantined {cleared} leftover armed fault(s) \
                             on inherited table {table}"
                        ),
                    };
                    world.notify_runtime_event(&event);
                    log.borrow_mut().push(event);
                }
                for (group, kind, count, desc) in rank_faults {
                    if let Some(dev) = world.devices.get_mut(d) {
                        dev.counter_mut(table).arm_fault(group, kind, count);
                    }
                    let event = RuntimeEvent {
                        at: s.now(),
                        device: d,
                        kind: RuntimeEventKind::FaultInjected,
                        group: Some(group),
                        detail: format!("segment {segment}: armed: {desc}"),
                    };
                    world.notify_runtime_event(&event);
                    log.borrow_mut().push(event);
                }
            }))),
        );
    }
}

/// Per-segment watchdog bookkeeping.
#[derive(Default)]
struct SegState {
    /// Deadline extensions granted while this segment was the frontier.
    retries: u32,
    /// Wedges broken at this segment (a second wedge degrades it).
    wedges: u32,
    /// Groups re-issued as tail/bulk collectives for this segment.
    tail: Vec<usize>,
    /// Whether the segment's comm program was re-enqueued behind an
    /// upstream recovery.
    reissued: bool,
    degraded: Option<String>,
}

/// Result of driving a chain to completion under the watchdog.
pub(crate) struct ChainRun {
    pub(crate) end: SimTime,
    pub(crate) outcomes: Vec<ResilientOutcome>,
}

/// Drives an already-enqueued chain to termination under the chain
/// watchdog: per-segment predictor-derived deadlines, wedge
/// discrimination (drained queue + starved waits vs slow progress), and
/// the escalation ladder — extensions, tail recovery at the frontier
/// segment with downstream re-enqueue, bulk fallback / degraded marking.
/// Every chain terminates with one accountable outcome per segment.
///
/// # Errors
///
/// Returns [`FlashOverlapError::Simulation`] on engine failure only —
/// wedges never escape as errors.
pub(crate) fn drive_chain(
    world: &mut Cluster,
    sim: &mut ClusterSim,
    plans: &[&OverlapPlan],
    segments: &[ChainSegment],
    streams: &StreamCtx,
    watchdog: &WatchdogConfig,
    log: &EventLog,
) -> Result<ChainRun, FlashOverlapError> {
    // Per-segment budget: the predictor's expected latency times the
    // configured multiplier, plus the launch-skew window.
    let budgets: Vec<SimDuration> = plans
        .iter()
        .map(|p| {
            p.expected_latency()
                .mul_f64(watchdog.deadline_multiplier.max(1.0))
                + SimDuration::from_nanos(p.system.launch_skew_ns.max(1))
        })
        .collect();
    let budget_of = |f: usize| budgets.get(f).copied().unwrap_or_default();
    let mut state: Vec<SegState> = segments.iter().map(|_| SegState::default()).collect();
    let mut deadline = SimTime::ZERO + budget_of(0);
    let mut deadline_frontier = 0usize;
    // Safety net far above any reachable escalation count.
    let max_rounds = (segments.len() as u32).saturating_mul(watchdog.max_retries + 4) + 8;
    let mut rounds = 0u32;

    loop {
        rounds += 1;
        if rounds > max_rounds {
            if let Some(slot) = frontier(segments).and_then(|f| state.get_mut(f)) {
                slot.degraded
                    .get_or_insert(format!("chain watchdog gave up after {rounds} rounds"));
            }
            break;
        }
        sim.run_until(world, deadline)?;
        if sim.pending() == 0 {
            let Some(f) = frontier(segments) else {
                break; // Every segment completed; streams drained.
            };
            // True wedge: the event queue drained with segment `f`'s
            // collectives still owed.
            let error = match check_quiescent_chain(world, segments) {
                Err(e) => e,
                Ok(()) => {
                    // Streams drained yet a segment is incomplete —
                    // unreachable for well-formed chains; terminate
                    // accountably instead of spinning.
                    if let Some(slot) = state.get_mut(f) {
                        slot.degraded
                            .get_or_insert("chain stalled without a diagnosable wedge".into());
                    }
                    break;
                }
            };
            let wedged_twice = state.get(f).is_some_and(|s| s.wedges >= 1);
            let gemm_retired = segments
                .get(f)
                .is_some_and(|s| s.handles.probes.gemm_done.get().is_some());
            if let Some(slot) = state.get_mut(f) {
                slot.wedges += 1;
                if wedged_twice {
                    // Even recovery wedged (recovery collectives wait on
                    // nothing but already-recorded state, so this should
                    // be unreachable). Give up without hanging.
                    slot.degraded
                        .get_or_insert(format!("recovery wedged: {error}"));
                    break;
                }
                if !gemm_retired {
                    // Re-issuing collectives before the GEMM retired
                    // would read incomplete tiles; defensively degrade.
                    slot.degraded
                        .get_or_insert(format!("wedged before GEMM retirement: {error}"));
                    break;
                }
            }
            let fired = RuntimeEvent {
                at: sim.now(),
                device: 0,
                kind: RuntimeEventKind::WatchdogFired,
                group: None,
                detail: format!("segment {f} wedge detected: {error}"),
            };
            world.notify_runtime_event(&fired);
            log.borrow_mut().push(fired);
            recover_chain(world, sim, plans, segments, f, streams, log, &mut state);
            deadline_frontier = f;
            deadline = sim.now() + budget_of(f);
        } else {
            // Deadline passed with events still flowing: slow, not
            // stuck. Re-base when the frontier advanced (per-segment
            // calibration); otherwise extend within budget, then mark
            // the frontier segment degraded but keep driving — an
            // in-flight collective cannot be abandoned without
            // double-applying its data.
            let f = frontier(segments).unwrap_or(segments.len().saturating_sub(1));
            if f != deadline_frontier {
                deadline_frontier = f;
            } else if state
                .get(f)
                .is_some_and(|s| s.retries < watchdog.max_retries)
            {
                if let Some(slot) = state.get_mut(f) {
                    slot.retries += 1;
                    let fired = RuntimeEvent {
                        at: sim.now(),
                        device: 0,
                        kind: RuntimeEventKind::WatchdogFired,
                        group: None,
                        detail: format!(
                            "segment {f}: deadline passed with {} events in flight; \
                             extension {}/{}",
                            sim.pending(),
                            slot.retries,
                            watchdog.max_retries
                        ),
                    };
                    world.notify_runtime_event(&fired);
                    log.borrow_mut().push(fired);
                }
            } else if state.get(f).is_some_and(|s| s.degraded.is_none()) {
                if let Some(slot) = state.get_mut(f) {
                    slot.degraded = Some(format!(
                        "watchdog deadline exceeded after {} extensions",
                        watchdog.max_retries
                    ));
                }
                let fallback = RuntimeEvent {
                    at: sim.now(),
                    device: 0,
                    kind: RuntimeEventKind::DegradedFallback,
                    group: None,
                    detail: format!(
                        "segment {f} marked degraded; completing without abandoning \
                         in-flight work"
                    ),
                };
                world.notify_runtime_event(&fallback);
                log.borrow_mut().push(fallback);
            }
            deadline = sim.now() + budget_of(f);
        }
    }

    // `run_until` parks the clock on the deadline even when the queue
    // drained earlier, so the chain's end is the last probed completion
    // time — keeping fault-free resilient runs timing-identical to
    // plain execution.
    let end = chain_end(segments);
    let outcomes = segments
        .iter()
        .zip(&state)
        .map(|(seg, st)| {
            let recovered_groups = completed_groups(seg);
            if let Some(cause) = &st.degraded {
                ResilientOutcome::Degraded {
                    cause: cause.clone(),
                    recovered_groups,
                }
            } else if !segment_complete(seg) {
                ResilientOutcome::Degraded {
                    cause: "chain terminated before this segment completed".into(),
                    recovered_groups,
                }
            } else if !st.tail.is_empty() || st.reissued {
                ResilientOutcome::Recovered {
                    retries: st.retries,
                    tail_groups: st.tail.clone(),
                }
            } else {
                ResilientOutcome::Clean
            }
        })
        .collect();
    Ok(ChainRun { end, outcomes })
}

/// Breaks a wedge at frontier segment `f`: aborts the starved
/// communication state, re-issues `f`'s incomplete groups (tail when the
/// overlap partially succeeded, bulk otherwise — which degrades `f`),
/// re-records `f`'s comm-side events with the same ids so parked compute
/// streams wake into their rearm edges, then re-enqueues every later
/// segment's communication program behind its rearm-ready gate. This
/// completes the rearm protocol for the whole chain: downstream parity
/// stays sound.
#[allow(clippy::too_many_arguments)]
fn recover_chain(
    world: &mut Cluster,
    sim: &mut ClusterSim,
    plans: &[&OverlapPlan],
    segments: &[ChainSegment],
    f: usize,
    streams: &StreamCtx,
    log: &EventLog,
    state: &mut [SegState],
) {
    let n = streams.comm.len();
    // 1. Drop queued communication work of segments >= f (stale waits
    //    and collectives about to be re-issued; queued kernels have no
    //    completion token yet, so this is safe). The comm streams are
    //    serial, so nothing of a segment > f ever started.
    for (d, &stream) in streams.comm.iter().enumerate() {
        world.abort_stream_queue(d, stream);
    }
    // 2. Release ranks parked inside communicator rendezvous without
    //    moving data (the `ncclCommAbort` analog). Only the frontier can
    //    hold a partial rendezvous; later segments are safe no-ops.
    for seg in segments.iter().skip(f) {
        seg.handles.comm.abort_pending(world, sim);
    }
    // 3. Revoke starved signal waits on the frontier's inherited tables.
    //    Later segments' waits were still queued (serial streams) and
    //    died with the queue in step 1.
    if let Some(seg) = segments.get(f) {
        for d in 0..n {
            if let Some(&table) = seg.handles.tables.get(d) {
                abort_counter_waits(world, sim, d, table);
            }
        }
    }
    // 4. Re-issue the frontier's incomplete groups. No compute-side gate:
    //    the frontier GEMM already retired (checked by the caller), and
    //    gating on a new compute-stream event would deadlock against
    //    compute streams parked on this segment's comm-done. Tail while
    //    part of the overlap survived; bulk (degrading the segment) when
    //    it produced nothing.
    if let (Some(seg), Some(plan), Some(slot)) = (segments.get(f), plans.get(f), state.get_mut(f)) {
        let role = if completed_groups(seg).is_empty() {
            slot.degraded
                .get_or_insert("overlap abandoned: no group completed before the wedge".into());
            CollectiveRole::Bulk
        } else {
            CollectiveRole::Tail
        };
        let issued = reissue_groups(world, sim, plan, seg, streams, f, role, true, log);
        slot.tail.extend(issued);
        rerecord_segment_events(world, sim, streams, seg);
    }
    // 5. Re-enqueue each later segment's comm program behind its
    //    rearm-ready gate, so the wait-prev-comm-done → reset → ready
    //    protocol is completed, never bypassed: segment f+1's gate is
    //    already recorded; f+2's parks until its compute-side rearm
    //    (woken by the events re-recorded above) records it.
    for j in (f + 1)..segments.len() {
        let (Some(seg), Some(plan)) = (segments.get(j), plans.get(j)) else {
            continue;
        };
        if let Some(ready) = &seg.ready {
            for (d, &ev) in ready.iter().enumerate() {
                let Some(&stream) = streams.comm.get(d) else {
                    continue;
                };
                enqueue(world, sim, d, stream, Box::new(WaitEvent(ev)));
            }
        }
        let issued = reissue_groups(
            world,
            sim,
            plan,
            seg,
            streams,
            j,
            CollectiveRole::Tail,
            false,
            log,
        );
        rerecord_segment_events(world, sim, streams, seg);
        if let Some(slot) = state.get_mut(j) {
            slot.reissued = true;
            slot.tail = issued;
        }
        let event = RuntimeEvent {
            at: sim.now(),
            device: 0,
            kind: RuntimeEventKind::TailRecovery,
            group: None,
            detail: format!("segment {j}: comm program re-enqueued behind segment {f} recovery"),
        };
        world.notify_runtime_event(&event);
        log.borrow_mut().push(event);
    }
}

/// Re-issues every incomplete group of a segment on the comm streams.
/// `ungated` (the frontier) issues collectives directly — its GEMM
/// retired, the packed buffers are complete. Gated re-issue (downstream
/// segments) restores the original signal discipline: a per-rank
/// `WaitCounter` at the group's unmutated threshold precedes each
/// collective, so re-enqueued communication still waits for the tiles
/// the (still-running) compute side signals.
#[allow(clippy::too_many_arguments)]
fn reissue_groups(
    world: &mut Cluster,
    sim: &mut ClusterSim,
    plan: &OverlapPlan,
    seg: &ChainSegment,
    streams: &StreamCtx,
    segment: usize,
    role: CollectiveRole,
    ungated: bool,
    log: &EventLog,
) -> Vec<usize> {
    let completed: Vec<bool> = seg
        .handles
        .probes
        .group_done
        .borrow()
        .iter()
        .map(Option::is_some)
        .collect();
    let thresholds = plan.group_tile_counts();
    let (kind, what) = match role {
        CollectiveRole::Tail => (RuntimeEventKind::TailRecovery, "tail"),
        _ => (RuntimeEventKind::DegradedFallback, "bulk"),
    };
    let mut issued = Vec::new();
    for (g, done) in completed.iter().enumerate() {
        if *done {
            continue;
        }
        let Some(spec) = plan.group_spec(g, &seg.handles.packed_bufs, &seg.handles.recv_bufs)
        else {
            continue; // Zero-payload group: nothing was ever owed.
        };
        if !ungated {
            for (d, &stream) in streams.comm.iter().enumerate() {
                let (Some(&table), Some(&threshold)) =
                    (seg.handles.tables.get(d), thresholds.get(g))
                else {
                    continue;
                };
                enqueue(
                    world,
                    sim,
                    d,
                    stream,
                    Box::new(WaitCounter {
                        table,
                        group: g,
                        threshold,
                    }),
                );
            }
        }
        let kernels = seg.handles.comm.kernels_with_role(spec, Some(g), role);
        for (d, kernel) in kernels.into_iter().enumerate() {
            let Some(&stream) = streams.comm.get(d) else {
                continue;
            };
            enqueue(world, sim, d, stream, Box::new(kernel));
            if d == 0 {
                let slot = seg.handles.probes.group_done.clone();
                enqueue(
                    world,
                    sim,
                    0,
                    stream,
                    Box::new(Callback(Box::new(move |_, s| {
                        if let Some(cell) = slot.borrow_mut().get_mut(g) {
                            *cell = Some(s.now());
                        }
                    }))),
                );
            }
        }
        if ungated {
            let event = RuntimeEvent {
                at: sim.now(),
                device: 0,
                kind,
                group: Some(g),
                detail: format!("segment {segment}: group {g} re-issued as {what} collective"),
            };
            world.notify_runtime_event(&event);
            log.borrow_mut().push(event);
        }
        issued.push(g);
    }
    issued
}

/// Re-records a segment's comm-side events with their original ids —
/// epilogue gates first, comm-done last, enqueued after the re-issued
/// collectives so they record in the original order. Re-recording the
/// same `GpuEventId` wakes every compute-stream waiter parked on it
/// (rearm edges, serial barriers, epilogue gates), which is what lets
/// the rest of the chain resume.
fn rerecord_segment_events(
    world: &mut Cluster,
    sim: &mut ClusterSim,
    streams: &StreamCtx,
    seg: &ChainSegment,
) {
    for (d, &gate) in seg.handles.epilogue_gates.iter().enumerate() {
        let Some(&stream) = streams.comm.get(d) else {
            continue;
        };
        enqueue(world, sim, d, stream, Box::new(RecordEvent(gate)));
    }
    for (d, &ev) in seg.comm_done.iter().enumerate() {
        let Some(&stream) = streams.comm.get(d) else {
            continue;
        };
        enqueue(world, sim, d, stream, Box::new(RecordEvent(ev)));
    }
}
