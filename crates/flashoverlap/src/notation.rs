//! Paper-notation glossary (Table 2) — where each symbol lives in code.
//!
//! | Paper | Meaning | Here |
//! |---|---|---|
//! | `M` | GEMM input dimension | [`gpu_sim::gemm::GemmDims::m`] |
//! | `N` | GEMM output dimension | [`gpu_sim::gemm::GemmDims::n`] |
//! | `K` | GEMM accumulation dimension | [`gpu_sim::gemm::GemmDims::k`] |
//! | `T` | number of waves | [`crate::OverlapPlan::total_waves`] |
//! | `P` | number of groups | [`crate::WavePartition::num_groups`] |
//! | `W_i` | the i-th wave (tile set) | [`gpu_sim::wave::WaveSchedule::wave`] |
//! | `G_j` | the j-th group (wave range) | [`crate::WavePartition::wave_range`] |
//! | `|G_j|` | waves in group j | [`crate::WavePartition::sizes`] |
//! | `S_1`, `S_P` | head/tail pruning bounds (§4.1.4) | [`crate::tuner::DEFAULT_S1`], [`crate::tuner::DEFAULT_SP`] |
//! | counting table | per-group finished-tile counters (§3.2.4) | [`gpu_sim::counter::CounterTable`] |
//! | mapping table | reordered tile indices (§3.3.4) | [`crate::mapping`] |
//!
//! This module carries no code — it exists so the paper-to-implementation
//! correspondence is part of the rustdoc.
