//! The FlashOverlap runtime (§3.1, §5).
//!
//! One simulated run executes, per rank:
//!
//! - a single GEMM kernel on the *compute stream*, with the
//!   pre-communication reordering packed into its epilogue and a counting
//!   table hook;
//! - per wave group, a signaling kernel ([`gpu_sim::stream::WaitCounter`])
//!   followed by one collective call on the *communication stream*.
//!
//! The GEMM main loop is never interrupted; communication of group `G_i`
//! starts as soon as the counting table shows all of `G_i`'s tiles
//! finished, while later waves keep computing. The collective is a plain
//! library call over the group's contiguous packed region — exactly the
//! NCCL-call structure of the real system.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use collectives::{CollectiveRole, CollectiveSpec, Communicator, Primitive, Region};
use gpu_sim::arch::RemapGranularity;
use gpu_sim::elementwise::{ElementwiseKernel, ElementwiseOp, Gather};
use gpu_sim::gemm::{CounterHook, EpilogueWriter, GemmConfig, GemmDims, GemmKernel};
use gpu_sim::memory::BufferId;
use gpu_sim::monitor::ClusterMonitor;
use gpu_sim::stream::{
    abort_counter_waits, enqueue, Callback, RecordEvent, WaitCounter, WaitEvent,
};
use gpu_sim::wave::WaveSchedule;
use gpu_sim::{Cluster, ClusterSim, IncrementFault, RuntimeEvent, RuntimeEventKind};
use sim::{EngineProbe, Sim, SimDuration, SimTime};
use tensor::Matrix;

use crate::error::FlashOverlapError;
use crate::mapping::{SubtileMapping, TileMapping, TokenMapping};
use crate::partition::WavePartition;
use crate::predictor::LatencyPredictor;
use crate::resilience::{Fault, FaultPlan, ResilientOutcome, ResilientReport, WatchdogConfig};
use crate::system::SystemSpec;
use crate::writers::{PackedTileWriter, SubtilePackedWriter, TokenPoolWriter};

/// The communication pattern following the GEMM.
#[derive(Debug, Clone)]
pub enum CommPattern {
    /// Tensor-parallel AllReduce of partial GEMM results.
    AllReduce,
    /// ReduceScatter of partial GEMM results (TP training / FSDP).
    ReduceScatter,
    /// Expert-parallel All-to-All with per-rank token routing
    /// (`routing[rank][row] = destination rank`).
    AllToAll {
        /// Token routing tables.
        routing: Vec<Vec<usize>>,
    },
    /// Column-parallel AllGather: each rank's local `M x N` output is
    /// one column shard; every rank ends up with the `M x (N * n)`
    /// concatenation.
    AllGather,
}

impl CommPattern {
    /// The collective primitive this pattern uses.
    pub fn primitive(&self) -> Primitive {
        match self {
            CommPattern::AllReduce => Primitive::AllReduce,
            CommPattern::ReduceScatter => Primitive::ReduceScatter,
            CommPattern::AllToAll { .. } => Primitive::AllToAll,
            CommPattern::AllGather => Primitive::AllGather,
        }
    }
}

enum PlanMapping {
    Tile(Rc<TileMapping>),
    Subtile(Rc<SubtileMapping>),
    Token(Rc<TokenMapping>),
    /// AllGather shares the tile-level packing; only the communication
    /// call and the post-remap differ.
    Gather(Rc<TileMapping>),
}

/// A fully resolved overlap execution plan: shape, system, GEMM
/// configuration, wave partition, and reordering mapping.
///
/// # Examples
///
/// ```
/// use flashoverlap::{ExecOptions, OverlapPlan, SystemSpec};
/// use flashoverlap::runtime::CommPattern;
/// use gpu_sim::gemm::GemmDims;
///
/// // Tune and run a tensor-parallel GEMM+AllReduce on 4 simulated 4090s.
/// let system = SystemSpec::rtx4090(4);
/// let dims = GemmDims::new(4096, 8192, 8192);
/// let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system)?;
/// let report = plan.execute_with(&ExecOptions::new())?.report;
/// assert!(report.gemm_done <= report.latency);
/// # Ok::<(), flashoverlap::FlashOverlapError>(())
/// ```
pub struct OverlapPlan {
    /// Target system.
    pub system: SystemSpec,
    /// Per-rank local GEMM dimensions.
    pub dims: GemmDims,
    /// GEMM kernel configuration (CUTLASS-profiler stand-in output).
    pub config: GemmConfig,
    /// Planned wave schedule (with communication SMs subtracted, Alg. 1
    /// line 3).
    pub schedule: WaveSchedule,
    /// The wave partition into groups.
    pub partition: WavePartition,
    pattern: CommPattern,
    mapping: PlanMapping,
}

impl std::fmt::Debug for OverlapPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlapPlan")
            .field("dims", &self.dims)
            .field("config", &self.config)
            .field("partition", &self.partition)
            .field("pattern", &self.pattern)
            .finish_non_exhaustive()
    }
}

/// Timing results of one simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// GEMM launch to final completion (GEMM and all communication): the
    /// operator latency compared against baselines.
    pub latency: SimDuration,
    /// When the GEMM kernel itself finished.
    pub gemm_done: SimDuration,
    /// Completion time of each group's collective (zero for skipped
    /// zero-payload groups).
    pub group_comm_done: Vec<SimDuration>,
    /// Completion of the fused post-communication epilogue kernel, when
    /// one was requested (`None` otherwise). This is the end-to-end time
    /// including the remap of Fig. 6.
    pub epilogue_done: Option<SimDuration>,
}

/// A deliberate corruption of the signaling protocol, used to self-test
/// dynamic analysis tools: a correct sanitizer must flag every mutated
/// run. Mirrors mutation testing of the real system's signal kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalMutation {
    /// Skip `rank`'s signal wait before `group`'s collective, letting the
    /// communication read tiles the epilogue may not have written yet
    /// (the use-before-signal bug class).
    DropWait {
        /// The rank whose wait is dropped.
        rank: usize,
        /// The wave group whose wait is dropped.
        group: usize,
    },
    /// Raise `rank`'s wait threshold for `group` beyond the group's tile
    /// count, so the signal never arrives and the wait starves (the
    /// lost-signal / deadlock bug class).
    RaiseThreshold {
        /// The rank whose threshold is corrupted.
        rank: usize,
        /// The wave group whose threshold is corrupted.
        group: usize,
    },
}

impl SignalMutation {
    /// The threshold to enqueue for `(rank, group)` given the correct
    /// `threshold`; `None` means the wait is dropped entirely.
    fn threshold_for(
        mutation: Option<SignalMutation>,
        rank: usize,
        group: usize,
        threshold: u32,
    ) -> Option<u32> {
        match mutation {
            Some(SignalMutation::DropWait { rank: r, group: g }) if r == rank && g == group => None,
            Some(SignalMutation::RaiseThreshold { rank: r, group: g })
                if r == rank && g == group =>
            {
                // Any value above the group's tile count is unreachable.
                Some(threshold + 1_000_000)
            }
            _ => Some(threshold),
        }
    }
}

/// Observation hooks and fault injection for an instrumented run (see
/// [`ExecOptions::instrument`]). The `simsan` crate provides
/// monitor/probe implementations; this crate stays policy-free.
#[derive(Default)]
pub struct Instrumentation {
    /// Access/synchronization observer to attach to the cluster.
    pub monitor: Option<Rc<dyn ClusterMonitor>>,
    /// Engine probe to attach to the simulation (drain callbacks).
    pub probe: Option<Rc<dyn EngineProbe<Cluster>>>,
    /// Optional seeded signal-protocol corruption.
    pub mutation: Option<SignalMutation>,
}

impl std::fmt::Debug for Instrumentation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instrumentation")
            .field("monitor", &self.monitor.is_some())
            .field("probe", &self.probe.is_some())
            .field("mutation", &self.mutation)
            .finish()
    }
}

/// Per-rank input operands for a functional run.
#[derive(Debug, Clone)]
pub struct FunctionalInputs {
    /// Per-rank `M x K` activations.
    pub a: Vec<Matrix>,
    /// Per-rank `K x N` weights.
    pub b: Vec<Matrix>,
}

impl FunctionalInputs {
    /// Generates deterministic random inputs for a problem.
    pub fn random(dims: GemmDims, n_ranks: usize, seed: u64) -> Self {
        let mut rng = sim::DetRng::new(seed);
        let a = (0..n_ranks)
            .map(|_| Matrix::random(dims.m as usize, dims.k as usize, &mut rng))
            .collect();
        let b = (0..n_ranks)
            .map(|_| Matrix::random(dims.k as usize, dims.n as usize, &mut rng))
            .collect();
        FunctionalInputs { a, b }
    }
}

/// Results of a functional (data-carrying) run.
#[derive(Debug, Clone)]
pub struct FunctionalReport {
    /// Timing (identical machinery to a timing-mode run).
    pub report: RunReport,
    /// Per-rank logical outputs after the post-communication remap: the
    /// full reduced `M x N` matrix for AllReduce, the rank's `M/n x N`
    /// row slice (rows `r % n == rank`, ascending) for ReduceScatter, and
    /// the received tokens (source-major, row-ascending) for All-to-All.
    pub outputs: Vec<Matrix>,
}

/// Options for [`OverlapPlan::execute_with`]: one builder covering every
/// execution mode the runtime supports — timing, instrumented, traced,
/// functional, fused-epilogue, steady-state iteration, and resilient —
/// replacing the former `execute*` method matrix.
///
/// Modes compose where the composition is meaningful and are rejected
/// with [`FlashOverlapError::BadInputs`] where it is not (see
/// [`OverlapPlan::execute_with`]).
#[derive(Debug, Default)]
pub struct ExecOptions<'a> {
    instrument: Option<&'a Instrumentation>,
    trace: bool,
    epilogue: Option<&'a ElementwiseOp>,
    functional: Option<&'a FunctionalInputs>,
    resilient: Option<(&'a FaultPlan, &'a WatchdogConfig)>,
    iterations: Option<usize>,
}

impl<'a> ExecOptions<'a> {
    /// Plain timing-mode options (the former `execute`).
    pub fn new() -> Self {
        ExecOptions::default()
    }

    /// Attaches observation hooks and the optional seeded signal
    /// mutation. An instrumented run skips the quiescence check: a
    /// wedge a seeded [`SignalMutation`] causes is left for the attached
    /// probe to report at drain time rather than turned into an error.
    pub fn instrument(mut self, instr: &'a Instrumentation) -> Self {
        self.instrument = Some(instr);
        self
    }

    /// Records per-stream operation spans (timeline / Perfetto export)
    /// into [`ExecOutcome::spans`].
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Fuses `op` into a post-communication epilogue kernel (Fig. 6),
    /// paying the granularity-dependent remap cost of Table 4.
    pub fn epilogue(mut self, op: &'a ElementwiseOp) -> Self {
        self.epilogue = Some(op);
        self
    }

    /// Runs functionally on real data; per-rank post-remap outputs land
    /// in [`ExecOutcome::outputs`].
    pub fn functional(mut self, inputs: &'a FunctionalInputs) -> Self {
        self.functional = Some(inputs);
        self
    }

    /// Runs under the watchdog with `faults` armed: a wedge is broken by
    /// the escalation ladder and reported as a structured
    /// [`ResilientOutcome`] instead of hanging.
    pub fn resilient(mut self, faults: &'a FaultPlan, watchdog: &'a WatchdogConfig) -> Self {
        self.resilient = Some((faults, watchdog));
        self
    }

    /// Runs `n` back-to-back instances of the plan in one simulation
    /// (kernel launches queued on the same streams, as a serving loop
    /// would) and reports the steady-state average latency in
    /// [`ExecOutcome::steady_state`].
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = Some(n);
        self
    }
}

/// Unified result of [`OverlapPlan::execute_with`]. Fields a mode does
/// not produce hold their neutral value: empty `spans`/`events`, `None`
/// `outputs`/`steady_state`, [`ResilientOutcome::Clean`], zero
/// `faults_armed`.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Timing of the run (in iteration mode, `latency` holds the
    /// steady-state average and the per-group fields are empty).
    pub report: RunReport,
    /// Recorded per-stream spans when [`ExecOptions::trace`] was set.
    pub spans: Vec<gpu_sim::OpSpan>,
    /// Per-rank logical outputs when [`ExecOptions::functional`] was
    /// set.
    pub outputs: Option<Vec<Matrix>>,
    /// How the run terminated (`Clean` outside resilient mode).
    pub outcome: ResilientOutcome,
    /// Watchdog/fault events recorded in resilient mode.
    pub events: Vec<RuntimeEvent>,
    /// Faults armed in resilient mode.
    pub faults_armed: usize,
    /// Steady-state average latency when [`ExecOptions::iterations`] was
    /// set.
    pub steady_state: Option<SimDuration>,
}

impl ExecOutcome {
    /// Events of one kind from the resilient event log.
    pub fn events_of(&self, kind: gpu_sim::RuntimeEventKind) -> Vec<&RuntimeEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }
}

impl OverlapPlan {
    /// Builds a plan for `dims` with an explicit wave partition.
    ///
    /// # Errors
    ///
    /// Returns an error if the partition does not cover the planned wave
    /// count or the shape violates the pattern's reordering constraints.
    pub fn new(
        dims: GemmDims,
        pattern: CommPattern,
        system: SystemSpec,
        partition: WavePartition,
    ) -> Result<Self, FlashOverlapError> {
        let mut config = GemmConfig::choose(dims, &system.arch);
        if matches!(pattern, CommPattern::AllToAll { .. }) {
            // Token pools fill when a row *band* completes (every tile
            // covering the row). Column-strip swizzling finishes each band
            // only in its last strip — near the end of the GEMM — which
            // would serialize all All-to-All traffic behind the
            // computation. Rasterizing along rows completes bands
            // progressively; the real system co-selects the rasterization
            // with the comm pattern in its profiler step.
            config.swizzle = gpu_sim::swizzle::Swizzle::StripRows { height: 1 };
        }
        let grid = config.grid(dims);
        let issue = config.swizzle.issue_order(&grid);
        let schedule = WaveSchedule::new(&issue, system.compute_sms());
        partition.check_covers(schedule.num_waves())?;
        let mapping = match &pattern {
            CommPattern::AllReduce => {
                PlanMapping::Tile(Rc::new(TileMapping::build(grid, &schedule, &partition)))
            }
            CommPattern::ReduceScatter => {
                if !(dims.m as usize).is_multiple_of(system.n_gpus) {
                    return Err(FlashOverlapError::IncompatibleShape {
                        reason: format!(
                            "ReduceScatter output rows {} must divide across {} ranks",
                            dims.m, system.n_gpus
                        ),
                    });
                }
                PlanMapping::Subtile(Rc::new(SubtileMapping::build(
                    grid,
                    &schedule,
                    &partition,
                    system.n_gpus,
                )?))
            }
            CommPattern::AllToAll { routing } => {
                if routing.len() != system.n_gpus {
                    return Err(FlashOverlapError::BadInputs {
                        reason: format!(
                            "{} routing tables for {} ranks",
                            routing.len(),
                            system.n_gpus
                        ),
                    });
                }
                PlanMapping::Token(Rc::new(TokenMapping::build(
                    grid, &schedule, &partition, routing,
                )?))
            }
            CommPattern::AllGather => {
                PlanMapping::Gather(Rc::new(TileMapping::build(grid, &schedule, &partition)))
            }
        };
        Ok(OverlapPlan {
            system,
            dims,
            config,
            schedule,
            partition,
            pattern,
            mapping,
        })
    }

    /// The number of planned waves `T`.
    pub fn total_waves(&self) -> u32 {
        self.schedule.num_waves()
    }

    /// The communication primitive.
    pub fn primitive(&self) -> Primitive {
        self.pattern.primitive()
    }

    /// The communication pattern.
    pub fn pattern(&self) -> &CommPattern {
        &self.pattern
    }

    /// Per-group tile counts (the signaling thresholds).
    pub fn group_tile_counts(&self) -> &[u32] {
        match &self.mapping {
            PlanMapping::Tile(m) | PlanMapping::Gather(m) => &m.layout.group_tile_counts,
            PlanMapping::Subtile(m) => &m.layout.group_tile_counts,
            PlanMapping::Token(m) => &m.layout.group_tile_counts,
        }
    }

    /// Per-group communicated element counts (per rank; the max across
    /// ranks for All-to-All).
    pub fn group_payload_elems(&self) -> Vec<usize> {
        match &self.mapping {
            PlanMapping::Tile(m) | PlanMapping::Gather(m) => {
                m.group_regions.iter().map(|&(_, c)| c).collect()
            }
            PlanMapping::Subtile(m) => m.send_group_regions.iter().map(|&(_, c)| c).collect(),
            PlanMapping::Token(m) => (0..m.group_plans.len())
                .map(|g| {
                    (0..m.n_ranks)
                        .map(|src| m.group_send_elems(g, src))
                        .max()
                        .unwrap_or(0)
                })
                .collect(),
        }
    }

    /// Executes the plan with the modes selected in `options` — the
    /// single runtime entry point, which replaced the former `execute*`
    /// method matrix.
    ///
    /// Mode semantics:
    ///
    /// - Uninstrumented, non-resilient runs verify stream quiescence and
    ///   turn a wedged schedule into [`FlashOverlapError::Deadlock`].
    ///   Instrumented runs skip that check: a wedge a seeded
    ///   [`SignalMutation`] causes is left for the attached probe to
    ///   report at drain time (lost-signal/deadlock findings).
    /// - [`ExecOptions::resilient`] composes with
    ///   [`ExecOptions::functional`], [`ExecOptions::trace`], a monitor
    ///   hook, and [`ExecOptions::iterations`] (the fault plan arms at
    ///   the final, steady-state iteration and the whole chain runs
    ///   under the chain watchdog), but rejects epilogues, probes, and
    ///   mutations (faults are the resilient path's corruption
    ///   vocabulary).
    /// - [`ExecOptions::iterations`] is timing-only: it composes with
    ///   instrumentation (the mutation applies to the final iteration)
    ///   but rejects functional, epilogue, and trace requests.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] on malformed inputs,
    /// invalid mode combinations, out-of-range fault targets, or zero
    /// iterations; [`FlashOverlapError::Deadlock`] when an
    /// uninstrumented schedule wedges; and
    /// [`FlashOverlapError::Simulation`] on engine failure.
    pub fn execute_with(&self, options: &ExecOptions) -> Result<ExecOutcome, FlashOverlapError> {
        if let Some((faults, watchdog)) = options.resilient {
            return self.run_resilient_with(options, faults, watchdog);
        }
        if let Some(iterations) = options.iterations {
            if options.functional.is_some() || options.epilogue.is_some() || options.trace {
                return Err(FlashOverlapError::BadInputs {
                    reason: "iteration mode is timing-only: \
                             drop .functional()/.epilogue()/.trace()"
                        .into(),
                });
            }
            let default_instr = Instrumentation::default();
            let steady =
                self.run_iterations(iterations, options.instrument.unwrap_or(&default_instr))?;
            return Ok(ExecOutcome {
                report: RunReport {
                    latency: steady,
                    gemm_done: SimDuration::ZERO,
                    group_comm_done: Vec::new(),
                    epilogue_done: None,
                },
                spans: Vec::new(),
                outputs: None,
                outcome: ResilientOutcome::Clean,
                events: Vec::new(),
                faults_armed: 0,
                steady_state: Some(steady),
            });
        }
        self.run_single(options)
    }

    /// The resilient arm of [`OverlapPlan::execute_with`].
    fn run_resilient_with(
        &self,
        options: &ExecOptions,
        faults: &FaultPlan,
        watchdog: &WatchdogConfig,
    ) -> Result<ExecOutcome, FlashOverlapError> {
        if options.epilogue.is_some() {
            return Err(FlashOverlapError::BadInputs {
                reason: "resilient mode does not support a fused epilogue".into(),
            });
        }
        if options
            .instrument
            .is_some_and(|i| i.probe.is_some() || i.mutation.is_some())
        {
            return Err(FlashOverlapError::BadInputs {
                reason: "resilient mode supports only a monitor hook; \
                         use a FaultPlan to corrupt signaling"
                    .into(),
            });
        }
        if let Some(iterations) = options.iterations {
            return self.run_resilient_iterations(options, iterations, faults, watchdog);
        }
        if let Some(inputs) = options.functional {
            self.check_inputs(inputs)?;
        }
        let monitor = options.instrument.and_then(|i| i.monitor.clone());
        let (resilient, outputs, spans) =
            self.run_resilient(options.functional, faults, watchdog, options.trace, monitor)?;
        Ok(ExecOutcome {
            report: resilient.report,
            spans,
            outputs,
            outcome: resilient.outcome,
            events: resilient.events,
            faults_armed: resilient.faults_armed,
            steady_state: None,
        })
    }

    /// Resilient iteration mode: `n` back-to-back instances on one
    /// stream pair under the chain watchdog. The fault plan arms at the
    /// final iteration — counting-table reuse has reached steady state
    /// by then, so an injected wedge exercises the inherited-table
    /// recovery path rather than a fresh-table special case. The
    /// reported outcome is the most severe across iterations.
    fn run_resilient_iterations(
        &self,
        options: &ExecOptions,
        iterations: usize,
        faults: &FaultPlan,
        watchdog: &WatchdogConfig,
    ) -> Result<ExecOutcome, FlashOverlapError> {
        if options.functional.is_some() || options.trace {
            return Err(FlashOverlapError::BadInputs {
                reason: "iteration mode is timing-only: drop .functional()/.trace()".into(),
            });
        }
        let Some(last) = iterations.checked_sub(1) else {
            return Err(FlashOverlapError::BadInputs {
                reason: "iteration count must be positive".into(),
            });
        };
        let mut chain_faults = vec![FaultPlan::none(); iterations];
        chain_faults[last] = faults.clone();
        let plans = vec![self; iterations];
        let mut seq_options =
            crate::sequence::SequenceOptions::new().resilient(&chain_faults, watchdog);
        if let Some(instr) = options.instrument {
            seq_options = seq_options.instrument(instr);
        }
        let seq = crate::sequence::execute_sequence(&plans, &seq_options)?;
        let severity = |o: &ResilientOutcome| match o {
            ResilientOutcome::Clean => 0,
            ResilientOutcome::Recovered { .. } => 1,
            ResilientOutcome::Degraded { .. } => 2,
        };
        let outcome = seq
            .outcomes
            .iter()
            .max_by_key(|o| severity(o))
            .cloned()
            .unwrap_or(ResilientOutcome::Clean);
        let steady = SimDuration::from_nanos(seq.total.as_nanos() / iterations as u64);
        Ok(ExecOutcome {
            report: RunReport {
                latency: steady,
                gemm_done: SimDuration::ZERO,
                group_comm_done: Vec::new(),
                epilogue_done: None,
            },
            spans: Vec::new(),
            outputs: None,
            outcome,
            events: seq.events,
            faults_armed: seq.faults_armed,
            steady_state: Some(steady),
        })
    }

    /// The single-run arm of [`OverlapPlan::execute_with`] (every mode
    /// except resilient and iteration).
    fn run_single(&self, options: &ExecOptions) -> Result<ExecOutcome, FlashOverlapError> {
        if let Some(inputs) = options.functional {
            self.check_inputs(inputs)?;
        }
        if let Some(op) = options.epilogue {
            self.check_epilogue(op)?;
        }
        let default_instr = Instrumentation::default();
        let instr = options.instrument.unwrap_or(&default_instr);
        let mut world = self.system.build_cluster(options.functional.is_some());
        if options.trace {
            world.enable_op_spans();
        }
        if let Some(monitor) = &instr.monitor {
            world.set_monitor(Rc::clone(monitor));
        }
        let mut sim: ClusterSim = Sim::new();
        if let Some(probe) = &instr.probe {
            sim.set_probe(Rc::clone(probe));
        }
        let streams = StreamCtx::create(&mut world, self.system.n_gpus);
        let handles = self.enqueue_program_on(
            &mut world,
            &mut sim,
            options.functional,
            options.epilogue,
            &streams,
            None,
            instr.mutation,
            None,
        );
        sim.run(&mut world)?;
        let instrumented =
            instr.monitor.is_some() || instr.probe.is_some() || instr.mutation.is_some();
        if !instrumented {
            check_quiescent(&world)?;
        }
        let spans = if options.trace {
            world.op_spans.take().unwrap_or_default()
        } else {
            Vec::new()
        };
        let outputs = match (options.functional, options.epilogue) {
            (Some(_), Some(_)) => {
                // The fused kernel produced the logical result in the
                // epilogue buffers (not host-side post-processing).
                let n = self.system.n_gpus;
                Some(
                    (0..n)
                        .map(|d| {
                            let (rows, cols) = self.logical_shape(d);
                            let buf = handles.epilogue_bufs[d].expect("epilogue requested");
                            let data = world.devices[d].mem.snapshot(buf);
                            Matrix::from_vec(rows, cols, data)
                        })
                        .collect(),
                )
            }
            (Some(_), None) => Some(self.extract_outputs(&world, &handles)),
            _ => None,
        };
        Ok(ExecOutcome {
            report: handles.probes.into_report(),
            spans,
            outputs,
            outcome: ResilientOutcome::Clean,
            events: Vec::new(),
            faults_armed: 0,
            steady_state: None,
        })
    }

    fn run_iterations(
        &self,
        iterations: usize,
        instr: &Instrumentation,
    ) -> Result<SimDuration, FlashOverlapError> {
        if iterations == 0 {
            return Err(FlashOverlapError::BadInputs {
                reason: "need at least one iteration".into(),
            });
        }
        // Steady state is this plan repeated back to back on one stream
        // pair — exactly a homogeneous pipelined sequence. The mutation
        // (if any) lands on the final iteration, after counting-table
        // reuse reached steady state.
        let plans = vec![self; iterations];
        let outcome = crate::sequence::execute_sequence(
            &plans,
            &crate::sequence::SequenceOptions::new().instrument(instr),
        )?;
        Ok(SimDuration::from_nanos(
            outcome.total.as_nanos() / iterations as u64,
        ))
    }

    /// Validates an epilogue operator against this plan's logical output
    /// shape.
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] on parameter-length
    /// mismatch.
    pub fn validate_epilogue(&self, op: &ElementwiseOp) -> Result<(), FlashOverlapError> {
        self.check_epilogue(op)
    }

    /// Validates functional inputs against this plan's shapes (also used
    /// by [`crate::pipeline`]).
    ///
    /// # Errors
    ///
    /// Returns [`FlashOverlapError::BadInputs`] on shape mismatch.
    pub fn check_inputs_pub(&self, inputs: &FunctionalInputs) -> Result<(), FlashOverlapError> {
        self.check_inputs(inputs)
    }

    fn check_epilogue(&self, op: &ElementwiseOp) -> Result<(), FlashOverlapError> {
        let (_, cols) = self.logical_shape(0);
        let len = match op {
            ElementwiseOp::BiasAdd(bias) => bias.len(),
            ElementwiseOp::RmsNorm { weight, .. } => weight.len(),
            _ => cols,
        };
        if len != cols {
            return Err(FlashOverlapError::BadInputs {
                reason: format!("epilogue parameter length {len} != N = {cols}"),
            });
        }
        Ok(())
    }

    /// Logical output shape of rank `d` after the post-communication
    /// remap.
    pub fn logical_shape(&self, d: usize) -> (usize, usize) {
        match &self.mapping {
            PlanMapping::Tile(_) => (self.dims.m as usize, self.dims.n as usize),
            PlanMapping::Subtile(_) => (
                self.dims.m as usize / self.system.n_gpus,
                self.dims.n as usize,
            ),
            PlanMapping::Token(m) => (m.recv_row_gather[d].len(), self.dims.n as usize),
            PlanMapping::Gather(_) => (
                self.dims.m as usize,
                self.dims.n as usize * self.system.n_gpus,
            ),
        }
    }

    /// The remap granularity of this plan's post-communication gather.
    pub fn remap_granularity(&self) -> RemapGranularity {
        match &self.mapping {
            PlanMapping::Tile(_) | PlanMapping::Gather(_) => RemapGranularity::Tile,
            PlanMapping::Subtile(_) => RemapGranularity::Subtile,
            PlanMapping::Token(_) => RemapGranularity::Token,
        }
    }

    fn check_inputs(&self, inputs: &FunctionalInputs) -> Result<(), FlashOverlapError> {
        let n = self.system.n_gpus;
        if inputs.a.len() != n || inputs.b.len() != n {
            return Err(FlashOverlapError::BadInputs {
                reason: format!(
                    "expected {n} A and B operands, got {} and {}",
                    inputs.a.len(),
                    inputs.b.len()
                ),
            });
        }
        for r in 0..n {
            if inputs.a[r].rows() != self.dims.m as usize
                || inputs.a[r].cols() != self.dims.k as usize
            {
                return Err(FlashOverlapError::BadInputs {
                    reason: format!("rank {r} A operand is not {}x{}", self.dims.m, self.dims.k),
                });
            }
            if inputs.b[r].rows() != self.dims.k as usize
                || inputs.b[r].cols() != self.dims.n as usize
            {
                return Err(FlashOverlapError::BadInputs {
                    reason: format!("rank {r} B operand is not {}x{}", self.dims.k, self.dims.n),
                });
            }
        }
        Ok(())
    }

    /// Enqueues the overlap program on caller-provided streams, optionally
    /// reading activations from existing per-rank buffers instead of
    /// allocating them (how pipelines chain layers).
    #[expect(
        clippy::too_many_arguments,
        reason = "internal plumbing shared by execute/pipeline/mutation paths"
    )]
    pub(crate) fn enqueue_program_on(
        &self,
        world: &mut Cluster,
        sim: &mut ClusterSim,
        inputs: Option<&FunctionalInputs>,
        epilogue: Option<&ElementwiseOp>,
        streams: &StreamCtx,
        a_override: Option<&[BufferId]>,
        mutation: Option<SignalMutation>,
        tables_override: Option<&[usize]>,
    ) -> ProgramHandles {
        let n = self.system.n_gpus;
        let comm = Communicator::with_topology(
            (0..n).collect(),
            self.system.topology.clone(),
            self.system.comm_sms,
            self.system.algorithm,
        );
        let counts = self.group_tile_counts().to_vec();
        let num_groups = counts.len();
        let grid = self.config.grid(self.dims);

        let compute_streams = &streams.compute;
        let comm_streams = &streams.comm;
        let mut tables = Vec::with_capacity(n);
        let mut packed_bufs = Vec::with_capacity(n);
        let mut recv_bufs = Vec::with_capacity(n);
        let mut a_bufs = Vec::with_capacity(n);
        let mut b_bufs = Vec::with_capacity(n);
        for d in 0..n {
            let writer = self.writer_for(d);
            let dev = &mut world.devices[d];
            tables.push(match tables_override {
                // Reused (serving-loop) tables: the caller reset them and
                // guarantees they have at least `num_groups` slots.
                Some(t) => t[d],
                None => dev.create_counter(num_groups),
            });
            a_bufs.push(match (a_override, inputs) {
                (Some(bufs), _) => bufs[d],
                (None, Some(inp)) => dev.mem.alloc_init(inp.a[d].as_slice()),
                (None, None) => dev.mem.alloc((self.dims.m * self.dims.k) as usize),
            });
            b_bufs.push(match inputs {
                Some(inp) => dev.mem.alloc_init(inp.b[d].as_slice()),
                None => dev.mem.alloc((self.dims.k * self.dims.n) as usize),
            });
            packed_bufs.push(dev.mem.alloc(writer.out_len(&grid)));
            recv_bufs.push(match &self.mapping {
                // AllReduce is in place: the packed buffer doubles as recv.
                PlanMapping::Tile(_) => packed_bufs[d],
                PlanMapping::Subtile(m) => dev.mem.alloc(m.recv_elems),
                PlanMapping::Token(m) => dev.mem.alloc(m.recv_elems[d].max(1)),
                PlanMapping::Gather(m) => {
                    dev.mem.alloc(m.all_gather_recv_elems(self.system.n_gpus))
                }
            });
        }

        let probes = Probes::new(num_groups);

        // Host-process launch skew: each rank's whole program starts a
        // random delay late (both its streams — the host thread submits
        // everything).
        if self.system.launch_skew_ns > 0 {
            for d in 0..n {
                let delay = {
                    let dev = &mut world.devices[d];
                    sim::SimDuration::from_nanos(
                        dev.rng.uniform(0.0, self.system.launch_skew_ns as f64) as u64,
                    )
                };
                enqueue(
                    world,
                    sim,
                    d,
                    compute_streams[d],
                    Box::new(gpu_sim::stream::Delay(delay)),
                );
                enqueue(
                    world,
                    sim,
                    d,
                    comm_streams[d],
                    Box::new(gpu_sim::stream::Delay(delay)),
                );
            }
        }

        // Compute stream: the single GEMM kernel plus a completion probe.
        for d in 0..n {
            let kernel = GemmKernel {
                a: a_bufs[d],
                b: b_bufs[d],
                out: packed_bufs[d],
                dims: self.dims,
                config: self.config,
                writer: self.writer_for(d),
                counter: Some(CounterHook {
                    table: tables[d],
                    group_of_tile: Rc::new(self.group_of_tile().to_vec()),
                }),
            };
            enqueue(world, sim, d, compute_streams[d], Box::new(kernel));
            if d == 0 {
                let gemm_done = probes.gemm_done.clone();
                enqueue(
                    world,
                    sim,
                    0,
                    compute_streams[0],
                    Box::new(Callback(Box::new(move |_, s| {
                        gemm_done.set(Some(s.now()));
                    }))),
                );
            }
        }

        // Communication stream: per group, a signaling kernel then the
        // collective call.
        #[expect(clippy::needless_range_loop)]
        for g in 0..num_groups {
            let Some(spec) = self.group_spec(g, &packed_bufs, &recv_bufs) else {
                // Zero-payload group (possible for All-to-All): nothing to
                // wait for or send.
                continue;
            };
            let kernels = comm.kernels_tagged(spec, Some(g));
            for (d, kernel) in kernels.into_iter().enumerate() {
                // A seeded mutation may drop or corrupt this rank's wait
                // (sanitizer self-tests); `None` skips the wait entirely.
                if let Some(threshold) = SignalMutation::threshold_for(mutation, d, g, counts[g]) {
                    enqueue(
                        world,
                        sim,
                        d,
                        comm_streams[d],
                        Box::new(WaitCounter {
                            table: tables[d],
                            group: g,
                            threshold,
                        }),
                    );
                }
                enqueue(world, sim, d, comm_streams[d], Box::new(kernel));
                if d == 0 {
                    let slot = probes.group_done.clone();
                    enqueue(
                        world,
                        sim,
                        0,
                        comm_streams[0],
                        Box::new(Callback(Box::new(move |_, s| {
                            slot.borrow_mut()[g] = Some(s.now());
                        }))),
                    );
                }
            }
        }

        // Fused post-communication epilogue (Fig. 6): wait for the comm
        // stream to drain, then run the element-wise kernel with the
        // remap gathered in.
        let mut epilogue_bufs: Vec<Option<BufferId>> = vec![None; n];
        let mut epilogue_gates = Vec::new();
        if let Some(op) = epilogue {
            let granularity = self.remap_granularity();
            for d in 0..n {
                let (rows, cols) = self.logical_shape(d);
                let comm_done = world.devices[d].create_event();
                epilogue_gates.push(comm_done);
                enqueue(
                    world,
                    sim,
                    d,
                    comm_streams[d],
                    Box::new(RecordEvent(comm_done)),
                );
                enqueue(
                    world,
                    sim,
                    d,
                    compute_streams[d],
                    Box::new(WaitEvent(comm_done)),
                );
                if rows == 0 {
                    // Nothing received (possible for All-to-All): still
                    // allocate an empty logical buffer.
                    epilogue_bufs[d] = Some(world.devices[d].mem.alloc(0));
                    continue;
                }
                let gather = if world.functional {
                    self.epilogue_gather(d)
                } else {
                    Gather::None
                };
                let output = world.devices[d].mem.alloc(rows * cols);
                epilogue_bufs[d] = Some(output);
                let kernel = ElementwiseKernel {
                    input: recv_bufs[d],
                    output,
                    rows,
                    cols,
                    op: op.clone(),
                    gather,
                    remap_cost: Some(granularity),
                };
                enqueue(world, sim, d, compute_streams[d], Box::new(kernel));
                if d == 0 {
                    let slot = probes.epilogue_done.clone();
                    enqueue(
                        world,
                        sim,
                        0,
                        compute_streams[0],
                        Box::new(Callback(Box::new(move |_, s| {
                            slot.set(Some(s.now()));
                        }))),
                    );
                }
            }
        }

        ProgramHandles {
            probes,
            packed_bufs,
            recv_bufs,
            epilogue_bufs,
            epilogue_gates,
            comm,
            tables,
        }
    }

    /// The gather pattern of the fused remap for rank `d` (functional
    /// mode only — timing mode needs just the granularity).
    fn epilogue_gather(&self, d: usize) -> Gather {
        match &self.mapping {
            PlanMapping::Tile(m) => Gather::Elements(Rc::new(m.element_gather())),
            PlanMapping::Subtile(m) => Gather::Elements(Rc::new(m.recv_gather(d))),
            PlanMapping::Token(m) => Gather::Rows(Rc::new(m.recv_row_gather[d].clone())),
            PlanMapping::Gather(m) => {
                Gather::Elements(Rc::new(m.all_gather_gather(self.system.n_gpus)))
            }
        }
    }

    pub(crate) fn writer_for(&self, rank: usize) -> Rc<dyn EpilogueWriter> {
        match &self.mapping {
            PlanMapping::Tile(m) | PlanMapping::Gather(m) => {
                Rc::new(PackedTileWriter { mapping: m.clone() })
            }
            PlanMapping::Subtile(m) => Rc::new(SubtilePackedWriter { mapping: m.clone() }),
            PlanMapping::Token(m) => Rc::new(TokenPoolWriter {
                mapping: m.clone(),
                rank,
            }),
        }
    }

    pub(crate) fn group_of_tile(&self) -> &[u32] {
        match &self.mapping {
            PlanMapping::Tile(m) | PlanMapping::Gather(m) => &m.layout.group_of_tile,
            PlanMapping::Subtile(m) => &m.layout.group_of_tile,
            PlanMapping::Token(m) => &m.layout.group_of_tile,
        }
    }

    pub(crate) fn group_spec(
        &self,
        g: usize,
        packed: &[BufferId],
        recv: &[BufferId],
    ) -> Option<CollectiveSpec> {
        let n = self.system.n_gpus;
        match &self.mapping {
            PlanMapping::Tile(m) => {
                let (offset, count) = m.group_regions[g];
                Some(CollectiveSpec::AllReduce {
                    regions: (0..n)
                        .map(|d| Region::new(packed[d], offset, count))
                        .collect(),
                })
            }
            PlanMapping::Subtile(m) => {
                let (offset, count) = m.send_group_regions[g];
                let recv_off = m.recv_group_offset[g];
                Some(CollectiveSpec::ReduceScatter {
                    send: (0..n)
                        .map(|d| Region::new(packed[d], offset, count))
                        .collect(),
                    recv: (0..n)
                        .map(|d| Region::new(recv[d], recv_off, count / n))
                        .collect(),
                })
            }
            PlanMapping::Token(m) => {
                let plan = &m.group_plans[g];
                let total: usize = plan.len.iter().map(|row| row.iter().sum::<usize>()).sum();
                if total == 0 {
                    return None;
                }
                Some(CollectiveSpec::AllToAllV {
                    send: packed.to_vec(),
                    recv: recv.to_vec(),
                    plan: Rc::new(plan.clone()),
                })
            }
            PlanMapping::Gather(m) => {
                let (offset, count) = m.group_regions[g];
                let (recv_off, recv_count) = m.all_gather_recv_region(g, n);
                debug_assert_eq!(recv_count, count * n);
                Some(CollectiveSpec::AllGather {
                    send: (0..n)
                        .map(|d| Region::new(packed[d], offset, count))
                        .collect(),
                    recv: (0..n)
                        .map(|d| Region::new(recv[d], recv_off, recv_count))
                        .collect(),
                })
            }
        }
    }

    /// The contiguous packed-buffer region `rank`'s collective for group
    /// `g` reads, as `(offset, elems)`; `None` when the group schedules
    /// no collective at all (zero total payload — possible for
    /// All-to-All). Mirrors [`OverlapPlan::group_spec`]'s send side, and
    /// is what the static verifier models as the group's read set.
    pub(crate) fn group_send_region(&self, g: usize, rank: usize) -> Option<(usize, usize)> {
        match &self.mapping {
            PlanMapping::Tile(m) | PlanMapping::Gather(m) => Some(m.group_regions[g]),
            PlanMapping::Subtile(m) => Some(m.send_group_regions[g]),
            PlanMapping::Token(m) => {
                let plan = &m.group_plans[g];
                let total: usize = plan.len.iter().map(|row| row.iter().sum::<usize>()).sum();
                if total == 0 {
                    return None;
                }
                // The pool packs (group asc, dest asc): dest 0's offset is
                // the group's block start even when dest 0 sends nothing.
                Some((plan.send_off[rank][0], m.group_send_elems(g, rank)))
            }
        }
    }

    pub(crate) fn extract_outputs(&self, world: &Cluster, handles: &ProgramHandles) -> Vec<Matrix> {
        let n = self.system.n_gpus;
        match &self.mapping {
            PlanMapping::Tile(m) => {
                let gather = m.element_gather();
                (0..n)
                    .map(|d| {
                        let packed = world.devices[d].mem.data(handles.packed_bufs[d]);
                        let data: Vec<f32> = gather.iter().map(|&i| packed[i as usize]).collect();
                        Matrix::from_vec(self.dims.m as usize, self.dims.n as usize, data)
                    })
                    .collect()
            }
            PlanMapping::Subtile(m) => (0..n)
                .map(|d| {
                    let recv = world.devices[d].mem.data(handles.recv_bufs[d]);
                    let gather = m.recv_gather(d);
                    let data: Vec<f32> = gather.iter().map(|&i| recv[i as usize]).collect();
                    Matrix::from_vec(self.dims.m as usize / n, self.dims.n as usize, data)
                })
                .collect(),
            PlanMapping::Token(m) => (0..n)
                .map(|d| {
                    let recv = world.devices[d].mem.data(handles.recv_bufs[d]);
                    let n_cols = self.dims.n as usize;
                    let rows = m.recv_row_gather[d].len();
                    let mut data = Vec::with_capacity(rows * n_cols);
                    for &packed_row in &m.recv_row_gather[d] {
                        let start = packed_row as usize * n_cols;
                        data.extend_from_slice(&recv[start..start + n_cols]);
                    }
                    Matrix::from_vec(rows, n_cols, data)
                })
                .collect(),
            PlanMapping::Gather(m) => {
                let gather = m.all_gather_gather(n);
                (0..n)
                    .map(|d| {
                        let recv = world.devices[d].mem.data(handles.recv_bufs[d]);
                        let data: Vec<f32> = gather.iter().map(|&i| recv[i as usize]).collect();
                        Matrix::from_vec(self.dims.m as usize, self.dims.n as usize * n, data)
                    })
                    .collect()
            }
        }
    }

    /// Extra device-memory elements per rank this plan needs beyond the
    /// non-overlap baseline (staging for reordered packing / receives) —
    /// the capacity cost of the design.
    ///
    /// AllReduce runs in place (zero overhead); ReduceScatter and
    /// All-to-All need their receive buffers exactly like NCCL's own
    /// out-of-place calls, so only AllGather's duplicated packed buffer
    /// counts.
    pub fn memory_overhead_elems(&self, rank: usize) -> usize {
        match &self.mapping {
            // In-place: the packed buffer replaces the plain output.
            PlanMapping::Tile(_) => 0,
            // NCCL ReduceScatter is out-of-place too; no extra.
            PlanMapping::Subtile(_) => 0,
            // Same receive buffer an unoverlapped MoE exchange needs.
            PlanMapping::Token(_) => 0,
            // The packed send copy exists alongside the gathered result.
            PlanMapping::Gather(m) => {
                let _ = rank;
                m.total_elems
            }
        }
    }

    /// The token mapping, when the pattern is All-to-All (verification
    /// helpers need `recv_expected`).
    pub fn token_mapping(&self) -> Option<&TokenMapping> {
        match &self.mapping {
            PlanMapping::Token(m) => Some(m),
            _ => None,
        }
    }

    /// The tile mapping, when the pattern is AllReduce.
    pub fn tile_mapping(&self) -> Option<&TileMapping> {
        match &self.mapping {
            PlanMapping::Tile(m) => Some(m),
            _ => None,
        }
    }

    /// The subtile mapping, when the pattern is ReduceScatter.
    pub fn subtile_mapping(&self) -> Option<&SubtileMapping> {
        match &self.mapping {
            PlanMapping::Subtile(m) => Some(m),
            _ => None,
        }
    }
}

/// What one resilient run yields internally: the report, the functional
/// outputs (when inputs were supplied), and the recorded spans (when
/// tracing was on).
type ResilientRun = (ResilientReport, Option<Vec<Matrix>>, Vec<gpu_sim::OpSpan>);

/// Watchdog and degraded-mode execution (see [`crate::resilience`] for
/// the fault and outcome vocabulary).
impl OverlapPlan {
    /// The predictor's expected operator latency for this plan — the
    /// base the watchdog deadline is derived from.
    pub fn expected_latency(&self) -> SimDuration {
        let predictor = LatencyPredictor::build(self.dims, self.primitive(), &self.system);
        if predictor.profile().total_waves == self.partition.total_waves() {
            predictor.predict(&self.partition)
        } else {
            // Swizzle overrides can shift the planned wave count away
            // from the profiled estimate; fall back to the serial bound.
            predictor.predict_serial()
        }
    }

    /// The predictor's expected per-group collective completion times
    /// (absolute, from GEMM launch) — the baseline that measured
    /// [`RunReport::group_comm_done`] values are compared against for
    /// measured-vs-predicted drift reporting. `None` when the planned
    /// wave count diverges from the profiled estimate (swizzle
    /// overrides), where per-group predictions are undefined.
    pub fn predicted_group_completions(&self) -> Option<Vec<SimDuration>> {
        let predictor = LatencyPredictor::build(self.dims, self.primitive(), &self.system);
        (predictor.profile().total_waves == self.partition.total_waves())
            .then(|| predictor.predict_group_completions(&self.partition))
    }

    fn run_resilient(
        &self,
        inputs: Option<&FunctionalInputs>,
        faults: &FaultPlan,
        watchdog: &WatchdogConfig,
        spans: bool,
        monitor: Option<Rc<dyn ClusterMonitor>>,
    ) -> Result<ResilientRun, FlashOverlapError> {
        let n = self.system.n_gpus;
        let num_groups = self.group_tile_counts().len();
        faults.validate(n, num_groups)?;

        let mut world = self.system.build_cluster(inputs.is_some());
        if spans {
            world.enable_op_spans();
        }
        if let Some(m) = monitor {
            world.set_monitor(m);
        }
        let mut sim: ClusterSim = Sim::new();
        let mut events: Vec<RuntimeEvent> = Vec::new();

        // Cluster-level faults exist before the program starts.
        for fault in &faults.faults {
            match *fault {
                Fault::LinkDegradation { slowdown } => {
                    let prior = world.comm_fault.slowdown.max(1.0);
                    world.comm_fault.slowdown = prior * slowdown.max(1.0);
                }
                Fault::InterLinkDegradation { slowdown } => {
                    let prior = world.comm_fault.inter_slowdown.max(1.0);
                    world.comm_fault.inter_slowdown = prior * slowdown.max(1.0);
                }
                Fault::LinkStall { stall, count } => {
                    world.comm_fault.stall = world.comm_fault.stall.max(stall);
                    world.comm_fault.stall_count += count;
                }
                Fault::StragglerSms { rank, sms } => {
                    // Holding communication SMs shrinks the rank's wave
                    // width for the whole run (never released).
                    world.devices[rank].occupy_comm_sms(sms);
                }
                _ => {}
            }
            let event = RuntimeEvent {
                at: sim.now(),
                device: fault_device(fault),
                kind: RuntimeEventKind::FaultInjected,
                group: fault_group(fault),
                detail: format!("armed: {fault}"),
            };
            world.notify_runtime_event(&event);
            events.push(event);
        }

        let streams = StreamCtx::create(&mut world, n);
        // Straggler ranks launch their whole program late, beyond the
        // modelled host skew.
        for fault in &faults.faults {
            if let Fault::SlowRank { rank, delay } = *fault {
                for stream in [streams.compute[rank], streams.comm[rank]] {
                    enqueue(
                        &mut world,
                        &mut sim,
                        rank,
                        stream,
                        Box::new(gpu_sim::stream::Delay(delay)),
                    );
                }
            }
        }
        let handles = self.enqueue_program_on(
            &mut world, &mut sim, inputs, None, &streams, None, None, None,
        );
        // Counting-table faults arm once the tables exist.
        for fault in &faults.faults {
            match *fault {
                Fault::DroppedIncrement { rank, group, count } => {
                    world.devices[rank]
                        .counter_mut(handles.tables[rank])
                        .arm_fault(group, IncrementFault::Dropped, count);
                }
                Fault::DelayedIncrement {
                    rank,
                    group,
                    count,
                    delay,
                } => {
                    world.devices[rank]
                        .counter_mut(handles.tables[rank])
                        .arm_fault(group, IncrementFault::Delayed(delay), count);
                }
                _ => {}
            }
        }

        // The watchdog ladder. `base` is the per-step budget: expected
        // latency times the configured multiplier (plus the launch-skew
        // window, which the predictor does not model).
        let base = self
            .expected_latency()
            .mul_f64(watchdog.deadline_multiplier.max(1.0))
            + SimDuration::from_nanos(self.system.launch_skew_ns.max(1));
        let mut deadline = SimTime::ZERO + base;
        let mut retries = 0u32;
        let mut rung = 0u32; // 0 = overlap, 1 = tail issued, 2 = bulk issued
        let mut tail_groups: Vec<usize> = Vec::new();
        let mut degraded_cause: Option<String> = None;
        let mut recovered_groups: Vec<usize> = Vec::new();

        loop {
            sim.run_until(&mut world, deadline)?;
            if sim.pending() == 0 {
                let Err(error) = check_quiescent(&world) else {
                    break; // Streams drained: the program completed.
                };
                // True wedge: the event queue drained with streams still
                // busy. `error` names every blocked rank, counter group,
                // reached count, and unmet threshold.
                if rung >= 2 {
                    // Even the bulk fallback wedged (recovery collectives
                    // wait on nothing but GEMM completion, so this should
                    // be unreachable). Give up without hanging.
                    degraded_cause = Some(format!("recovery wedged: {error}"));
                    break;
                }
                let done = completed_groups(&handles);
                let fired = RuntimeEvent {
                    at: sim.now(),
                    device: 0,
                    kind: RuntimeEventKind::WatchdogFired,
                    group: None,
                    detail: format!("wedge detected: {error}"),
                };
                world.notify_runtime_event(&fired);
                events.push(fired);
                // Late release with per-group tail collectives while part
                // of the plan survived; bulk fallback when the overlap
                // produced nothing or already failed once.
                let role = if rung == 0 && !done.is_empty() {
                    CollectiveRole::Tail
                } else {
                    CollectiveRole::Bulk
                };
                if matches!(role, CollectiveRole::Bulk) && degraded_cause.is_none() {
                    degraded_cause = Some(format!("overlap abandoned: {error}"));
                    recovered_groups = done;
                }
                let issued = self.issue_recovery(
                    &mut world,
                    &mut sim,
                    &handles,
                    &streams,
                    role,
                    &mut events,
                );
                if matches!(role, CollectiveRole::Tail) {
                    tail_groups = issued;
                    rung = 1;
                } else {
                    rung = 2;
                }
                deadline = sim.now() + base;
            } else {
                // Deadline passed with events still flowing: the run is
                // slow (degraded link, straggler), not stuck. Extend
                // within budget, then mark it degraded but keep driving
                // to completion — an in-flight collective cannot be
                // abandoned without double-applying its data.
                if retries < watchdog.max_retries {
                    retries += 1;
                    let fired = RuntimeEvent {
                        at: sim.now(),
                        device: 0,
                        kind: RuntimeEventKind::WatchdogFired,
                        group: None,
                        detail: format!(
                            "deadline passed with {} events in flight; extension {retries}/{}",
                            sim.pending(),
                            watchdog.max_retries
                        ),
                    };
                    world.notify_runtime_event(&fired);
                    events.push(fired);
                } else if degraded_cause.is_none() {
                    degraded_cause = Some(format!(
                        "watchdog deadline exceeded after {} extensions",
                        watchdog.max_retries
                    ));
                    recovered_groups = completed_groups(&handles);
                    let fallback = RuntimeEvent {
                        at: sim.now(),
                        device: 0,
                        kind: RuntimeEventKind::DegradedFallback,
                        group: None,
                        detail: "run marked degraded; completing without abandoning in-flight work"
                            .into(),
                    };
                    world.notify_runtime_event(&fallback);
                    events.push(fallback);
                }
                deadline = sim.now() + base;
            }
        }

        let outcome = if let Some(cause) = degraded_cause {
            ResilientOutcome::Degraded {
                cause,
                recovered_groups,
            }
        } else if rung == 1 {
            ResilientOutcome::Recovered {
                retries,
                tail_groups,
            }
        } else {
            ResilientOutcome::Clean
        };
        let spans_out = if spans {
            world.op_spans.take().unwrap_or_default()
        } else {
            Vec::new()
        };
        let outputs = inputs.map(|_| self.extract_outputs(&world, &handles));
        let report = ResilientReport {
            report: handles.probes_snapshot().into_report(),
            outcome,
            events,
            faults_armed: faults.faults.len(),
        };
        Ok((report, outputs, spans_out))
    }

    /// One rung of the recovery ladder: abort the starved communication
    /// state and re-issue every incomplete group as a `role` collective
    /// gated on GEMM completion.
    fn issue_recovery(
        &self,
        world: &mut Cluster,
        sim: &mut ClusterSim,
        handles: &ProgramHandles,
        streams: &StreamCtx,
        role: CollectiveRole,
        events: &mut Vec<RuntimeEvent>,
    ) -> Vec<usize> {
        let n = self.system.n_gpus;
        // 1. Drop queued communication work — the stale waits and
        //    collectives of the groups about to be re-issued. Queued
        //    kernels have no completion token yet, so this is safe.
        for d in 0..n {
            world.abort_stream_queue(d, streams.comm[d]);
        }
        // 2. Release ranks parked inside the communicator rendezvous
        //    without moving data (the `ncclCommAbort` analog); their
        //    streams then go idle against the cleared queues.
        handles.comm.abort_pending(world, sim);
        // 3. Revoke starved signal waits the same way.
        for d in 0..n {
            abort_counter_waits(world, sim, d, handles.tables[d]);
        }
        // 4. Gate recovery on GEMM completion: the main loop writes every
        //    tile regardless of lost signals, so once the GEMM retires
        //    the packed buffers hold exactly the data the original
        //    collectives would have read — recovery stays bit-exact.
        for d in 0..n {
            let done = world.devices[d].create_event();
            enqueue(
                world,
                sim,
                d,
                streams.compute[d],
                Box::new(RecordEvent(done)),
            );
            enqueue(world, sim, d, streams.comm[d], Box::new(WaitEvent(done)));
        }
        // 5. Re-issue every group whose collective never completed.
        let completed: Vec<bool> = handles
            .probes
            .group_done
            .borrow()
            .iter()
            .map(Option::is_some)
            .collect();
        let (kind, what) = match role {
            CollectiveRole::Tail => (RuntimeEventKind::TailRecovery, "tail"),
            _ => (RuntimeEventKind::DegradedFallback, "bulk"),
        };
        let mut issued = Vec::new();
        for (g, done) in completed.iter().enumerate() {
            if *done {
                continue;
            }
            let Some(spec) = self.group_spec(g, &handles.packed_bufs, &handles.recv_bufs) else {
                continue; // Zero-payload group: nothing was ever owed.
            };
            let kernels = handles.comm.kernels_with_role(spec, Some(g), role);
            for (d, kernel) in kernels.into_iter().enumerate() {
                enqueue(world, sim, d, streams.comm[d], Box::new(kernel));
                if d == 0 {
                    let slot = handles.probes.group_done.clone();
                    enqueue(
                        world,
                        sim,
                        0,
                        streams.comm[0],
                        Box::new(Callback(Box::new(move |_, s| {
                            slot.borrow_mut()[g] = Some(s.now());
                        }))),
                    );
                }
            }
            let event = RuntimeEvent {
                at: sim.now(),
                device: 0,
                kind,
                group: Some(g),
                detail: format!("group {g} re-issued as {what} collective"),
            };
            world.notify_runtime_event(&event);
            events.push(event);
            issued.push(g);
        }
        issued
    }
}

/// Groups whose collectives have completed (overlap or recovery).
fn completed_groups(handles: &ProgramHandles) -> Vec<usize> {
    handles
        .probes
        .group_done
        .borrow()
        .iter()
        .enumerate()
        .filter_map(|(g, t)| t.map(|_| g))
        .collect()
}

/// The rank a fault targets (the lead rank for cluster-wide faults).
fn fault_device(fault: &Fault) -> gpu_sim::DeviceId {
    match *fault {
        Fault::DroppedIncrement { rank, .. }
        | Fault::DelayedIncrement { rank, .. }
        | Fault::StragglerSms { rank, .. }
        | Fault::SlowRank { rank, .. } => rank,
        Fault::LinkDegradation { .. }
        | Fault::InterLinkDegradation { .. }
        | Fault::LinkStall { .. } => 0,
    }
}

/// The wave group a fault targets, when it has one.
fn fault_group(fault: &Fault) -> Option<usize> {
    match *fault {
        Fault::DroppedIncrement { group, .. } | Fault::DelayedIncrement { group, .. } => {
            Some(group)
        }
        _ => None,
    }
}

/// Turns a drained-but-wedged simulation into a diagnosable error
/// carrying the full counter context of every starved signal wait.
pub(crate) fn check_quiescent(world: &Cluster) -> Result<(), FlashOverlapError> {
    world
        .check_quiescent()
        .map_err(|streams| FlashOverlapError::Deadlock {
            waits: world.stuck_waits(),
            streams,
            chain: Vec::new(),
        })
}

/// Per-rank compute/communication stream pair a program runs on.
pub(crate) struct StreamCtx {
    pub(crate) compute: Vec<gpu_sim::stream::StreamId>,
    pub(crate) comm: Vec<gpu_sim::stream::StreamId>,
}

impl StreamCtx {
    pub(crate) fn create(world: &mut Cluster, n: usize) -> Self {
        let mut compute = Vec::with_capacity(n);
        let mut comm = Vec::with_capacity(n);
        for d in 0..n {
            let dev = &mut world.devices[d];
            compute.push(dev.create_stream());
            comm.push(dev.create_stream());
        }
        StreamCtx { compute, comm }
    }
}

pub(crate) struct ProgramHandles {
    pub(crate) probes: Probes,
    pub(crate) packed_bufs: Vec<BufferId>,
    pub(crate) recv_bufs: Vec<BufferId>,
    pub(crate) epilogue_bufs: Vec<Option<BufferId>>,
    /// Per-rank comm→compute gate events of the fused epilogue (empty
    /// when the program has none). Chain recovery re-records them so a
    /// compute stream parked on a wedged layer's epilogue wakes up.
    pub(crate) epilogue_gates: Vec<gpu_sim::GpuEventId>,
    /// The communicator the program's collective kernels rendezvous
    /// through — the recovery runtime aborts its pending state, exactly
    /// like `ncclCommAbort` on the real library's communicator handle.
    pub(crate) comm: Communicator,
    /// Per-rank counting-table indices (fault arming and wait revocation
    /// need them after enqueue).
    pub(crate) tables: Vec<usize>,
}

impl ProgramHandles {
    /// A shared handle to this program's probes (the underlying cells are
    /// `Rc`, so the snapshot observes the same simulation writes).
    pub(crate) fn probes_snapshot(&self) -> Probes {
        self.probes.clone()
    }
}

#[derive(Clone)]
pub(crate) struct Probes {
    pub(crate) gemm_done: Rc<Cell<Option<SimTime>>>,
    pub(crate) group_done: Rc<RefCell<Vec<Option<SimTime>>>>,
    pub(crate) epilogue_done: Rc<Cell<Option<SimTime>>>,
}

impl Probes {
    fn new(groups: usize) -> Self {
        Probes {
            gemm_done: Rc::new(Cell::new(None)),
            group_done: Rc::new(RefCell::new(vec![None; groups])),
            epilogue_done: Rc::new(Cell::new(None)),
        }
    }

    pub(crate) fn into_report(self) -> RunReport {
        let gemm_done = self
            .gemm_done
            .get()
            .map_or(SimDuration::ZERO, |t| t - SimTime::ZERO);
        let group_comm_done: Vec<SimDuration> = self
            .group_done
            .borrow()
            .iter()
            .map(|t| t.map_or(SimDuration::ZERO, |t| t - SimTime::ZERO))
            .collect();
        let latency = group_comm_done
            .iter()
            .copied()
            .fold(gemm_done, SimDuration::max);
        RunReport {
            latency,
            gemm_done,
            group_comm_done,
            epilogue_done: self.epilogue_done.get().map(|t| t - SimTime::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::{allclose, gemm};

    fn small_system(n: usize) -> SystemSpec {
        // A tiny architecture so functional tests stay fast: 8 SMs, small
        // tiles come from the standard candidate table (64x64 minimum), so
        // keep shapes modest.
        let mut spec = SystemSpec::rtx4090(n);
        spec.arch.sm_count = 8;
        spec.comm_sms = 2;
        spec
    }

    fn reduced_reference(inputs: &FunctionalInputs) -> Matrix {
        let mut acc = gemm(&inputs.a[0], &inputs.b[0]);
        for r in 1..inputs.a.len() {
            acc = acc.add(&gemm(&inputs.a[r], &inputs.b[r]));
        }
        acc
    }

    fn exec(plan: &OverlapPlan) -> RunReport {
        plan.execute_with(&ExecOptions::new()).unwrap().report
    }

    fn exec_functional(plan: &OverlapPlan, inputs: &FunctionalInputs) -> FunctionalReport {
        let out = plan
            .execute_with(&ExecOptions::new().functional(inputs))
            .unwrap();
        FunctionalReport {
            report: out.report,
            outputs: out.outputs.expect("functional outputs"),
        }
    }

    #[test]
    fn all_reduce_overlap_is_numerically_exact() {
        let dims = GemmDims::new(256, 256, 64);
        let system = small_system(2);
        let config = GemmConfig::choose(dims, &system.arch);
        let grid = config.grid(dims);
        let waves = grid.num_tiles().div_ceil(system.compute_sms());
        let partition = WavePartition::per_wave(waves);
        let plan = OverlapPlan::new(dims, CommPattern::AllReduce, system, partition).unwrap();
        let inputs = FunctionalInputs::random(dims, 2, 77);
        let result = exec_functional(&plan, &inputs);
        let expected = reduced_reference(&inputs);
        for (d, out) in result.outputs.iter().enumerate() {
            assert!(allclose(out, &expected, 1e-2), "rank {d} output mismatch");
        }
        assert!(result.report.latency > SimDuration::ZERO);
    }

    fn all_reduce_plan(dims: GemmDims, n: usize) -> OverlapPlan {
        let system = small_system(n);
        let config = GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system,
            WavePartition::per_wave(waves),
        )
        .unwrap()
    }

    #[test]
    fn predicted_group_completions_align_with_the_plan() {
        let plan = all_reduce_plan(GemmDims::new(256, 256, 64), 2);
        let predicted = plan
            .predicted_group_completions()
            .expect("per-wave plan matches the profiled wave count");
        assert_eq!(predicted.len(), plan.partition.num_groups());
        assert!(
            predicted.windows(2).all(|w| w[0] <= w[1]),
            "group completions must be monotone: {predicted:?}"
        );
        // The measured run produces one completion per group too, so the
        // drift join is well-defined.
        let report = exec(&plan);
        assert_eq!(report.group_comm_done.len(), predicted.len());
    }

    #[test]
    fn resilient_run_without_faults_is_clean_and_matches_execute() {
        let plan = all_reduce_plan(GemmDims::new(256, 256, 64), 2);
        let clean = exec(&plan);
        let resilient = plan
            .execute_with(&ExecOptions::new().resilient(
                &crate::resilience::FaultPlan::none(),
                &WatchdogConfig::default(),
            ))
            .unwrap();
        assert!(resilient.outcome.is_clean(), "{:?}", resilient.outcome);
        assert_eq!(resilient.report.latency, clean.latency);
        assert_eq!(resilient.faults_armed, 0);
        assert!(resilient.events.is_empty());
    }

    #[test]
    fn dropped_increment_recovers_via_tail_collective() {
        let dims = GemmDims::new(256, 256, 64);
        let plan = all_reduce_plan(dims, 2);
        assert!(
            plan.group_tile_counts().len() >= 2,
            "need a completed group"
        );
        // Rank 0 loses one signal of group 1: its wait never satisfies, the
        // overlap wedges after group 0, and the watchdog must late-release
        // the remaining groups as tail collectives.
        let faults = crate::resilience::FaultPlan::single(Fault::DroppedIncrement {
            rank: 0,
            group: 1,
            count: 1,
        });
        let inputs = FunctionalInputs::random(dims, 2, 21);
        let result = plan
            .execute_with(
                &ExecOptions::new()
                    .functional(&inputs)
                    .resilient(&faults, &WatchdogConfig::default()),
            )
            .unwrap();
        match &result.outcome {
            ResilientOutcome::Recovered { tail_groups, .. } => {
                assert!(
                    tail_groups.contains(&1),
                    "group 1 re-issued: {tail_groups:?}"
                );
            }
            other => panic!("expected tail recovery, got {other:?}"),
        }
        assert!(
            !result.events_of(RuntimeEventKind::TailRecovery).is_empty(),
            "tail recovery must be visible in the event log"
        );
        assert!(
            !result.events_of(RuntimeEventKind::WatchdogFired).is_empty(),
            "the watchdog fired before recovery"
        );
        // The lost signal cost only the signal, never the tile data: the
        // recovered run stays bit-exact.
        let expected = reduced_reference(&inputs);
        for (d, out) in result
            .outputs
            .as_deref()
            .unwrap_or_default()
            .iter()
            .enumerate()
        {
            assert!(allclose(out, &expected, 1e-2), "rank {d} output mismatch");
        }
    }

    #[test]
    fn lost_first_signal_degrades_to_bulk_but_stays_exact() {
        let dims = GemmDims::new(256, 256, 64);
        let plan = all_reduce_plan(dims, 2);
        // Group 0 never signals on rank 0, so the overlap completes nothing
        // before wedging: the ladder skips straight to the bulk fallback and
        // reports a structured degradation instead of hanging.
        let faults = crate::resilience::FaultPlan::single(Fault::DroppedIncrement {
            rank: 0,
            group: 0,
            count: 1,
        });
        let inputs = FunctionalInputs::random(dims, 2, 22);
        let result = plan
            .execute_with(
                &ExecOptions::new()
                    .functional(&inputs)
                    .resilient(&faults, &WatchdogConfig::default()),
            )
            .unwrap();
        match &result.outcome {
            ResilientOutcome::Degraded {
                cause,
                recovered_groups,
            } => {
                assert!(!cause.is_empty());
                assert!(cause.contains("group 0"), "cause names the wedge: {cause}");
                assert!(recovered_groups.is_empty(), "{recovered_groups:?}");
            }
            other => panic!("expected degraded fallback, got {other:?}"),
        }
        assert!(!result
            .events_of(RuntimeEventKind::DegradedFallback)
            .is_empty());
        let expected = reduced_reference(&inputs);
        for (d, out) in result
            .outputs
            .as_deref()
            .unwrap_or_default()
            .iter()
            .enumerate()
        {
            assert!(allclose(out, &expected, 1e-2), "rank {d} output mismatch");
        }
    }

    #[test]
    fn slow_link_completes_without_recovery() {
        let plan = all_reduce_plan(GemmDims::new(256, 256, 64), 2);
        // A 3x-degraded link makes the run slow, not stuck: the watchdog may
        // extend the deadline but must never abort in-flight collectives.
        let faults = crate::resilience::FaultPlan::single(Fault::LinkDegradation { slowdown: 3.0 });
        let report = plan
            .execute_with(&ExecOptions::new().resilient(&faults, &WatchdogConfig::default()))
            .unwrap();
        assert!(
            !report.outcome.is_degraded() || !report.events.is_empty(),
            "a degraded verdict needs an event trail"
        );
        assert!(report.report.latency > SimDuration::ZERO);
        assert!(
            report.events_of(RuntimeEventKind::TailRecovery).is_empty(),
            "no recovery collectives for a merely slow link"
        );
    }

    fn two_node_plan(dims: GemmDims, n: usize) -> OverlapPlan {
        let system = small_system(n).with_nodes(2);
        let config = GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system,
            WavePartition::per_wave(waves),
        )
        .unwrap()
    }

    #[test]
    fn multi_node_plan_sums_correctly_end_to_end() {
        // Two-tier topology switches the runtime onto the hierarchical
        // collective schedule; the reduced output must still match the
        // flat reference.
        let dims = GemmDims::new(256, 256, 64);
        let plan = two_node_plan(dims, 4);
        let inputs = FunctionalInputs::random(dims, 4, 77);
        let result = plan
            .execute_with(&ExecOptions::new().functional(&inputs))
            .unwrap();
        let expected = reduced_reference(&inputs);
        for (d, out) in result
            .outputs
            .as_deref()
            .unwrap_or_default()
            .iter()
            .enumerate()
        {
            assert!(allclose(out, &expected, 1e-2), "rank {d} output mismatch");
        }
    }

    #[test]
    fn inter_link_fault_spares_single_node_plans() {
        let dims = GemmDims::new(256, 256, 64);
        let fault =
            crate::resilience::FaultPlan::single(Fault::InterLinkDegradation { slowdown: 4.0 });
        let none = crate::resilience::FaultPlan::none();
        let watchdog = WatchdogConfig::default();
        // Single-node plan: the fault arms but no collective spans nodes,
        // so timing is identical to the fault-free resilient run.
        let plan = all_reduce_plan(dims, 2);
        let clean = plan
            .execute_with(&ExecOptions::new().resilient(&none, &watchdog))
            .unwrap()
            .report
            .latency;
        let faulted = plan
            .execute_with(&ExecOptions::new().resilient(&fault, &watchdog))
            .unwrap()
            .report
            .latency;
        assert_eq!(clean, faulted, "inter fault must not touch a single node");
        // Two-node plan: every hierarchical leader phase crosses the
        // degraded tier, so the run slows down.
        let plan = two_node_plan(dims, 4);
        let clean = plan
            .execute_with(&ExecOptions::new().resilient(&none, &watchdog))
            .unwrap()
            .report
            .latency;
        let faulted = plan
            .execute_with(&ExecOptions::new().resilient(&fault, &watchdog))
            .unwrap()
            .report
            .latency;
        assert!(
            faulted > clean,
            "node-spanning plan must feel the inter-link fault \
             (clean {clean}, faulted {faulted})"
        );
    }

    #[test]
    fn straggler_rank_terminates_with_verdict() {
        let dims = GemmDims::new(256, 256, 64);
        let plan = all_reduce_plan(dims, 2);
        let faults = crate::resilience::FaultPlan::single(Fault::SlowRank {
            rank: 1,
            delay: SimDuration::from_micros(400),
        });
        let inputs = FunctionalInputs::random(dims, 2, 23);
        let result = plan
            .execute_with(
                &ExecOptions::new()
                    .functional(&inputs)
                    .resilient(&faults, &WatchdogConfig::default()),
            )
            .unwrap();
        // Whatever the verdict, the run terminated and the data is right.
        let expected = reduced_reference(&inputs);
        for (d, out) in result
            .outputs
            .as_deref()
            .unwrap_or_default()
            .iter()
            .enumerate()
        {
            assert!(allclose(out, &expected, 1e-2), "rank {d} output mismatch");
        }
    }

    #[test]
    fn resilient_iterations_run_the_chain_watchdog() {
        let plan = all_reduce_plan(GemmDims::new(256, 256, 64), 2);
        // Fault-free: the chain watchdog is timing-neutral, so the
        // steady-state average matches plain iteration mode exactly.
        let plain = plan
            .execute_with(&ExecOptions::new().iterations(4))
            .unwrap();
        let clean = plan
            .execute_with(&ExecOptions::new().iterations(4).resilient(
                &crate::resilience::FaultPlan::none(),
                &WatchdogConfig::default(),
            ))
            .unwrap();
        assert!(clean.outcome.is_clean(), "{:?}", clean.outcome);
        assert_eq!(clean.steady_state, plain.steady_state);
        assert_eq!(clean.faults_armed, 0);
        // The fault plan arms at the final iteration — its counting
        // table is inherited from two iterations earlier, so the wedge
        // exercises the chain (inherited-table) recovery path.
        let faults = crate::resilience::FaultPlan::single(Fault::DroppedIncrement {
            rank: 0,
            group: 1,
            count: 64,
        });
        let wedged = plan
            .execute_with(
                &ExecOptions::new()
                    .iterations(4)
                    .resilient(&faults, &WatchdogConfig::default()),
            )
            .unwrap();
        assert_eq!(wedged.faults_armed, 1);
        assert!(
            matches!(wedged.outcome, ResilientOutcome::Recovered { .. }),
            "{:?}",
            wedged.outcome
        );
        assert!(
            wedged
                .events
                .iter()
                .any(|e| e.detail.contains("segment 3 wedge detected")),
            "the wedge names the final iteration: {:?}",
            wedged.events
        );
        assert!(wedged.steady_state.unwrap() > plain.steady_state.unwrap());
        assert!(matches!(
            plan.execute_with(&ExecOptions::new().iterations(0).resilient(
                &crate::resilience::FaultPlan::none(),
                &WatchdogConfig::default(),
            )),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }

    #[test]
    fn reduce_scatter_overlap_scatters_correct_rows() {
        let dims = GemmDims::new(256, 128, 64);
        let system = small_system(2);
        let plan = {
            let config = GemmConfig::choose(dims, &system.arch);
            let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
            OverlapPlan::new(
                dims,
                CommPattern::ReduceScatter,
                system,
                WavePartition::per_wave(waves),
            )
            .unwrap()
        };
        let inputs = FunctionalInputs::random(dims, 2, 5);
        let result = exec_functional(&plan, &inputs);
        let expected = reduced_reference(&inputs);
        for (k, out) in result.outputs.iter().enumerate() {
            assert_eq!(out.rows(), 128);
            for i in 0..out.rows() {
                let global = k + i * 2;
                for c in 0..out.cols() {
                    let diff = (out[(i, c)] - expected[(global, c)]).abs();
                    assert!(diff < 1e-2, "rank {k} row {i} col {c}: diff {diff}");
                }
            }
        }
    }

    #[test]
    fn all_to_all_overlap_routes_tokens_correctly() {
        let dims = GemmDims::new(128, 128, 32);
        let system = small_system(2);
        let mut rng = sim::DetRng::new(13);
        let routing: Vec<Vec<usize>> = (0..2)
            .map(|_| (0..128).map(|_| rng.next_below(2) as usize).collect())
            .collect();
        let plan = {
            let config = GemmConfig::choose(dims, &system.arch);
            let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
            OverlapPlan::new(
                dims,
                CommPattern::AllToAll { routing },
                system,
                WavePartition::per_wave(waves),
            )
            .unwrap()
        };
        let inputs = FunctionalInputs::random(dims, 2, 5);
        let per_rank_out: Vec<Matrix> = (0..2).map(|r| gemm(&inputs.a[r], &inputs.b[r])).collect();
        let result = exec_functional(&plan, &inputs);
        let mapping = plan.token_mapping().unwrap();
        for d in 0..2 {
            let out = &result.outputs[d];
            let expected_rows = &mapping.recv_expected[d];
            assert_eq!(out.rows(), expected_rows.len());
            for (i, &(src, row)) in expected_rows.iter().enumerate() {
                for c in 0..out.cols() {
                    let diff = (out[(i, c)] - per_rank_out[src][(row as usize, c)]).abs();
                    assert!(diff < 1e-2, "dest {d} token {i} col {c}");
                }
            }
        }
    }

    #[test]
    fn grouped_partition_matches_per_wave_numerics() {
        // Different partitions change timing, never data. The shape is
        // sized to give several waves on the tiny test architecture.
        let dims = GemmDims::new(512, 512, 32);
        let system = small_system(2);
        let config = GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        assert!(waves >= 2, "need multiple waves, got {waves}");
        let inputs = FunctionalInputs::random(dims, 2, 123);
        let expected = reduced_reference(&inputs);
        for partition in [
            WavePartition::per_wave(waves),
            WavePartition::single(waves),
            WavePartition::new(vec![1, waves - 1]),
        ] {
            let plan = OverlapPlan::new(
                dims,
                CommPattern::AllReduce,
                system.clone(),
                partition.clone(),
            )
            .unwrap();
            let result = exec_functional(&plan, &inputs);
            assert!(
                allclose(&result.outputs[0], &expected, 1e-2),
                "partition {partition}"
            );
        }
    }

    #[test]
    fn overlap_beats_fully_serialized_partition_when_balanced() {
        // Timing mode on the real 4090 system: a compute/communication
        // balanced shape must benefit from splitting into groups.
        let dims = GemmDims::new(4096, 8192, 16384);
        let system = SystemSpec::rtx4090(4);
        let config = GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        assert!(waves >= 4, "test needs several waves, got {waves}");
        let serial = OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system.clone(),
            WavePartition::single(waves),
        )
        .unwrap()
        .execute_with(&ExecOptions::new())
        .map(|o| o.report)
        .unwrap();
        let overlapped = OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system,
            WavePartition::new(vec![2; waves as usize / 2]),
        )
        .unwrap()
        .execute_with(&ExecOptions::new())
        .map(|o| o.report)
        .unwrap();
        assert!(
            overlapped.latency < serial.latency,
            "overlap {} not faster than serial {}",
            overlapped.latency,
            serial.latency
        );
    }

    #[test]
    fn group_comm_times_are_monotone() {
        let dims = GemmDims::new(2048, 4096, 2048);
        let system = SystemSpec::rtx4090(2);
        let config = GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        let plan = OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system,
            WavePartition::per_wave(waves),
        )
        .unwrap();
        let report = exec(&plan);
        for pair in report.group_comm_done.windows(2) {
            assert!(pair[0] < pair[1], "groups must complete in order");
        }
        assert_eq!(report.latency, *report.group_comm_done.last().unwrap());
        assert!(report.gemm_done < report.latency);
    }

    #[test]
    fn all_gather_overlap_concatenates_column_shards() {
        let dims = GemmDims::new(256, 128, 64);
        let system = small_system(2);
        let config = GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        let plan = OverlapPlan::new(
            dims,
            CommPattern::AllGather,
            system,
            WavePartition::per_wave(waves),
        )
        .unwrap();
        let inputs = FunctionalInputs::random(dims, 2, 17);
        let result = exec_functional(&plan, &inputs);
        let shards: Vec<Matrix> = (0..2).map(|r| gemm(&inputs.a[r], &inputs.b[r])).collect();
        for (d, out) in result.outputs.iter().enumerate() {
            assert_eq!((out.rows(), out.cols()), (256, 256));
            for r in 0..256usize {
                for c in 0..256usize {
                    let src = c / 128;
                    let diff = (out[(r, c)] - shards[src][(r, c % 128)]).abs();
                    assert!(diff < 1e-2, "rank {d} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn launch_skew_delays_but_never_breaks_runs() {
        let dims = GemmDims::new(2048, 4096, 4096);
        let clean = OverlapPlan::tuned(dims, CommPattern::AllReduce, SystemSpec::rtx4090(4))
            .unwrap()
            .execute_with(&ExecOptions::new())
            .unwrap()
            .report
            .latency;
        let skewed = OverlapPlan::tuned(
            dims,
            CommPattern::AllReduce,
            SystemSpec::rtx4090(4).with_launch_skew_ns(200_000),
        )
        .unwrap()
        .execute_with(&ExecOptions::new())
        .unwrap()
        .report
        .latency;
        assert!(skewed > clean, "skew must cost time");
        assert!(
            skewed < clean + sim::SimDuration::from_micros(400),
            "skew cost bounded by roughly the skew window"
        );
    }

    #[test]
    fn memory_overhead_is_zero_except_allgather() {
        let system = small_system(2);
        let dims = GemmDims::new(256, 128, 64);
        let ar = OverlapPlan::tuned(dims, CommPattern::AllReduce, system.clone()).unwrap();
        assert_eq!(ar.memory_overhead_elems(0), 0);
        let ag = OverlapPlan::tuned(dims, CommPattern::AllGather, system).unwrap();
        assert_eq!(ag.memory_overhead_elems(0), 256 * 128);
    }

    #[test]
    fn steady_state_average_is_close_to_single_shot() {
        let dims = GemmDims::new(4096, 8192, 8192);
        let system = SystemSpec::rtx4090(4);
        let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system).unwrap();
        let single = exec(&plan).latency;
        let steady = plan
            .execute_with(&ExecOptions::new().iterations(8))
            .unwrap()
            .steady_state
            .expect("iteration mode sets steady_state");
        let ratio = steady.as_nanos() as f64 / single.as_nanos() as f64;
        // Back-pressure can stretch or slightly compress iterations, but
        // the steady state stays near the single-shot latency.
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
        assert!(matches!(
            plan.execute_with(&ExecOptions::new().iterations(0)),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }

    #[test]
    fn fused_epilogue_applies_rmsnorm_after_overlap() {
        use gpu_sim::elementwise::ElementwiseOp;
        use tensor::rmsnorm;

        let dims = GemmDims::new(256, 256, 64);
        let system = small_system(2);
        let config = GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        let plan = OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system,
            WavePartition::per_wave(waves),
        )
        .unwrap();
        let inputs = FunctionalInputs::random(dims, 2, 44);
        let weight: Vec<f32> = (0..256).map(|i| 1.0 + (i % 5) as f32 * 0.2).collect();
        let op = ElementwiseOp::RmsNorm {
            weight: std::rc::Rc::new(weight.clone()),
            eps: 1e-6,
        };
        let out = plan
            .execute_with(&ExecOptions::new().functional(&inputs).epilogue(&op))
            .unwrap();
        let result = FunctionalReport {
            report: out.report,
            outputs: out.outputs.expect("functional outputs"),
        };
        let expected = rmsnorm(&reduced_reference(&inputs), &weight, 1e-6);
        for (d, out) in result.outputs.iter().enumerate() {
            assert!(allclose(out, &expected, 2e-2), "rank {d}");
        }
        let done = result.report.epilogue_done.expect("epilogue probe");
        assert!(done > result.report.latency, "epilogue runs after comm");
    }

    #[test]
    fn fused_epilogue_extends_timing() {
        use gpu_sim::elementwise::ElementwiseOp;

        let dims = GemmDims::new(4096, 8192, 8192);
        let system = SystemSpec::rtx4090(4);
        let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system).unwrap();
        let plain = exec(&plan);
        assert!(plain.epilogue_done.is_none());
        let fused = plan
            .execute_with(&ExecOptions::new().epilogue(&ElementwiseOp::Relu))
            .unwrap()
            .report;
        let done = fused.epilogue_done.expect("epilogue requested");
        assert!(done > fused.latency);
        // The epilogue adds roughly one memory-bound kernel, not more.
        let extra = done - fused.latency;
        let bound = plan
            .system
            .arch
            .elementwise_time(dims.out_elems() * 4, Some(plan.remap_granularity()));
        assert!(extra <= bound.mul_f64(1.2), "epilogue too slow: {extra}");
    }

    #[test]
    fn epilogue_parameter_length_is_validated() {
        use gpu_sim::elementwise::ElementwiseOp;

        let dims = GemmDims::new(256, 256, 64);
        let system = small_system(2);
        let plan = OverlapPlan::tuned(dims, CommPattern::AllReduce, system).unwrap();
        let bad = ElementwiseOp::RmsNorm {
            weight: std::rc::Rc::new(vec![1.0; 8]),
            eps: 1e-6,
        };
        assert!(matches!(
            plan.execute_with(&ExecOptions::new().epilogue(&bad)),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }

    #[test]
    fn bad_partition_is_rejected() {
        let dims = GemmDims::new(2048, 4096, 2048);
        let system = SystemSpec::rtx4090(2);
        let result = OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system,
            WavePartition::new(vec![1]),
        );
        assert!(matches!(
            result.err(),
            Some(FlashOverlapError::PartitionMismatch { .. })
        ));
    }

    #[test]
    fn bad_functional_inputs_are_rejected() {
        let dims = GemmDims::new(256, 256, 64);
        let system = small_system(2);
        let config = GemmConfig::choose(dims, &system.arch);
        let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
        let plan = OverlapPlan::new(
            dims,
            CommPattern::AllReduce,
            system,
            WavePartition::single(waves),
        )
        .unwrap();
        let bad = FunctionalInputs::random(GemmDims::new(128, 256, 64), 2, 1);
        assert!(matches!(
            plan.execute_with(&ExecOptions::new().functional(&bad)),
            Err(FlashOverlapError::BadInputs { .. })
        ));
    }
}
