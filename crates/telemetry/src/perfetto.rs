//! Perfetto / Chrome trace-event exporter.
//!
//! Emits a `{"traceEvents": [...]}` document loadable in
//! [ui.perfetto.dev](https://ui.perfetto.dev) or `chrome://tracing`:
//!
//! - one *process* per simulated device, one *thread* per stream
//!   (metadata events name both);
//! - a duration (`ph: "X"`) slice per operation span, with the span's
//!   metadata (tiles/waves for GEMMs, bytes/group for collectives) in
//!   `args`;
//! - a flow (`ph: "s"` → `ph: "f"`) per released signal wait, drawn from
//!   the releasing counting-table increment on the compute stream to the
//!   group's collective launch on the communication stream;
//! - counter (`ph: "C"`) tracks for counting-table state, per-link
//!   bandwidth, and SM occupancy.
//!
//! Timestamps are microseconds (the trace-event format's unit).

use gpu_sim::{OpSpan, RuntimeEventKind, SpanMeta};
use sim::SimTime;

use crate::attribution::Attribution;
use crate::json::Value;
use crate::record::TelemetryRecord;

fn us(t: SimTime) -> f64 {
    (t - SimTime::ZERO).as_nanos() as f64 / 1e3
}

fn event(ph: &str, name: &str, pid: usize, tid: usize, ts: f64) -> Vec<(&'static str, Value)> {
    vec![
        ("name", Value::str(name)),
        ("ph", Value::str(ph)),
        ("pid", Value::num(pid as f64)),
        ("tid", Value::num(tid as f64)),
        ("ts", Value::num(ts)),
    ]
}

/// Builds the trace document for `spans`, enriched with flow events and
/// counter tracks when a causal `record` is available (plain
/// span-timeline traces pass `None`).
pub fn trace(spans: &[OpSpan], record: Option<&TelemetryRecord>) -> Value {
    let mut events: Vec<Value> = Vec::new();

    // Process/thread naming metadata. Streams referenced only by counter
    // events still get rows via their devices' spans.
    let mut devices: Vec<usize> = spans.iter().map(|s| s.device).collect();
    devices.sort_unstable();
    devices.dedup();
    for &d in &devices {
        let mut e = event("M", "process_name", d, 0, 0.0);
        e.push((
            "args",
            Value::obj(vec![("name", Value::str(format!("device {d}")))]),
        ));
        events.push(Value::obj(e));
    }
    let mut streams: Vec<(usize, usize)> = spans.iter().map(|s| (s.device, s.stream)).collect();
    streams.sort_unstable();
    streams.dedup();
    for &(d, s) in &streams {
        let mut e = event("M", "thread_name", d, s, 0.0);
        e.push((
            "args",
            Value::obj(vec![("name", Value::str(format!("stream {s}")))]),
        ));
        events.push(Value::obj(e));
    }

    // Duration slices. Zero-length host-probe callbacks are noise.
    for span in spans.iter().filter(|s| s.name != "callback") {
        let mut e = event("X", span.name, span.device, span.stream, us(span.start));
        e.push((
            "dur",
            Value::num((span.end - span.start).as_nanos() as f64 / 1e3),
        ));
        match span.meta {
            SpanMeta::None => {}
            SpanMeta::Gemm { tiles, waves } => {
                e.push((
                    "args",
                    Value::obj(vec![
                        ("tiles", Value::num(tiles as f64)),
                        ("waves", Value::num(waves as f64)),
                    ]),
                ));
            }
            SpanMeta::Collective { bytes, group } => {
                e.push((
                    "args",
                    Value::obj(vec![
                        ("bytes", Value::num(bytes as f64)),
                        ("group", group.map_or(Value::Null, |g| Value::num(g as f64))),
                    ]),
                ));
            }
        }
        events.push(Value::obj(e));
    }

    if let Some(record) = record {
        flow_events(record, spans, &mut events);
        counter_events(record, &mut events);
        instant_events(record, &mut events);
    }

    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::str("ns")),
    ])
}

/// Serializes the trace document compactly.
pub fn trace_string(spans: &[OpSpan], record: Option<&TelemetryRecord>) -> String {
    trace(spans, record).to_json()
}

/// Builds the trace document with a highlighted **critical path** track
/// appended: a synthetic process (one pid past the last device) whose
/// single thread carries one `ph: "X"` slice per attribution segment,
/// named by category, so the exclusive latency breakdown reads directly
/// off the timeline above the per-stream rows it was derived from.
pub fn trace_with_attribution(
    spans: &[OpSpan],
    record: Option<&TelemetryRecord>,
    attribution: &Attribution,
) -> Value {
    let doc = trace(spans, record);
    let pid = spans.iter().map(|s| s.device + 1).max().unwrap_or(1);
    let mut extra: Vec<Value> = Vec::new();
    let mut name_proc = event("M", "process_name", pid, 0, 0.0);
    name_proc.push((
        "args",
        Value::obj(vec![("name", Value::str("critical path"))]),
    ));
    extra.push(Value::obj(name_proc));
    let mut name_thread = event("M", "thread_name", pid, 0, 0.0);
    name_thread.push((
        "args",
        Value::obj(vec![("name", Value::str("attribution"))]),
    ));
    extra.push(Value::obj(name_thread));
    for seg in &attribution.segments {
        let mut e = event("X", seg.category.label(), pid, 0, seg.start_ns as f64 / 1e3);
        e.push(("dur", Value::num(seg.len_ns() as f64 / 1e3)));
        e.push(("cat", Value::str("critical-path")));
        e.push((
            "args",
            Value::obj(vec![
                ("op", Value::str(seg.op)),
                (
                    "device",
                    seg.device.map_or(Value::Null, |d| Value::num(d as f64)),
                ),
                (
                    "stream",
                    seg.stream.map_or(Value::Null, |s| Value::num(s as f64)),
                ),
            ]),
        ));
        extra.push(Value::obj(e));
    }
    // Splice the extra events into the document's event array.
    match doc {
        Value::Obj(mut pairs) => {
            for (k, v) in &mut pairs {
                if k == "traceEvents" {
                    if let Value::Arr(events) = v {
                        events.append(&mut extra);
                    }
                }
            }
            Value::Obj(pairs)
        }
        other => other,
    }
}

/// One flow arrow per released signal wait: from the counting-table
/// increment that crossed the threshold (inside the GEMM slice on the
/// compute stream) to the group's collective slice on the communication
/// stream.
fn flow_events(record: &TelemetryRecord, spans: &[OpSpan], events: &mut Vec<Value>) {
    for (i, ws) in record.satisfied.iter().enumerate() {
        let Some(inc) = record
            .increments
            .iter()
            .filter(|inc| {
                inc.device == ws.device
                    && inc.table == ws.table
                    && inc.group == ws.group
                    && inc.at <= ws.at
            })
            .max_by_key(|inc| inc.at)
        else {
            continue;
        };
        let Some(start) = spans
            .iter()
            .filter(|s| {
                s.device == ws.device
                    && s.stream == ws.stream
                    && s.start >= ws.at
                    && matches!(s.meta, SpanMeta::Collective { group: Some(g), .. } if g == ws.group)
            })
            .map(|s| s.start)
            .min()
        else {
            continue;
        };
        let id = (i + 1) as f64;
        let mut s = event("s", "signal", inc.device, inc.stream, us(inc.at));
        s.push(("cat", Value::str("signal")));
        s.push(("id", Value::num(id)));
        events.push(Value::obj(s));
        let mut f = event("f", "signal", ws.device, ws.stream, us(start));
        f.push(("cat", Value::str("signal")));
        f.push(("id", Value::num(id)));
        // Bind to the enclosing (collective) slice that begins here.
        f.push(("bp", Value::str("e")));
        events.push(Value::obj(f));
    }
}

/// Instant markers (`ph: "i"`, process scope) for fault-injection and
/// watchdog-recovery occurrences — the recovery timeline of a resilient
/// run, placed on the affected device's track.
fn instant_events(record: &TelemetryRecord, events: &mut Vec<Value>) {
    for ev in &record.runtime_events {
        let name = match ev.kind {
            RuntimeEventKind::FaultInjected => "fault-injected",
            RuntimeEventKind::WatchdogFired => "watchdog-fired",
            RuntimeEventKind::FaultQuarantined => "fault-quarantined",
            RuntimeEventKind::TailRecovery => "tail-recovery",
            RuntimeEventKind::DegradedFallback => "degraded-fallback",
        };
        let mut e = event("i", name, ev.device, 0, us(ev.at));
        e.push(("s", Value::str("p")));
        e.push(("cat", Value::str("resilience")));
        e.push((
            "args",
            Value::obj(vec![
                ("detail", Value::str(ev.detail.clone())),
                (
                    "group",
                    ev.group.map_or(Value::Null, |g| Value::num(g as f64)),
                ),
            ]),
        ));
        events.push(Value::obj(e));
    }
}

/// Counter tracks: counting-table running totals, per-link achieved
/// bandwidth, and SM occupancy.
fn counter_events(record: &TelemetryRecord, events: &mut Vec<Value>) {
    // Counting tables: one track per (device, table, group), stepping to
    // the running total at each increment.
    let mut totals: Vec<((usize, usize, usize), u64)> = Vec::new();
    for inc in &record.increments {
        let key = (inc.device, inc.table, inc.group);
        let total = match totals.iter_mut().find(|(k, _)| *k == key) {
            Some((_, t)) => {
                *t += inc.by as u64;
                *t
            }
            None => {
                totals.push((key, inc.by as u64));
                inc.by as u64
            }
        };
        let mut e = event(
            "C",
            &format!("counter t{} g{}", inc.table, inc.group),
            inc.device,
            0,
            us(inc.at),
        );
        e.push((
            "args",
            Value::obj(vec![("count", Value::num(total as f64))]),
        ));
        events.push(Value::obj(e));
    }

    // Link bandwidth: per directed link, sum the rates of transfers
    // active at each interval edge (bytes/ns == GB/s).
    let mut links: Vec<(usize, usize)> = record.transfers.iter().map(|t| (t.src, t.dst)).collect();
    links.sort_unstable();
    links.dedup();
    for (src, dst) in links {
        let mut edges: Vec<(u64, f64)> = Vec::new();
        for t in record
            .transfers
            .iter()
            .filter(|t| t.src == src && t.dst == dst)
        {
            let dur_ns = (t.end - t.start).as_nanos();
            if dur_ns == 0 {
                continue;
            }
            let rate = t.bytes as f64 / dur_ns as f64;
            edges.push(((t.start - SimTime::ZERO).as_nanos(), rate));
            edges.push(((t.end - SimTime::ZERO).as_nanos(), -rate));
        }
        edges.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        });
        let name = format!("link d{src}->d{dst} GB/s");
        let mut active = 0.0f64;
        let mut i = 0;
        while i < edges.len() {
            let at = edges.get(i).map(|&(at, _)| at).unwrap_or(0);
            // Coalesce simultaneous edges into one sample.
            while let Some(&(t, delta)) = edges.get(i) {
                if t != at {
                    break;
                }
                active += delta;
                i += 1;
            }
            let mut e = event("C", &name, src, 0, at as f64 / 1e3);
            e.push((
                "args",
                Value::obj(vec![("gbps", Value::num(active.max(0.0)))]),
            ));
            events.push(Value::obj(e));
        }
    }

    // SM occupancy: both series in every sample.
    for s in &record.occupancy {
        let mut e = event("C", "sm occupancy", s.device, 0, us(s.at));
        e.push((
            "args",
            Value::obj(vec![
                ("compute", Value::num(s.compute_sms as f64)),
                ("comm", Value::num(s.comm_sms as f64)),
            ]),
        ));
        events.push(Value::obj(e));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::json;
    use crate::record::{IncrementEvent, WaitSatisfied};

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_spans() -> Vec<OpSpan> {
        vec![
            OpSpan {
                device: 0,
                stream: 0,
                name: "gemm",
                meta: SpanMeta::Gemm { tiles: 8, waves: 2 },
                start: t(0),
                end: t(1_000),
            },
            OpSpan {
                device: 0,
                stream: 1,
                name: "collective",
                meta: SpanMeta::Collective {
                    bytes: 4096,
                    group: Some(0),
                },
                start: t(600),
                end: t(2_000),
            },
            OpSpan {
                device: 0,
                stream: 0,
                name: "callback",
                meta: SpanMeta::None,
                start: t(1_000),
                end: t(1_000),
            },
        ]
    }

    fn sample_record() -> TelemetryRecord {
        let mut record = TelemetryRecord::default();
        record.increments.push(IncrementEvent {
            at: t(400),
            device: 0,
            stream: 0,
            table: 0,
            group: 0,
            by: 1,
        });
        record.satisfied.push(WaitSatisfied {
            at: t(500),
            device: 0,
            stream: 1,
            table: 0,
            group: 0,
            threshold: 1,
        });
        record
    }

    #[test]
    fn trace_parses_and_names_processes() {
        let text = trace_string(&sample_spans(), None);
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    == Some("device 0")
        }));
        // Callback probes are filtered; the two real spans remain.
        let slices: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(
            slices[0]
                .get("args")
                .unwrap()
                .get("tiles")
                .unwrap()
                .as_f64(),
            Some(8.0)
        );
    }

    #[test]
    fn flows_connect_increment_to_collective() {
        let doc = trace(&sample_spans(), Some(&sample_record()));
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let starts: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("s"))
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("f"))
            .collect();
        assert_eq!((starts.len(), ends.len()), (1, 1));
        assert_eq!(starts[0].get("ts").unwrap().as_f64(), Some(0.4));
        assert_eq!(ends[0].get("ts").unwrap().as_f64(), Some(0.6));
        assert_eq!(starts[0].get("id"), ends[0].get("id"));
        // The flow start must sit inside an emitted slice on its track.
        let (pid, tid, ts) = (
            starts[0].get("pid").unwrap().as_f64().unwrap(),
            starts[0].get("tid").unwrap().as_f64().unwrap(),
            starts[0].get("ts").unwrap().as_f64().unwrap(),
        );
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("X")
                && e.get("pid").unwrap().as_f64() == Some(pid)
                && e.get("tid").unwrap().as_f64() == Some(tid)
                && e.get("ts").unwrap().as_f64().unwrap() <= ts
                && e.get("ts").unwrap().as_f64().unwrap() + e.get("dur").unwrap().as_f64().unwrap()
                    >= ts
        }));
    }

    #[test]
    fn attribution_track_rides_above_device_rows() {
        let spans = sample_spans();
        let record = sample_record();
        let attribution = crate::attribution::attribute(&spans, &record);
        let doc = trace_with_attribution(&spans, Some(&record), &attribution);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // The synthetic process sits past the last device and is named.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("M")
                && e.get("pid").and_then(Value::as_f64) == Some(1.0)
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    == Some("critical path")
        }));
        // One slice per segment, named by category, tiling the makespan.
        let slices: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("cat").and_then(Value::as_str) == Some("critical-path")
            })
            .collect();
        assert_eq!(slices.len(), attribution.segments.len());
        let total_us: f64 = slices
            .iter()
            .map(|e| e.get("dur").and_then(Value::as_f64).unwrap())
            .sum();
        assert!((total_us - attribution.makespan_ns as f64 / 1e3).abs() < 1e-9);
        // The fixture has no wait span, so the path is the collective
        // plus the leading idle gap.
        assert!(slices
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("collective-transfer")));
    }

    #[test]
    fn counter_tracks_step_to_running_totals() {
        let mut record = sample_record();
        record.increments.push(IncrementEvent {
            at: t(450),
            device: 0,
            stream: 0,
            table: 0,
            group: 0,
            by: 1,
        });
        let doc = trace(&sample_spans(), Some(&record));
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counts: Vec<f64> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("C")
                    && e.get("name").and_then(Value::as_str) == Some("counter t0 g0")
            })
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("count")
                    .unwrap()
                    .as_f64()
                    .unwrap()
            })
            .collect();
        assert_eq!(counts, vec![1.0, 2.0]);
    }
}
