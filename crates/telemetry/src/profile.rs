//! The overlap profiler: runs every evaluated method on one workload
//! with the telemetry recorder attached and derives a machine-readable
//! [`MetricsReport`] plus Perfetto traces.

use baselines::{measure_traced, Method};
use flashoverlap::runtime::CommPattern;
use flashoverlap::{nonoverlap_latency, theoretical_latency, FlashOverlapError, SystemSpec};
use gpu_sim::gemm::GemmDims;
use gpu_sim::OpSpan;
use sim::SimDuration;

use crate::json::Value;
use crate::metrics::{
    link_stats, occupancy_stats, overlap_efficiency, signal_summary, stream_stats, LinkPeaks,
    LinkStats, OccupancyStats, SignalSummary, StreamStats,
};
use crate::perfetto;
use crate::record::{Telemetry, TelemetryRecord};

/// One method's profiled run.
#[derive(Debug)]
pub struct MethodRun {
    /// Which method.
    pub method: Method,
    /// Whether the method can run on this pattern/system at all.
    pub applicable: bool,
    /// Measured latency (when the run succeeded).
    pub latency: Option<SimDuration>,
    /// Per-stream operation spans (`None` for analytic methods).
    pub spans: Option<Vec<OpSpan>>,
    /// Causal record (`None` for analytic methods).
    pub record: Option<TelemetryRecord>,
    /// The failure, if the method was applicable but refused the shape.
    pub error: Option<String>,
}

/// A full profiling session over every method in [`Method::ALL`].
#[derive(Debug)]
pub struct Profile {
    /// Per-method runs, in [`Method::ALL`] order.
    pub methods: Vec<MethodRun>,
    /// The non-overlap reference latency (measured when possible,
    /// analytic otherwise).
    pub base: SimDuration,
    /// The perfect-overlap lower bound.
    pub theory: SimDuration,
    /// The derived report.
    pub report: MetricsReport,
}

impl Profile {
    /// The FlashOverlap run (always present in [`Method::ALL`]).
    pub fn flashoverlap_run(&self) -> Option<&MethodRun> {
        self.methods
            .iter()
            .find(|r| r.method == Method::FlashOverlap)
    }

    /// The Perfetto trace of the FlashOverlap run — spans for every
    /// device, signal-flow arrows, and counter tracks. `None` only if
    /// the FlashOverlap run itself failed.
    pub fn trace_string(&self) -> Option<String> {
        let run = self.flashoverlap_run()?;
        let spans = run.spans.as_ref()?;
        Some(perfetto::trace_string(spans, run.record.as_ref()))
    }
}

/// Profiles one workload across all methods.
///
/// Infeasibility of an individual baseline (peer-to-peer method on PCIe,
/// indivisible shape) is *data*, not an error: it lands in that method's
/// [`MethodRun::error`] / `applicable` fields. Only a failure of the
/// non-overlap reference itself is fatal.
///
/// # Errors
///
/// Propagates simulation-engine failures of the reference run.
pub fn profile(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
) -> Result<Profile, FlashOverlapError> {
    let theory = theoretical_latency(dims, pattern.primitive(), system);
    let mut methods = Vec::with_capacity(Method::ALL.len());
    for method in Method::ALL {
        if !method.applicable(pattern, system) {
            methods.push(MethodRun {
                method,
                applicable: false,
                latency: None,
                spans: None,
                record: None,
                error: None,
            });
            continue;
        }
        let telemetry = Telemetry::new();
        match measure_traced(method, dims, pattern, system, &telemetry.instrumentation()) {
            Ok(run) => methods.push(MethodRun {
                method,
                applicable: true,
                latency: Some(run.latency),
                record: run.spans.is_some().then(|| telemetry.take_record()),
                spans: run.spans,
                error: None,
            }),
            Err(e) => methods.push(MethodRun {
                method,
                applicable: true,
                latency: None,
                spans: None,
                record: None,
                error: Some(e.to_string()),
            }),
        }
    }
    let base = methods
        .iter()
        .find(|r| r.method == Method::NonOverlap)
        .and_then(|r| r.latency)
        .unwrap_or_else(|| nonoverlap_latency(dims, pattern.primitive(), system));
    let report = build_report(dims, pattern, system, &methods, base, theory);
    Ok(Profile {
        methods,
        base,
        theory,
        report,
    })
}

/// Workload identification for a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// GEMM rows.
    pub m: u32,
    /// GEMM columns.
    pub n: u32,
    /// GEMM reduction depth.
    pub k: u32,
    /// Rank count.
    pub n_gpus: usize,
    /// Collective primitive name.
    pub pattern: String,
    /// Fabric name.
    pub fabric: String,
}

/// One method's row in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodMetrics {
    /// Method display name.
    pub name: String,
    /// Whether the method applies to this pattern/system.
    pub applicable: bool,
    /// Measured latency in microseconds.
    pub latency_us: Option<f64>,
    /// Speedup over the non-overlap reference.
    pub speedup: Option<f64>,
    /// Overlap efficiency in `[0, 1]` (see
    /// [`crate::metrics::overlap_efficiency`]). `None` when undefined
    /// *or* when the run is degenerate.
    pub overlap_efficiency: Option<f64>,
    /// The measured run was degenerate (zero-duration span data), so
    /// speedup/efficiency ratios would be meaningless and are withheld.
    pub degenerate: bool,
    /// Why the method failed, when applicable but infeasible.
    pub error: Option<String>,
}

/// The machine-readable profiling report (`--metrics-out`).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// What was profiled.
    pub workload: Workload,
    /// Non-overlap reference latency (µs).
    pub nonoverlap_us: f64,
    /// Perfect-overlap bound (µs).
    pub theory_us: f64,
    /// Per-method rows, in [`Method::ALL`] order.
    pub methods: Vec<MethodMetrics>,
    /// Signal-latency statistics of the FlashOverlap run.
    pub signal_latency: Option<SignalSummary>,
    /// Per-link utilization of the FlashOverlap run.
    pub links: Vec<LinkStats>,
    /// Per-stream busy fractions of the FlashOverlap run.
    pub streams: Vec<StreamStats>,
    /// Per-device SM occupancy of the FlashOverlap run.
    pub occupancy: Vec<OccupancyStats>,
}

fn build_report(
    dims: GemmDims,
    pattern: &CommPattern,
    system: &SystemSpec,
    methods: &[MethodRun],
    base: SimDuration,
    theory: SimDuration,
) -> MetricsReport {
    let method_rows = methods
        .iter()
        .map(|run| {
            let latency_us = run.latency.map(|l| l.as_nanos() as f64 / 1e3);
            // A zero-duration measurement (degenerate span data) would
            // divide to an infinite speedup and clamp to a perfect
            // efficiency; flag it and withhold both ratios instead.
            let degenerate = run.latency.is_some_and(|l| l.is_zero());
            let sound = run.latency.filter(|l| !l.is_zero());
            MethodMetrics {
                name: run.method.to_string(),
                applicable: run.applicable,
                latency_us,
                speedup: sound.map(|l| base.as_nanos() as f64 / l.as_nanos() as f64),
                overlap_efficiency: sound.and_then(|l| overlap_efficiency(l, base, theory)),
                degenerate,
                error: run.error.clone(),
            }
        })
        .collect();
    let flash = methods.iter().find(|r| r.method == Method::FlashOverlap);
    let (signal, links, streams, occupancy) = match flash {
        Some(run) => {
            let record = run.record.clone().unwrap_or_default();
            let spans: &[OpSpan] = run.spans.as_deref().unwrap_or(&[]);
            let run_ns = spans
                .iter()
                .map(|s| (s.end - sim::SimTime::ZERO).as_nanos())
                .max()
                .unwrap_or(0);
            (
                signal_summary(&record, spans),
                // Per-tier denominators: intra-node links are scored
                // against the intra fabric, node-crossing links against
                // the inter fabric (identical on single-node systems).
                link_stats(
                    &record,
                    &LinkPeaks::two_tier(
                        system.topology.node_map(),
                        Some(system.topology.intra.p2p.peak_gbps),
                        Some(system.topology.inter.p2p.peak_gbps),
                    ),
                ),
                stream_stats(spans, run_ns),
                occupancy_stats(&record, spans, run_ns),
            )
        }
        None => (None, Vec::new(), Vec::new(), Vec::new()),
    };
    MetricsReport {
        workload: Workload {
            m: dims.m,
            n: dims.n,
            k: dims.k,
            n_gpus: system.n_gpus,
            pattern: format!("{:?}", pattern.primitive()),
            fabric: system.fabric.name.to_owned(),
        },
        nonoverlap_us: base.as_nanos() as f64 / 1e3,
        theory_us: theory.as_nanos() as f64 / 1e3,
        methods: method_rows,
        signal_latency: signal,
        links,
        streams,
        occupancy,
    }
}

fn opt_num(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::num)
}

impl MetricsReport {
    /// Serializes the report as a JSON document.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            (
                "workload",
                Value::obj(vec![
                    ("m", Value::num(self.workload.m as f64)),
                    ("n", Value::num(self.workload.n as f64)),
                    ("k", Value::num(self.workload.k as f64)),
                    ("n_gpus", Value::num(self.workload.n_gpus as f64)),
                    ("pattern", Value::str(&self.workload.pattern)),
                    ("fabric", Value::str(&self.workload.fabric)),
                ]),
            ),
            ("nonoverlap_us", Value::num(self.nonoverlap_us)),
            ("theory_us", Value::num(self.theory_us)),
            (
                "methods",
                Value::Arr(
                    self.methods
                        .iter()
                        .map(|m| {
                            Value::obj(vec![
                                ("name", Value::str(&m.name)),
                                ("applicable", Value::Bool(m.applicable)),
                                ("latency_us", opt_num(m.latency_us)),
                                ("speedup", opt_num(m.speedup)),
                                ("overlap_efficiency", opt_num(m.overlap_efficiency)),
                                ("degenerate", Value::Bool(m.degenerate)),
                                ("error", m.error.as_ref().map_or(Value::Null, Value::str)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "signal_latency",
                self.signal_latency.as_ref().map_or(Value::Null, |s| {
                    let totals: Vec<u64> = s.samples.iter().map(|g| g.total_ns).collect();
                    let pct = crate::metrics::percentiles(&totals);
                    let pnum = |f: fn(&crate::metrics::Percentiles) -> u64| {
                        pct.as_ref()
                            .map_or(Value::Null, |p| Value::num(f(p) as f64))
                    };
                    Value::obj(vec![
                        ("samples", Value::num(s.samples.len() as f64)),
                        ("mean_total_ns", Value::num(s.mean_total_ns)),
                        ("min_total_ns", Value::num(s.min_total_ns as f64)),
                        ("max_total_ns", Value::num(s.max_total_ns as f64)),
                        ("p50_total_ns", pnum(|p| p.p50)),
                        ("p95_total_ns", pnum(|p| p.p95)),
                        ("p99_total_ns", pnum(|p| p.p99)),
                        (
                            "mean_release_to_collective_ns",
                            Value::num(s.mean_release_to_collective_ns),
                        ),
                        (
                            "per_group",
                            Value::Arr(
                                s.samples
                                    .iter()
                                    .map(|g| {
                                        Value::obj(vec![
                                            ("device", Value::num(g.device as f64)),
                                            ("group", Value::num(g.group as f64)),
                                            (
                                                "increment_to_release_ns",
                                                Value::num(g.increment_to_release_ns as f64),
                                            ),
                                            (
                                                "release_to_collective_ns",
                                                Value::num(g.release_to_collective_ns as f64),
                                            ),
                                            ("total_ns", Value::num(g.total_ns as f64)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                }),
            ),
            (
                "links",
                Value::Arr(
                    self.links
                        .iter()
                        .map(|l| {
                            Value::obj(vec![
                                ("src", Value::num(l.src as f64)),
                                ("dst", Value::num(l.dst as f64)),
                                ("tier", Value::str(l.tier)),
                                ("bytes", Value::num(l.bytes as f64)),
                                ("busy_ns", Value::num(l.busy_ns as f64)),
                                ("achieved_gbps", Value::num(l.achieved_gbps)),
                                ("utilization", opt_num(l.utilization)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "streams",
                Value::Arr(
                    self.streams
                        .iter()
                        .map(|s| {
                            Value::obj(vec![
                                ("device", Value::num(s.device as f64)),
                                ("stream", Value::num(s.stream as f64)),
                                ("busy_ns", Value::num(s.busy_ns as f64)),
                                ("wait_ns", Value::num(s.wait_ns as f64)),
                                ("busy_frac", Value::num(s.busy_frac)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "occupancy",
                Value::Arr(
                    self.occupancy
                        .iter()
                        .map(|o| {
                            Value::obj(vec![
                                ("device", Value::num(o.device as f64)),
                                ("mean_compute_sms", Value::num(o.mean_compute_sms)),
                                ("mean_comm_sms", Value::num(o.mean_comm_sms)),
                                ("peak_compute_sms", Value::num(o.peak_compute_sms as f64)),
                                ("peak_comm_sms", Value::num(o.peak_comm_sms as f64)),
                                ("gemm_idle_ns", Value::num(o.gemm_idle_ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the human-readable summary table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "workload: {}x{}x{} {} on {}x {}\n",
            self.workload.m,
            self.workload.n,
            self.workload.k,
            self.workload.pattern,
            self.workload.n_gpus,
            self.workload.fabric
        ));
        out.push_str(&format!(
            "non-overlap {:.1} us | perfect-overlap bound {:.1} us\n\n",
            self.nonoverlap_us, self.theory_us
        ));
        out.push_str(&format!(
            "{:<22} {:>12} {:>9} {:>12}\n",
            "method", "latency(us)", "speedup", "overlap-eff"
        ));
        for m in &self.methods {
            if !m.applicable {
                out.push_str(&format!("{:<22} {:>12}\n", m.name, "n/a"));
                continue;
            }
            if let Some(err) = &m.error {
                out.push_str(&format!("{:<22} failed: {err}\n", m.name));
                continue;
            }
            if m.degenerate {
                out.push_str(&format!(
                    "{:<22} {:>12.1} {:>9} {:>12}\n",
                    m.name,
                    m.latency_us.unwrap_or(f64::NAN),
                    "-",
                    "degenerate",
                ));
                continue;
            }
            out.push_str(&format!(
                "{:<22} {:>12.1} {:>8.2}x {:>12}\n",
                m.name,
                m.latency_us.unwrap_or(f64::NAN),
                m.speedup.unwrap_or(f64::NAN),
                m.overlap_efficiency
                    .map_or_else(|| "-".to_owned(), |e| format!("{e:.2}")),
            ));
        }
        if let Some(s) = &self.signal_latency {
            let totals: Vec<u64> = s.samples.iter().map(|g| g.total_ns).collect();
            let pct = crate::metrics::percentiles(&totals);
            out.push_str(&format!(
                "\nsignal latency ({} samples): mean {:.2} us, min {:.2} us, max {:.2} us\n",
                s.samples.len(),
                s.mean_total_ns / 1e3,
                s.min_total_ns as f64 / 1e3,
                s.max_total_ns as f64 / 1e3,
            ));
            if let Some(p) = pct {
                out.push_str(&format!(
                    "signal latency tail: p50 {:.2} us, p95 {:.2} us, p99 {:.2} us\n",
                    p.p50 as f64 / 1e3,
                    p.p95 as f64 / 1e3,
                    p.p99 as f64 / 1e3,
                ));
            }
        }
        for l in &self.links {
            out.push_str(&format!(
                "link d{}->d{} [{}]: {:.1} MB, busy {:.1} us, {:.1} GB/s{}\n",
                l.src,
                l.dst,
                l.tier,
                l.bytes as f64 / 1e6,
                l.busy_ns as f64 / 1e3,
                l.achieved_gbps,
                l.utilization
                    .map_or(String::new(), |u| format!(" ({:.0}% of peak)", u * 100.0)),
            ));
        }
        for o in &self.occupancy {
            out.push_str(&format!(
                "device {}: mean {:.1} compute / {:.1} comm SMs, gemm idle {:.1} us\n",
                o.device,
                o.mean_compute_sms,
                o.mean_comm_sms,
                o.gemm_idle_ns as f64 / 1e3,
            ));
        }
        out
    }
}
