//! A minimal JSON document model with a writer and a parser.
//!
//! The build environment has no registry access, so instead of
//! `serde_json` the exporters build [`Value`] trees and serialize them
//! here; the parser exists so tests and the CI smoke run can validate
//! that emitted traces and metric reports round-trip.
//!
//! Scope: exactly RFC 8259 documents the exporters emit — objects keep
//! insertion order, numbers are `f64`, non-finite numbers serialize as
//! `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// A number value (non-finite inputs become `null` on write).
    pub fn num(n: f64) -> Value {
        Value::Num(n)
    }

    /// Looks up `key` in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation, for human-inspected output.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, indent, depth);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        // Integral values print without a fraction; `i64` is exact here.
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest round-trip float formatting is valid JSON.
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) of the first
/// syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for the BMP
                            // identifiers the exporters emit.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let v = Value::obj(vec![
            ("name", Value::str("gemm \"x\"\n")),
            ("ts", Value::num(12.375)),
            ("n", Value::num(-3.0)),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
            (
                "arr",
                Value::Arr(vec![Value::num(1.0), Value::str("two"), Value::Null]),
            ),
        ]);
        for text in [v.to_json(), v.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parses_hand_written_json() {
        let v = parse(r#" { "a" : [ 1, 2.5e1, -0.5 ] , "b" : {} , "c": [] } "#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(v.get("b"), Some(&Value::Obj(vec![])));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::num(5.0).to_json(), "5");
        assert_eq!(Value::num(5.25).to_json(), "5.25");
        assert_eq!(Value::num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse(r#""aA\t""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "nul", "\"abc", "{\"a\" 1}", "1 2"] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }
}
