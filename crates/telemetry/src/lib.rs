//! Telemetry for simulated runs: Perfetto traces, signal-latency and
//! link-utilization metrics, and overlap-efficiency profiling.
//!
//! Plays the role Nsight Systems / CUPTI play for the real FlashOverlap
//! (see DESIGN.md's substitution table): a [`record::Telemetry`] session
//! attaches to the cluster as a [`gpu_sim::ClusterMonitor`] and to the
//! engine as a [`sim::EngineProbe`], recording the full causal record of
//! a run — per-stream operation spans with metadata, counting-table
//! increments and released waits, rendezvous points, per-link transfer
//! intervals, and SM-occupancy changes. From that record it derives:
//!
//! - per-(rank, group) **signal latency** (last increment → wait
//!   released → collective launch), the cost of §4's signaling design;
//! - per-link **bandwidth utilization** against the fabric's peak;
//! - per-stream **busy fractions** and per-device **SM occupancy**;
//! - **overlap efficiency** — where the measured latency lands between
//!   the non-overlap reference and the perfect-overlap bound of §6.3.
//!
//! Two exporters: [`perfetto`] writes Chrome trace-event JSON covering
//! all devices (with signal-flow arrows and counter tracks), and
//! [`profile::MetricsReport`] serializes the derived metrics. JSON is
//! produced and parsed by the vendored [`json`] module (the build
//! environment has no registry access for `serde_json`).

#![warn(missing_docs)]

pub mod attribution;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod record;

pub use attribution::{
    attribute, attribute_makespan, Attribution, AttributionTotals, Category, Segment,
};
pub use metrics::{
    link_stats, occupancy_stats, overlap_efficiency, percentile, percentiles, signal_summary,
    stream_stats, LinkPeaks, LinkStats, OccupancyStats, Percentiles, SignalSample, SignalSummary,
    StreamStats,
};
pub use profile::{profile, MethodMetrics, MethodRun, MetricsReport, Profile, Workload};
pub use record::{Telemetry, TelemetryRecord};
