//! The telemetry recorder: a [`ClusterMonitor`] + engine probe pair that
//! captures the full causal record of a simulated run — counting-table
//! increments, released waits, rendezvous points, per-link transfer
//! intervals, and SM-occupancy changes — for the metrics and exporters
//! in this crate to derive from.

use std::cell::RefCell;
use std::rc::Rc;

use flashoverlap::runtime::Instrumentation;
use gpu_sim::monitor::{ClusterMonitor, LinkTransfer};
use gpu_sim::stream::GpuEventId;
use gpu_sim::{Cluster, DeviceId, StreamId};
use sim::{EngineProbe, SimTime};

/// One counting-table increment, as the GEMM epilogue fired it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementEvent {
    /// When the increment landed.
    pub at: SimTime,
    /// Device owning the counting table.
    pub device: DeviceId,
    /// Stream of the incrementing kernel.
    pub stream: StreamId,
    /// Counting table index.
    pub table: usize,
    /// Wave group slot.
    pub group: usize,
    /// Increment amount.
    pub by: u32,
}

/// One signal wait crossing its threshold (the moment a blocked
/// communication stream is released).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitSatisfied {
    /// When the wait was released.
    pub at: SimTime,
    /// Device of the waiting stream.
    pub device: DeviceId,
    /// The waiting stream (the communication stream).
    pub stream: StreamId,
    /// Counting table index.
    pub table: usize,
    /// Wave group slot.
    pub group: usize,
    /// The threshold that was met.
    pub threshold: u32,
}

/// A collective rendezvous: the instant the last participant arrived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RendezvousEvent {
    /// When the last participant arrived.
    pub at: SimTime,
    /// The participating (device, stream) pairs.
    pub participants: Vec<(DeviceId, StreamId)>,
}

/// A point sample of one device's SM allocation (totals *after* the
/// change that triggered the sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySample {
    /// Sample time.
    pub at: SimTime,
    /// Sampled device.
    pub device: DeviceId,
    /// SMs held by compute kernels.
    pub compute_sms: u32,
    /// SMs held by communication kernels.
    pub comm_sms: u32,
}

/// Everything the recorder captured from one run, in arrival order.
#[derive(Debug, Default, Clone)]
pub struct TelemetryRecord {
    /// Counting-table increments.
    pub increments: Vec<IncrementEvent>,
    /// Released signal waits.
    pub satisfied: Vec<WaitSatisfied>,
    /// Collective rendezvous points.
    pub rendezvous: Vec<RendezvousEvent>,
    /// Per-link transfer intervals (`end` may lie in the future of the
    /// emission time: transfers are recorded when scheduled).
    pub transfers: Vec<LinkTransfer>,
    /// SM-occupancy samples.
    pub occupancy: Vec<OccupancySample>,
    /// GPU event records/waits, kept for completeness: `(at, device,
    /// stream, event, is_wait)`.
    pub gpu_events: Vec<(SimTime, DeviceId, StreamId, GpuEventId, bool)>,
    /// Fault-injection and watchdog-recovery occurrences, in arrival
    /// order (the recovery timeline of a resilient run).
    pub runtime_events: Vec<gpu_sim::RuntimeEvent>,
    /// When the engine last drained its queue (end of run).
    pub drained_at: Option<SimTime>,
}

impl TelemetryRecord {
    /// Clears every buffer while keeping the allocations, so a serving
    /// loop can recycle one record's capacity across chains instead of
    /// re-growing the per-event vectors from zero each time.
    pub fn clear(&mut self) {
        let TelemetryRecord {
            increments,
            satisfied,
            rendezvous,
            transfers,
            occupancy,
            gpu_events,
            runtime_events,
            drained_at,
        } = self;
        increments.clear();
        satisfied.clear();
        rendezvous.clear();
        transfers.clear();
        occupancy.clear();
        gpu_events.clear();
        runtime_events.clear();
        *drained_at = None;
    }
}

#[derive(Default)]
struct Inner {
    state: RefCell<TelemetryRecord>,
}

impl ClusterMonitor for Inner {
    fn on_counter_increment(
        &self,
        at: SimTime,
        device: DeviceId,
        stream: StreamId,
        table: usize,
        group: usize,
        by: u32,
    ) {
        self.state.borrow_mut().increments.push(IncrementEvent {
            at,
            device,
            stream,
            table,
            group,
            by,
        });
    }

    fn on_counter_satisfied(
        &self,
        at: SimTime,
        device: DeviceId,
        stream: StreamId,
        table: usize,
        group: usize,
        threshold: u32,
    ) {
        self.state.borrow_mut().satisfied.push(WaitSatisfied {
            at,
            device,
            stream,
            table,
            group,
            threshold,
        });
    }

    fn on_event_record(&self, at: SimTime, device: DeviceId, stream: StreamId, event: GpuEventId) {
        self.state
            .borrow_mut()
            .gpu_events
            .push((at, device, stream, event, false));
    }

    fn on_event_wait(&self, at: SimTime, device: DeviceId, stream: StreamId, event: GpuEventId) {
        self.state
            .borrow_mut()
            .gpu_events
            .push((at, device, stream, event, true));
    }

    fn on_rendezvous(&self, at: SimTime, participants: &[(DeviceId, StreamId)]) {
        self.state.borrow_mut().rendezvous.push(RendezvousEvent {
            at,
            participants: participants.to_vec(),
        });
    }

    fn on_link_transfer(&self, transfer: &LinkTransfer) {
        self.state.borrow_mut().transfers.push(*transfer);
    }

    fn on_sm_occupancy(&self, at: SimTime, device: DeviceId, compute_sms: u32, comm_sms: u32) {
        self.state.borrow_mut().occupancy.push(OccupancySample {
            at,
            device,
            compute_sms,
            comm_sms,
        });
    }

    fn on_runtime_event(&self, event: &gpu_sim::RuntimeEvent) {
        self.state.borrow_mut().runtime_events.push(event.clone());
    }
}

impl EngineProbe<Cluster> for Inner {
    fn on_drain(&self, now: SimTime, _world: &mut Cluster) {
        self.state.borrow_mut().drained_at = Some(now);
    }
}

/// A telemetry recording session. Attach [`Telemetry::monitor`] to the
/// cluster and [`Telemetry::probe`] to the engine (or pass
/// [`Telemetry::instrumentation`] to an instrumented entry point), run,
/// then harvest with [`Telemetry::take_record`].
pub struct Telemetry {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.borrow();
        f.debug_struct("Telemetry")
            .field("increments", &state.increments.len())
            .field("satisfied", &state.satisfied.len())
            .field("transfers", &state.transfers.len())
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh, empty recording session.
    pub fn new() -> Self {
        Telemetry {
            inner: Rc::new(Inner::default()),
        }
    }

    /// A recording session that reuses `scratch`'s buffer capacity (its
    /// contents are cleared). Pair with [`Telemetry::take_record`] to
    /// ping-pong one allocation through a long run of short sessions —
    /// the replica-engine hot path attaches a recorder per chain.
    pub fn recycling(mut scratch: TelemetryRecord) -> Self {
        scratch.clear();
        Telemetry {
            inner: Rc::new(Inner {
                state: RefCell::new(scratch),
            }),
        }
    }

    /// The cluster-side observer.
    pub fn monitor(&self) -> Rc<dyn ClusterMonitor> {
        Rc::clone(&self.inner) as Rc<dyn ClusterMonitor>
    }

    /// The engine-side probe (records the drain time).
    pub fn probe(&self) -> Rc<dyn EngineProbe<Cluster>> {
        Rc::clone(&self.inner) as Rc<dyn EngineProbe<Cluster>>
    }

    /// Both hooks bundled for the instrumented runtime entry points (no
    /// signal mutation).
    pub fn instrumentation(&self) -> Instrumentation {
        Instrumentation {
            monitor: Some(self.monitor()),
            probe: Some(self.probe()),
            mutation: None,
        }
    }

    /// Drains and returns everything recorded so far, resetting the
    /// session.
    pub fn take_record(&self) -> TelemetryRecord {
        self.inner.state.take()
    }
}
