//! Derived metrics: signal latency, link utilization, stream busy
//! fractions, SM occupancy, and overlap efficiency.
//!
//! All derivations are pure functions over the causal record
//! ([`TelemetryRecord`]) and the per-stream operation spans, so they can
//! be unit-tested on synthetic inputs.

use gpu_sim::{DeviceId, OpSpan, SpanMeta, StreamId};
use sim::{SimDuration, SimTime};

use crate::record::TelemetryRecord;

/// One group's measured signaling path on one rank: last counting-table
/// increment → wait released → collective kernel launched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalSample {
    /// Rank observing the signal.
    pub device: DeviceId,
    /// Wave group.
    pub group: usize,
    /// Nanoseconds from the releasing increment to the wait crossing its
    /// threshold (the counting-table poll delay).
    pub increment_to_release_ns: u64,
    /// Nanoseconds from the released wait to the group's collective
    /// starting on the communication stream.
    pub release_to_collective_ns: u64,
    /// Full signal latency (sum of the two legs).
    pub total_ns: u64,
}

/// Aggregate signal-latency statistics over every (rank, group) sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSummary {
    /// The per-(rank, group) samples, rank-major.
    pub samples: Vec<SignalSample>,
    /// Mean of `total_ns`.
    pub mean_total_ns: f64,
    /// Minimum `total_ns`.
    pub min_total_ns: u64,
    /// Maximum `total_ns`.
    pub max_total_ns: u64,
    /// Mean of the wait-release → collective-launch leg.
    pub mean_release_to_collective_ns: f64,
}

/// Joins released waits to their releasing increments and the launched
/// collectives. Returns `None` if the run had no signal waits (baselines
/// synchronize with events, not counters).
pub fn signal_summary(record: &TelemetryRecord, spans: &[OpSpan]) -> Option<SignalSummary> {
    let mut samples = Vec::with_capacity(record.satisfied.len());
    for ws in &record.satisfied {
        let last_increment = record
            .increments
            .iter()
            .filter(|inc| {
                inc.device == ws.device
                    && inc.table == ws.table
                    && inc.group == ws.group
                    && inc.at <= ws.at
            })
            .map(|inc| inc.at)
            .max();
        let collective_start = spans
            .iter()
            .filter(|s| {
                s.device == ws.device
                    && s.stream == ws.stream
                    && s.start >= ws.at
                    && matches!(s.meta, SpanMeta::Collective { group: Some(g), .. } if g == ws.group)
            })
            .map(|s| s.start)
            .min();
        let increment_to_release_ns = last_increment.map_or(0, |inc| (ws.at - inc).as_nanos());
        let release_to_collective_ns =
            collective_start.map_or(0, |start| (start - ws.at).as_nanos());
        samples.push(SignalSample {
            device: ws.device,
            group: ws.group,
            increment_to_release_ns,
            release_to_collective_ns,
            total_ns: increment_to_release_ns + release_to_collective_ns,
        });
    }
    if samples.is_empty() {
        return None;
    }
    samples.sort_by_key(|s| (s.device, s.group));
    let n = samples.len() as f64;
    Some(SignalSummary {
        mean_total_ns: samples.iter().map(|s| s.total_ns as f64).sum::<f64>() / n,
        min_total_ns: samples.iter().map(|s| s.total_ns).min().unwrap_or(0),
        max_total_ns: samples.iter().map(|s| s.total_ns).max().unwrap_or(0),
        mean_release_to_collective_ns: samples
            .iter()
            .map(|s| s.release_to_collective_ns as f64)
            .sum::<f64>()
            / n,
        samples,
    })
}

/// One directed link's aggregate traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkStats {
    /// Source device.
    pub src: DeviceId,
    /// Destination device.
    pub dst: DeviceId,
    /// Fabric tier the link crosses ("intra" within a node, "inter"
    /// across nodes; always "intra" on a single-node fabric).
    pub tier: &'static str,
    /// Total bytes carried.
    pub bytes: u64,
    /// Time the link carried at least one transfer (interval union).
    pub busy_ns: u64,
    /// Achieved bandwidth while busy, in GB/s (bytes per busy
    /// nanosecond).
    pub achieved_gbps: f64,
    /// `achieved_gbps` over *this link's* peak bandwidth, when known —
    /// the intra- or inter-node peak depending on the tier the link
    /// crosses, so a saturated IB link is not scored against NVLink
    /// wire speed. Ring collectives drive each link below wire speed
    /// (call overheads, protocol factor), so this sits below 1.
    pub utilization: Option<f64>,
}

/// Per-tier peak bandwidths: the utilization denominators of
/// [`link_stats`], resolved per link from a device → node map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkPeaks {
    /// Node of each device id; empty means a single-node fabric
    /// (every link is intra-tier). Devices beyond the map's length
    /// are treated as node 0.
    pub node_of: Vec<usize>,
    /// Peak GB/s between devices on the same node.
    pub intra_gbps: Option<f64>,
    /// Peak GB/s between devices on different nodes.
    pub inter_gbps: Option<f64>,
}

impl LinkPeaks {
    /// A uniform single-tier fabric: one peak for every link.
    pub fn uniform(peak_gbps: Option<f64>) -> Self {
        LinkPeaks {
            node_of: Vec::new(),
            intra_gbps: peak_gbps,
            inter_gbps: peak_gbps,
        }
    }

    /// A two-tier fabric over an explicit device → node map.
    pub fn two_tier(node_of: Vec<usize>, intra_gbps: Option<f64>, inter_gbps: Option<f64>) -> Self {
        LinkPeaks {
            node_of,
            intra_gbps,
            inter_gbps,
        }
    }

    fn node(&self, device: DeviceId) -> usize {
        self.node_of.get(device).copied().unwrap_or(0)
    }

    /// The tier label of the `src` → `dst` link.
    pub fn tier(&self, src: DeviceId, dst: DeviceId) -> &'static str {
        if self.node(src) == self.node(dst) {
            "intra"
        } else {
            "inter"
        }
    }

    /// The peak bandwidth of the `src` → `dst` link, when known.
    pub fn peak(&self, src: DeviceId, dst: DeviceId) -> Option<f64> {
        if self.node(src) == self.node(dst) {
            self.intra_gbps
        } else {
            self.inter_gbps
        }
    }
}

/// Aggregates per-link transfer intervals into per-link utilization.
/// Each link's utilization denominator is *its own* tier's peak from
/// `peaks` — an inter-node link is scored against the inter-node
/// fabric, not a uniform cluster-wide number.
pub fn link_stats(record: &TelemetryRecord, peaks: &LinkPeaks) -> Vec<LinkStats> {
    let mut pairs: Vec<(DeviceId, DeviceId)> =
        record.transfers.iter().map(|t| (t.src, t.dst)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
        .into_iter()
        .map(|(src, dst)| {
            let mut intervals: Vec<(SimTime, SimTime)> = record
                .transfers
                .iter()
                .filter(|t| t.src == src && t.dst == dst)
                .map(|t| (t.start, t.end))
                .collect();
            let bytes: u64 = record
                .transfers
                .iter()
                .filter(|t| t.src == src && t.dst == dst)
                .map(|t| t.bytes)
                .sum();
            intervals.sort_unstable();
            let mut busy_ns = 0u64;
            let mut cursor: Option<SimTime> = None;
            for (start, end) in intervals {
                let from = cursor.map_or(start, |c| c.max(start));
                if end > from {
                    busy_ns += (end - from).as_nanos();
                }
                cursor = Some(cursor.map_or(end, |c| c.max(end)));
            }
            let achieved_gbps = if busy_ns > 0 {
                bytes as f64 / busy_ns as f64
            } else {
                0.0
            };
            LinkStats {
                src,
                dst,
                tier: peaks.tier(src, dst),
                bytes,
                busy_ns,
                achieved_gbps,
                utilization: peaks
                    .peak(src, dst)
                    .filter(|&p| p > 0.0)
                    .map(|p| achieved_gbps / p),
            }
        })
        .collect()
}

/// One stream's activity over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Device.
    pub device: DeviceId,
    /// Stream.
    pub stream: StreamId,
    /// Time covered by kernels doing work (spans minus signal/event
    /// waits and probe callbacks).
    pub busy_ns: u64,
    /// Time spent blocked in `wait_counter` / `wait_event` kernels.
    pub wait_ns: u64,
    /// `busy_ns` over the run's end time.
    pub busy_frac: f64,
}

/// Per-(device, stream) busy/wait accounting over `spans`. `run_ns` is
/// the run's total duration (denominator of `busy_frac`).
pub fn stream_stats(spans: &[OpSpan], run_ns: u64) -> Vec<StreamStats> {
    let mut keys: Vec<(DeviceId, StreamId)> = spans.iter().map(|s| (s.device, s.stream)).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter()
        .map(|(device, stream)| {
            let mut busy_ns = 0u64;
            let mut wait_ns = 0u64;
            for s in spans
                .iter()
                .filter(|s| s.device == device && s.stream == stream)
            {
                let ns = (s.end - s.start).as_nanos();
                match s.name {
                    "callback" => {}
                    "wait_counter" | "wait_event" => wait_ns += ns,
                    _ => busy_ns += ns,
                }
            }
            StreamStats {
                device,
                stream,
                busy_ns,
                wait_ns,
                busy_frac: if run_ns > 0 {
                    busy_ns as f64 / run_ns as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// One device's SM-allocation profile over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyStats {
    /// Device.
    pub device: DeviceId,
    /// Time-weighted mean SMs held by compute kernels.
    pub mean_compute_sms: f64,
    /// Time-weighted mean SMs held by communication kernels.
    pub mean_comm_sms: f64,
    /// Peak compute SM allocation.
    pub peak_compute_sms: u32,
    /// Peak communication SM allocation.
    pub peak_comm_sms: u32,
    /// Time inside the device's GEMM span(s) with *zero* compute SMs
    /// occupied — wave-boundary / signal-stall idle on the compute side.
    pub gemm_idle_ns: u64,
}

/// Integrates the step function of each device's occupancy samples over
/// `[0, run_ns]`.
pub fn occupancy_stats(
    record: &TelemetryRecord,
    spans: &[OpSpan],
    run_ns: u64,
) -> Vec<OccupancyStats> {
    let mut devices: Vec<DeviceId> = record.occupancy.iter().map(|s| s.device).collect();
    devices.sort_unstable();
    devices.dedup();
    devices
        .into_iter()
        .map(|device| {
            let mut samples: Vec<(u64, u32, u32)> = record
                .occupancy
                .iter()
                .filter(|s| s.device == device)
                .map(|s| ((s.at - SimTime::ZERO).as_nanos(), s.compute_sms, s.comm_sms))
                .collect();
            samples.sort_by_key(|&(at, _, _)| at);
            // Step-function integral: occupancy is 0 before the first
            // sample and holds each sample's value until the next.
            let mut compute_area = 0f64;
            let mut comm_area = 0f64;
            let mut peak_compute = 0u32;
            let mut peak_comm = 0u32;
            let gemm_intervals: Vec<(u64, u64)> = spans
                .iter()
                .filter(|s| s.device == device && s.name == "gemm")
                .map(|s| {
                    (
                        (s.start - SimTime::ZERO).as_nanos(),
                        (s.end - SimTime::ZERO).as_nanos(),
                    )
                })
                .collect();
            let mut gemm_busy_ns = 0u64;
            for (i, &(at, compute, comm)) in samples.iter().enumerate() {
                let until = samples.get(i + 1).map_or(run_ns, |&(next, _, _)| next);
                let dt = until.saturating_sub(at);
                compute_area += compute as f64 * dt as f64;
                comm_area += comm as f64 * dt as f64;
                peak_compute = peak_compute.max(compute);
                peak_comm = peak_comm.max(comm);
                if compute > 0 {
                    // Overlap of [at, until) with the GEMM spans.
                    for &(g0, g1) in &gemm_intervals {
                        let lo = at.max(g0);
                        let hi = until.min(g1);
                        gemm_busy_ns += hi.saturating_sub(lo);
                    }
                }
            }
            let gemm_total_ns: u64 = gemm_intervals.iter().map(|&(a, b)| b - a).sum();
            OccupancyStats {
                device,
                mean_compute_sms: if run_ns > 0 {
                    compute_area / run_ns as f64
                } else {
                    0.0
                },
                mean_comm_sms: if run_ns > 0 {
                    comm_area / run_ns as f64
                } else {
                    0.0
                },
                peak_compute_sms: peak_compute,
                peak_comm_sms: peak_comm,
                gemm_idle_ns: gemm_total_ns.saturating_sub(gemm_busy_ns),
            }
        })
        .collect()
}

/// Tail-latency percentiles over a set of span durations, in
/// nanoseconds. Produced by [`percentiles`]; consumed by the serving
/// layer's SLO accounting (`serving::ServeReport`) and usable over any
/// span population (request latencies, signal latencies, link busy
/// intervals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median (50th percentile).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Nearest-rank percentile of `sorted` (ascending): the smallest sample
/// whose cumulative rank reaches `q * n`. Returns `None` on an empty
/// slice. `q` is clamped to `[0, 1]`.
pub fn percentile(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    // Nearest-rank: rank = ceil(q * n), 1-based; clamp keeps the index
    // in range for q = 0 and q = 1.
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sorted.get(rank.max(1) - 1).copied()
}

/// p50/p95/p99 over `samples` (any order; sorted internally). Returns
/// `None` when there are no samples — an empty population has no tail.
pub fn percentiles(samples: &[u64]) -> Option<Percentiles> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    Some(Percentiles {
        p50: percentile(&sorted, 0.50)?,
        p95: percentile(&sorted, 0.95)?,
        p99: percentile(&sorted, 0.99)?,
    })
}

/// Overlap efficiency of a measured latency against the non-overlap
/// reference and the perfect-overlap bound (§6.3):
/// `(base − measured) / (base − theory)`, clamped to `[0, 1]`.
///
/// Returns `None` when the bound leaves no room to overlap
/// (`base <= theory`), where the ratio is undefined.
pub fn overlap_efficiency(
    measured: SimDuration,
    base: SimDuration,
    theory: SimDuration,
) -> Option<f64> {
    let base_ns = base.as_nanos() as f64;
    let theory_ns = theory.as_nanos() as f64;
    let measured_ns = measured.as_nanos() as f64;
    let room = base_ns - theory_ns;
    if room <= 0.0 {
        return None;
    }
    Some(((base_ns - measured_ns) / room).clamp(0.0, 1.0))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::record::{IncrementEvent, WaitSatisfied};
    use gpu_sim::monitor::LinkTransfer;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn efficiency_clamps_to_unit_interval() {
        let d = SimDuration::from_nanos;
        assert_eq!(overlap_efficiency(d(100), d(100), d(50)), Some(0.0));
        assert_eq!(overlap_efficiency(d(50), d(100), d(50)), Some(1.0));
        assert_eq!(overlap_efficiency(d(75), d(100), d(50)), Some(0.5));
        // Faster than theory still reports 1, slower than base reports 0.
        assert_eq!(overlap_efficiency(d(10), d(100), d(50)), Some(1.0));
        assert_eq!(overlap_efficiency(d(200), d(100), d(50)), Some(0.0));
        // No room to overlap.
        assert_eq!(overlap_efficiency(d(100), d(50), d(50)), None);
    }

    #[test]
    fn signal_samples_join_increments_waits_and_collectives() {
        let mut record = TelemetryRecord::default();
        record.increments.push(IncrementEvent {
            at: t(100),
            device: 0,
            stream: 0,
            table: 0,
            group: 0,
            by: 1,
        });
        record.increments.push(IncrementEvent {
            at: t(200),
            device: 0,
            stream: 0,
            table: 0,
            group: 0,
            by: 1,
        });
        record.satisfied.push(WaitSatisfied {
            at: t(250),
            device: 0,
            stream: 1,
            table: 0,
            group: 0,
            threshold: 2,
        });
        let spans = vec![OpSpan {
            device: 0,
            stream: 1,
            name: "collective",
            meta: SpanMeta::Collective {
                bytes: 64,
                group: Some(0),
            },
            start: t(300),
            end: t(900),
        }];
        let summary = signal_summary(&record, &spans).unwrap();
        assert_eq!(summary.samples.len(), 1);
        let s = summary.samples[0];
        assert_eq!(s.increment_to_release_ns, 50, "joins the *last* increment");
        assert_eq!(s.release_to_collective_ns, 50);
        assert_eq!(s.total_ns, 100);
        assert_eq!(summary.max_total_ns, 100);
    }

    #[test]
    fn no_waits_means_no_signal_summary() {
        assert!(signal_summary(&TelemetryRecord::default(), &[]).is_none());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        // 1..=100: nearest-rank pXX of a 100-sample population is
        // exactly the XXth value.
        let samples: Vec<u64> = (1..=100).collect();
        let p = percentiles(&samples).unwrap();
        assert_eq!((p.p50, p.p95, p.p99), (50, 95, 99));
        // Order must not matter.
        let mut reversed = samples.clone();
        reversed.reverse();
        assert_eq!(percentiles(&reversed).unwrap(), p);
    }

    #[test]
    fn percentiles_of_small_populations() {
        assert!(percentiles(&[]).is_none());
        let p = percentiles(&[42]).unwrap();
        assert_eq!((p.p50, p.p95, p.p99), (42, 42, 42));
        // Two samples: p50 is the first (rank ceil(0.5*2)=1), the tail
        // percentiles take the second.
        let p = percentiles(&[10, 20]).unwrap();
        assert_eq!((p.p50, p.p95, p.p99), (10, 20, 20));
    }

    #[test]
    fn percentile_clamps_q() {
        let sorted = [1u64, 2, 3];
        assert_eq!(percentile(&sorted, -1.0), Some(1));
        assert_eq!(percentile(&sorted, 0.0), Some(1));
        assert_eq!(percentile(&sorted, 1.0), Some(3));
        assert_eq!(percentile(&sorted, 2.0), Some(3));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentiles_of_all_equal_samples_collapse() {
        // A constant population has a flat distribution: every
        // percentile, including the extremes, is that constant.
        let samples = [7u64; 16];
        let p = percentiles(&samples).unwrap();
        assert_eq!((p.p50, p.p95, p.p99), (7, 7, 7));
        assert_eq!(percentile(&samples, 0.0), Some(7));
        assert_eq!(percentile(&samples, 1.0), Some(7));
    }

    #[test]
    fn percentile_nearest_rank_at_quantile_boundaries() {
        // Four samples: the rank boundary sits exactly on a sample at
        // q = k/4. Nearest-rank must pick that sample at the boundary
        // and step to the next one just past it (no interpolation
        // between samples).
        let sorted = [10u64, 20, 30, 40];
        assert_eq!(percentile(&sorted, 0.25), Some(10));
        assert_eq!(percentile(&sorted, 0.25 + 1e-9), Some(20));
        assert_eq!(percentile(&sorted, 0.50), Some(20));
        assert_eq!(percentile(&sorted, 0.50 + 1e-9), Some(30));
        assert_eq!(percentile(&sorted, 0.75), Some(30));
        assert_eq!(percentile(&sorted, 0.75 + 1e-9), Some(40));
        // An infinitesimal q still lands on the first sample, and the
        // top boundary stays clamped to the last.
        assert_eq!(percentile(&sorted, 1e-12), Some(10));
        assert_eq!(percentile(&sorted, 1.0 - 1e-12), Some(40));
    }

    #[test]
    fn efficiency_degenerate_measurements_stay_in_bounds() {
        // Zero-duration measurements clamp to a perfect 1.0 (callers
        // that know the span data is degenerate withhold the value; see
        // `profile::MethodMetrics::degenerate`), and a zero-room bound
        // is undefined.
        let z = SimDuration::ZERO;
        let base = SimDuration::from_micros(10);
        let theory = SimDuration::from_micros(4);
        assert_eq!(overlap_efficiency(z, base, theory), Some(1.0));
        assert_eq!(overlap_efficiency(z, z, z), None);
    }

    #[test]
    fn link_stats_union_overlapping_intervals() {
        let mut record = TelemetryRecord::default();
        for (start, end, bytes) in [(0u64, 100u64, 100u64), (50, 150, 100), (300, 400, 50)] {
            record.transfers.push(LinkTransfer {
                src: 0,
                dst: 1,
                bytes,
                start: t(start),
                end: t(end),
            });
        }
        let stats = link_stats(&record, &LinkPeaks::uniform(Some(2.0)));
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].bytes, 250);
        assert_eq!(stats[0].busy_ns, 250, "overlap counted once");
        assert!((stats[0].achieved_gbps - 1.0).abs() < 1e-12);
        assert!((stats[0].utilization.unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(stats[0].tier, "intra", "uniform fabric is all intra");
    }

    #[test]
    fn link_stats_score_each_tier_against_its_own_peak() {
        let mut record = TelemetryRecord::default();
        // d0->d1 stays on node 0; d1->d2 crosses to node 1. Both carry
        // 100 bytes over 100 ns: 1 GB/s achieved.
        for (src, dst) in [(0, 1), (1, 2)] {
            record.transfers.push(LinkTransfer {
                src,
                dst,
                bytes: 100,
                start: t(0),
                end: t(100),
            });
        }
        let peaks = LinkPeaks::two_tier(vec![0, 0, 1, 1], Some(4.0), Some(2.0));
        let stats = link_stats(&record, &peaks);
        assert_eq!(stats.len(), 2);
        let intra = stats.iter().find(|l| (l.src, l.dst) == (0, 1)).unwrap();
        let inter = stats.iter().find(|l| (l.src, l.dst) == (1, 2)).unwrap();
        assert_eq!((intra.tier, inter.tier), ("intra", "inter"));
        // Same achieved bandwidth, different denominators: the inter
        // link is twice as utilized relative to its slower fabric.
        assert!((intra.utilization.unwrap() - 0.25).abs() < 1e-12);
        assert!((inter.utilization.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stream_stats_split_busy_and_wait() {
        let spans = vec![
            OpSpan {
                device: 0,
                stream: 0,
                name: "gemm",
                meta: SpanMeta::None,
                start: t(0),
                end: t(600),
            },
            OpSpan {
                device: 0,
                stream: 1,
                name: "wait_counter",
                meta: SpanMeta::None,
                start: t(0),
                end: t(400),
            },
            OpSpan {
                device: 0,
                stream: 1,
                name: "collective",
                meta: SpanMeta::None,
                start: t(400),
                end: t(1000),
            },
        ];
        let stats = stream_stats(&spans, 1000);
        assert_eq!(stats.len(), 2);
        assert_eq!((stats[0].busy_ns, stats[0].wait_ns), (600, 0));
        assert_eq!((stats[1].busy_ns, stats[1].wait_ns), (600, 400));
        assert!((stats[1].busy_frac - 0.6).abs() < 1e-12);
    }
}
