//! Critical-path latency attribution: buckets every nanosecond of a
//! run's makespan into exclusive categories.
//!
//! The attribution walks the happens-before graph *backwards* from the
//! last-finishing operation. At every step the walker sits at a cursor
//! time on some (device, stream) and asks "what was the run waiting on
//! just before this instant?":
//!
//! - an ordinary kernel span charges its own category ([`Category`] is
//!   derived from the span name) and hands the cursor to the previous
//!   op on the same stream;
//! - a `wait_counter` span charges [`Category::SignalWait`] only for
//!   the time after the *releasing increment* (joined through the
//!   [`crate::record::IncrementEvent`] → [`crate::record::WaitSatisfied`]
//!   edge), then hops to the incrementing stream — the compute stream
//!   that actually gated progress;
//! - a `wait_event` span hops through the recorded GPU event to the
//!   recording stream; any residue (poll quantum, rearm chain) charges
//!   [`Category::RearmStall`];
//! - gaps with no predecessor charge [`Category::Idle`].
//!
//! Because consecutive emissions tile `[0, makespan]` without overlap,
//! the per-category totals sum *exactly* to the makespan — the
//! sum-to-makespan identity CI asserts ([`Attribution::identity_holds`]).

use gpu_sim::{DeviceId, OpSpan, StreamId};
use sim::SimTime;

use crate::json::Value;
use crate::record::TelemetryRecord;

/// Exclusive time categories of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// GEMM waves and other compute kernels.
    GemmCompute,
    /// Overlapped collective / peer-copy transfer time.
    CollectiveTransfer,
    /// Communication stream blocked on a counting-table threshold
    /// (includes the signal poll quantum).
    SignalWait,
    /// Inter-stream event waits and counter rearm chains between
    /// batches of a pipelined sequence.
    RearmStall,
    /// Plan search / tuning time (zero in simulated time: the tuner is
    /// analytic; serving reports tune *counts* alongside).
    Tuner,
    /// Fault recovery: watchdog-relaunched tail and bulk collectives.
    Recovery,
    /// A formed batch sat queued behind a busy replica.
    QueueWait,
    /// Nothing runnable (launch skew, drained queue, trailing gap).
    Idle,
}

impl Category {
    /// Every category, in report order.
    pub const ALL: [Category; 8] = [
        Category::GemmCompute,
        Category::CollectiveTransfer,
        Category::SignalWait,
        Category::RearmStall,
        Category::Tuner,
        Category::Recovery,
        Category::QueueWait,
        Category::Idle,
    ];

    /// Human-readable label (Perfetto slice names, summaries).
    pub fn label(self) -> &'static str {
        match self {
            Category::GemmCompute => "gemm-compute",
            Category::CollectiveTransfer => "collective-transfer",
            Category::SignalWait => "signal-wait",
            Category::RearmStall => "rearm-stall",
            Category::Tuner => "tuner",
            Category::Recovery => "recovery",
            Category::QueueWait => "queue-wait",
            Category::Idle => "idle",
        }
    }

    /// JSON object key.
    pub fn key(self) -> &'static str {
        match self {
            Category::GemmCompute => "gemm_compute",
            Category::CollectiveTransfer => "collective_transfer",
            Category::SignalWait => "signal_wait",
            Category::RearmStall => "rearm_stall",
            Category::Tuner => "tuner",
            Category::Recovery => "recovery",
            Category::QueueWait => "queue_wait",
            Category::Idle => "idle",
        }
    }

    fn index(self) -> usize {
        match self {
            Category::GemmCompute => 0,
            Category::CollectiveTransfer => 1,
            Category::SignalWait => 2,
            Category::RearmStall => 3,
            Category::Tuner => 4,
            Category::Recovery => 5,
            Category::QueueWait => 6,
            Category::Idle => 7,
        }
    }

    /// The category an op span charges when it sits on the critical
    /// path, from its kernel name.
    pub fn of_span(name: &str) -> Category {
        match name {
            "gemm" | "elementwise" | "kernel" => Category::GemmCompute,
            "collective" | "p2p_copy" => Category::CollectiveTransfer,
            "tail-collective" | "bulk-collective" => Category::Recovery,
            "wait_counter" => Category::SignalWait,
            "wait_event" | "record_event" | "reset_counter" => Category::RearmStall,
            _ => Category::Idle,
        }
    }
}

/// One contiguous critical-path interval charged to a single category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Interval start (ns since run start).
    pub start_ns: u64,
    /// Interval end (exclusive, ns since run start).
    pub end_ns: u64,
    /// What the interval is charged to.
    pub category: Category,
    /// Device the critical path ran on (`None` for gaps).
    pub device: Option<DeviceId>,
    /// Stream the critical path ran on (`None` for gaps).
    pub stream: Option<StreamId>,
    /// Kernel name of the charged op (empty for gaps).
    pub op: &'static str,
}

impl Segment {
    /// Interval length in nanoseconds.
    pub fn len_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Per-category nanosecond totals. Summable across batches/chains.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AttributionTotals {
    ns: [u64; Category::ALL.len()],
}

impl AttributionTotals {
    /// Charges `ns` nanoseconds to `category`.
    pub fn add(&mut self, category: Category, ns: u64) {
        self.ns[category.index()] += ns;
    }

    /// Accumulates another totals vector into this one.
    pub fn merge(&mut self, other: &AttributionTotals) {
        for (a, b) in self.ns.iter_mut().zip(other.ns.iter()) {
            *a += b;
        }
    }

    /// Nanoseconds charged to `category`.
    pub fn get(&self, category: Category) -> u64 {
        self.ns[category.index()]
    }

    /// Total nanoseconds across every category.
    pub fn sum(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// `{"<category>_ns": u64, ...}` in [`Category::ALL`] order.
    pub fn to_json(&self) -> Value {
        Value::Obj(
            Category::ALL
                .iter()
                .map(|c| (format!("{}_ns", c.key()), Value::num(self.get(*c) as f64)))
                .collect(),
        )
    }

    /// `{"<category>": share, ...}` of `makespan_ns`, each in `[0, 1]`
    /// (all zero when the makespan is zero).
    pub fn shares_json(&self, makespan_ns: u64) -> Value {
        Value::Obj(
            Category::ALL
                .iter()
                .map(|c| {
                    let share = if makespan_ns == 0 {
                        0.0
                    } else {
                        self.get(*c) as f64 / makespan_ns as f64
                    };
                    (c.key().to_owned(), Value::num(share))
                })
                .collect(),
        )
    }
}

/// The critical path of one run, tiled into exclusive [`Segment`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    /// End-to-end makespan being attributed (ns).
    pub makespan_ns: u64,
    /// Chronological critical-path segments; consecutive segments abut
    /// and together tile `[0, makespan_ns]`.
    pub segments: Vec<Segment>,
    /// Per-category totals over the segments.
    pub totals: AttributionTotals,
}

impl Attribution {
    /// Nanoseconds charged to `category`.
    pub fn total_ns(&self, category: Category) -> u64 {
        self.totals.get(category)
    }

    /// Fraction of the makespan charged to `category`.
    pub fn share(&self, category: Category) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.total_ns(category) as f64 / self.makespan_ns as f64
        }
    }

    /// The sum-to-makespan identity: category totals account for every
    /// nanosecond of the makespan, exactly.
    pub fn identity_holds(&self) -> bool {
        self.totals.sum() == self.makespan_ns
    }

    /// Clips the segments to the window `[lo_ns, hi_ns)` and returns
    /// the totals of the intersection — the per-batch attribution of a
    /// chain whose batch occupied that window. The clipped totals sum
    /// to `hi_ns - lo_ns` whenever the window lies inside the makespan.
    pub fn clip_window(&self, lo_ns: u64, hi_ns: u64) -> AttributionTotals {
        let mut totals = AttributionTotals::default();
        for seg in &self.segments {
            let lo = seg.start_ns.max(lo_ns);
            let hi = seg.end_ns.min(hi_ns);
            if hi > lo {
                totals.add(seg.category, hi - lo);
            }
        }
        totals
    }

    /// Full JSON form: makespan, identity, totals, shares, and the
    /// chronological critical-path segments.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("makespan_ns", Value::num(self.makespan_ns as f64)),
            ("identity_holds", Value::Bool(self.identity_holds())),
            ("categories", self.totals.to_json()),
            ("shares", self.totals.shares_json(self.makespan_ns)),
            (
                "critical_path",
                Value::Arr(
                    self.segments
                        .iter()
                        .map(|s| {
                            Value::obj(vec![
                                ("start_ns", Value::num(s.start_ns as f64)),
                                ("end_ns", Value::num(s.end_ns as f64)),
                                ("category", Value::str(s.category.label())),
                                (
                                    "device",
                                    s.device.map_or(Value::Null, |d| Value::num(d as f64)),
                                ),
                                (
                                    "stream",
                                    s.stream.map_or(Value::Null, |s| Value::num(s as f64)),
                                ),
                                ("op", Value::str(s.op)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// One-line human summary: `category share%` pairs for the
    /// non-empty categories.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for c in Category::ALL {
            let ns = self.total_ns(c);
            if ns > 0 {
                parts.push(format!("{} {:.1}%", c.label(), self.share(c) * 100.0));
            }
        }
        if parts.is_empty() {
            "empty".to_owned()
        } else {
            parts.join(", ")
        }
    }
}

/// A span reduced to nanosecond bounds for the walk.
#[derive(Debug, Clone, Copy)]
struct Node {
    device: DeviceId,
    stream: StreamId,
    name: &'static str,
    start: u64,
    end: u64,
}

fn ns(t: SimTime) -> u64 {
    t.as_nanos()
}

/// Attributes a run whose makespan is the last span end.
pub fn attribute(spans: &[OpSpan], record: &TelemetryRecord) -> Attribution {
    let makespan = spans.iter().map(|s| ns(s.end)).max().unwrap_or(0);
    attribute_makespan(spans, record, makespan)
}

/// Attributes a run against an explicit makespan (e.g. a chain's total
/// latency when the caller pads the timeline); time past the last span
/// charges [`Category::Idle`].
pub fn attribute_makespan(
    spans: &[OpSpan],
    record: &TelemetryRecord,
    makespan_ns: u64,
) -> Attribution {
    // Zero-length ops (callbacks, counter resets, immediate event
    // records) occupy no stream time and only stall the walk; the
    // record-event edges they represent are joined through
    // `record.gpu_events` instead.
    let nodes: Vec<Node> = spans
        .iter()
        .filter(|s| s.end > s.start && s.name != "callback")
        .map(|s| Node {
            device: s.device,
            stream: s.stream,
            name: s.name,
            start: ns(s.start),
            end: ns(s.end),
        })
        .collect();

    let mut segments: Vec<Segment> = Vec::new();
    let mut totals = AttributionTotals::default();
    let push = |segments: &mut Vec<Segment>,
                totals: &mut AttributionTotals,
                start: u64,
                end: u64,
                category: Category,
                node: Option<&Node>| {
        if end > start {
            totals.add(category, end - start);
            segments.push(Segment {
                start_ns: start,
                end_ns: end,
                category,
                device: node.map(|n| n.device),
                stream: node.map(|n| n.stream),
                op: node.map_or("", |n| n.name),
            });
        }
    };

    // Latest node on (device, stream) fully before the cursor.
    let pred = |device: DeviceId, stream: StreamId, cursor: u64| -> Option<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.device == device && n.stream == stream && n.end <= cursor && n.start < cursor
            })
            .max_by_key(|(i, n)| (n.end, n.start, *i))
            .map(|(i, _)| i)
    };
    // Node on (device, stream) containing `t`, else the latest before it.
    let containing = |device: DeviceId, stream: StreamId, t: u64| -> Option<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.device == device && n.stream == stream && n.start <= t && t < n.end)
            .max_by_key(|(i, n)| (n.start, *i))
            .map(|(i, _)| i)
            .or_else(|| pred(device, stream, t))
    };

    let mut cursor = makespan_ns;
    // Start from the globally last-finishing op at or before the makespan.
    let mut cur = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.end <= cursor && n.start < cursor)
        .max_by_key(|(i, n)| (n.end, std::cmp::Reverse(n.device), n.start, *i))
        .map(|(i, _)| i);

    let guard = nodes.len() * 4 + 16;
    while cursor > 0 {
        let Some(idx) = cur else {
            push(&mut segments, &mut totals, 0, cursor, Category::Idle, None);
            break;
        };
        if segments.len() > guard {
            push(&mut segments, &mut totals, 0, cursor, Category::Idle, None);
            break;
        }
        let node = nodes[idx];
        if node.end < cursor {
            push(
                &mut segments,
                &mut totals,
                node.end,
                cursor,
                Category::Idle,
                None,
            );
            cursor = node.end;
        }
        match node.name {
            "wait_counter" => {
                // Join the wait to its releasing increment: the latest
                // WaitSatisfied on this stream inside the span, then the
                // latest increment on that (device, table, group) at or
                // before the release.
                let release = record
                    .satisfied
                    .iter()
                    .filter(|w| {
                        w.device == node.device
                            && w.stream == node.stream
                            && ns(w.at) >= node.start
                            && ns(w.at) <= cursor
                    })
                    .max_by_key(|w| w.at);
                let inc = release.and_then(|rel| {
                    record
                        .increments
                        .iter()
                        .filter(|i| {
                            i.device == rel.device
                                && i.table == rel.table
                                && i.group == rel.group
                                && i.at <= rel.at
                        })
                        .max_by_key(|i| i.at)
                });
                match inc {
                    Some(inc) if ns(inc.at) >= node.start => {
                        // Parked wait: the stream stalled from the
                        // releasing increment to the (polled) release.
                        let hop = ns(inc.at).min(cursor);
                        push(
                            &mut segments,
                            &mut totals,
                            hop,
                            cursor,
                            Category::SignalWait,
                            Some(&node),
                        );
                        cursor = hop;
                        cur = containing(inc.device, inc.stream, cursor);
                    }
                    _ => {
                        // Pre-satisfied at registration (or no record):
                        // only the poll quantum is on the path.
                        push(
                            &mut segments,
                            &mut totals,
                            node.start,
                            cursor,
                            Category::SignalWait,
                            Some(&node),
                        );
                        cursor = node.start;
                        cur = pred(node.device, node.stream, cursor);
                    }
                }
            }
            "wait_event" => {
                // Join through the GPU event to the recording stream.
                let wait = record
                    .gpu_events
                    .iter()
                    .filter(|(at, d, s, _, is_wait)| {
                        *is_wait
                            && *d == node.device
                            && *s == node.stream
                            && ns(*at) >= node.start
                            && ns(*at) <= cursor
                    })
                    .max_by_key(|(at, _, _, _, _)| *at);
                let rec = wait.and_then(|(wat, _, _, ev, _)| {
                    record
                        .gpu_events
                        .iter()
                        .filter(|(at, _, _, e, is_wait)| !*is_wait && e == ev && at <= wat)
                        .max_by_key(|(at, _, _, _, _)| *at)
                });
                match rec {
                    Some((rat, rd, rs, _, _)) if ns(*rat) <= cursor => {
                        // The recording stream gated progress; anything
                        // after the record is rearm machinery.
                        let hop = ns(*rat);
                        push(
                            &mut segments,
                            &mut totals,
                            hop,
                            cursor,
                            Category::RearmStall,
                            Some(&node),
                        );
                        cursor = hop;
                        cur = containing(*rd, *rs, cursor);
                    }
                    _ => {
                        push(
                            &mut segments,
                            &mut totals,
                            node.start,
                            cursor,
                            Category::RearmStall,
                            Some(&node),
                        );
                        cursor = node.start;
                        cur = pred(node.device, node.stream, cursor);
                    }
                }
            }
            _ => {
                let start = node.start.min(cursor);
                push(
                    &mut segments,
                    &mut totals,
                    start,
                    cursor,
                    Category::of_span(node.name),
                    Some(&node),
                );
                cursor = start;
                cur = pred(node.device, node.stream, cursor);
            }
        }
    }

    segments.reverse();
    Attribution {
        makespan_ns,
        segments,
        totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{IncrementEvent, WaitSatisfied};
    use gpu_sim::cluster::SpanMeta;

    fn span(
        device: DeviceId,
        stream: StreamId,
        name: &'static str,
        start: u64,
        end: u64,
    ) -> OpSpan {
        OpSpan {
            device,
            stream,
            name,
            meta: SpanMeta::None,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    fn inc(device: DeviceId, stream: StreamId, group: usize, at: u64) -> IncrementEvent {
        IncrementEvent {
            at: SimTime::from_nanos(at),
            device,
            stream,
            table: 0,
            group,
            by: 1,
        }
    }

    fn sat(device: DeviceId, stream: StreamId, group: usize, at: u64) -> WaitSatisfied {
        WaitSatisfied {
            at: SimTime::from_nanos(at),
            device,
            stream,
            table: 0,
            group,
            threshold: 1,
        }
    }

    #[test]
    fn empty_run_is_all_idle() {
        let a = attribute_makespan(&[], &TelemetryRecord::default(), 100);
        assert_eq!(a.total_ns(Category::Idle), 100);
        assert!(a.identity_holds());
        let b = attribute(&[], &TelemetryRecord::default());
        assert_eq!(b.makespan_ns, 0);
        assert!(b.identity_holds());
    }

    #[test]
    fn single_group_overlap_decomposes() {
        // Compute stream 0: gemm [0, 100]; epilogue increments group 0
        // at 100. Comm stream 1: wait parked [0, 102] (2 ns poll), then
        // the collective [102, 142].
        let spans = vec![
            span(0, 0, "gemm", 0, 100),
            span(0, 1, "wait_counter", 0, 102),
            span(0, 1, "collective", 102, 142),
        ];
        let record = TelemetryRecord {
            increments: vec![inc(0, 0, 0, 100)],
            satisfied: vec![sat(0, 1, 0, 100)],
            ..TelemetryRecord::default()
        };
        let a = attribute(&spans, &record);
        assert_eq!(a.makespan_ns, 142);
        assert!(a.identity_holds(), "{a:?}");
        assert_eq!(a.total_ns(Category::GemmCompute), 100);
        assert_eq!(a.total_ns(Category::SignalWait), 2);
        assert_eq!(a.total_ns(Category::CollectiveTransfer), 40);
        assert_eq!(a.total_ns(Category::Idle), 0);
        // Chronological and abutting.
        assert_eq!(a.segments[0].category, Category::GemmCompute);
        assert_eq!(a.segments.last().unwrap().end_ns, 142);
        for w in a.segments.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns);
        }
    }

    #[test]
    fn comm_bound_tail_charges_signal_wait_per_group() {
        // Two groups: group 0 releases at 50, group 1 at 100; each
        // collective takes 60 ns, so the second wait parks on the busy
        // comm stream history, not the increment. Collective 1 starts
        // only when both its signal (100) and the stream (first
        // collective until 112) allow.
        let spans = vec![
            span(0, 0, "gemm", 0, 100),
            span(0, 1, "wait_counter", 0, 52),
            span(0, 1, "collective", 52, 112),
            span(0, 1, "wait_counter", 112, 114),
            span(0, 1, "collective", 114, 174),
        ];
        let record = TelemetryRecord {
            increments: vec![inc(0, 0, 0, 50), inc(0, 0, 1, 100)],
            satisfied: vec![sat(0, 1, 0, 50), sat(0, 1, 1, 112)],
            ..TelemetryRecord::default()
        };
        let a = attribute(&spans, &record);
        assert!(a.identity_holds(), "{a:?}");
        // Backward: collective [114,174] <- wait released while parked?
        // The wait's releasing increment (group 1 @ 100) is before the
        // wait span start (112), so it is pre-satisfied: only the poll
        // quantum [112,114] charges signal-wait, then the first
        // collective, its wait, and the gemm prefix.
        assert_eq!(a.total_ns(Category::CollectiveTransfer), 120);
        assert_eq!(a.total_ns(Category::SignalWait), 4);
        assert_eq!(a.total_ns(Category::GemmCompute), 50);
        assert_eq!(a.makespan_ns, 174);
    }

    #[test]
    fn parked_wait_hops_to_compute_stream() {
        // The wait parks until the increment at 90; the critical path
        // must route through the gemm, not the idle comm stream.
        let spans = vec![
            span(0, 0, "gemm", 10, 90),
            span(0, 1, "wait_counter", 0, 92),
            span(0, 1, "collective", 92, 100),
        ];
        let record = TelemetryRecord {
            increments: vec![inc(0, 0, 0, 90)],
            satisfied: vec![sat(0, 1, 0, 90)],
            ..TelemetryRecord::default()
        };
        let a = attribute(&spans, &record);
        assert!(a.identity_holds(), "{a:?}");
        assert_eq!(a.total_ns(Category::SignalWait), 2);
        assert_eq!(a.total_ns(Category::GemmCompute), 80);
        assert_eq!(a.total_ns(Category::CollectiveTransfer), 8);
        // Launch-skew gap before the gemm is idle.
        assert_eq!(a.total_ns(Category::Idle), 10);
        assert_eq!(a.segments[0].category, Category::Idle);
    }

    #[test]
    fn recovery_collectives_charge_recovery() {
        let spans = vec![
            span(0, 0, "gemm", 0, 50),
            span(0, 0, "tail-collective", 50, 80),
        ];
        let a = attribute(&spans, &TelemetryRecord::default());
        assert!(a.identity_holds());
        assert_eq!(a.total_ns(Category::Recovery), 30);
        assert_eq!(a.total_ns(Category::GemmCompute), 50);
    }

    #[test]
    fn explicit_makespan_pads_with_idle() {
        let spans = vec![span(0, 0, "gemm", 0, 40)];
        let a = attribute_makespan(&spans, &TelemetryRecord::default(), 100);
        assert!(a.identity_holds());
        assert_eq!(a.total_ns(Category::GemmCompute), 40);
        assert_eq!(a.total_ns(Category::Idle), 60);
        assert_eq!(a.segments.last().unwrap().category, Category::Idle);
    }

    #[test]
    fn wait_event_hops_to_recording_stream() {
        // Rearm edge: compute stream records event 7 at 60; comm stream
        // waits [50, 60] for it, then runs the next collective.
        let spans = vec![
            span(0, 0, "gemm", 0, 60),
            span(0, 1, "wait_event", 50, 60),
            span(0, 1, "collective", 60, 90),
        ];
        let record = TelemetryRecord {
            gpu_events: vec![
                (SimTime::from_nanos(60), 0, 0, 7, false),
                (SimTime::from_nanos(60), 0, 1, 7, true),
            ],
            ..TelemetryRecord::default()
        };
        let a = attribute(&spans, &record);
        assert!(a.identity_holds(), "{a:?}");
        // The record lands exactly at the wait end: zero rearm residue,
        // path continues through the recording (compute) stream.
        assert_eq!(a.total_ns(Category::GemmCompute), 60);
        assert_eq!(a.total_ns(Category::CollectiveTransfer), 30);
        assert_eq!(a.total_ns(Category::RearmStall), 0);
    }

    #[test]
    fn clip_window_partitions_chain_totals() {
        let spans = vec![
            span(0, 0, "gemm", 0, 100),
            span(0, 1, "wait_counter", 0, 102),
            span(0, 1, "collective", 102, 142),
        ];
        let record = TelemetryRecord {
            increments: vec![inc(0, 0, 0, 100)],
            satisfied: vec![sat(0, 1, 0, 100)],
            ..TelemetryRecord::default()
        };
        let a = attribute(&spans, &record);
        let head = a.clip_window(0, 101);
        let tail = a.clip_window(101, 142);
        assert_eq!(head.sum(), 101);
        assert_eq!(tail.sum(), 41);
        let mut merged = head;
        merged.merge(&tail);
        assert_eq!(merged.sum(), a.makespan_ns);
        assert_eq!(merged.get(Category::GemmCompute), 100);
    }

    #[test]
    fn shares_and_json_shape() {
        let spans = vec![span(0, 0, "gemm", 0, 50)];
        let a = attribute_makespan(&spans, &TelemetryRecord::default(), 100);
        assert!((a.share(Category::GemmCompute) - 0.5).abs() < 1e-12);
        let json = a.to_json();
        assert_eq!(json.get("makespan_ns").and_then(Value::as_f64), Some(100.0));
        assert_eq!(
            json.get("identity_holds").and_then(Value::as_bool),
            Some(true)
        );
        let cats = json.get("categories").unwrap();
        assert_eq!(
            cats.get("gemm_compute_ns").and_then(Value::as_f64),
            Some(50.0)
        );
        let shares = json.get("shares").unwrap();
        for c in Category::ALL {
            let v = shares.get(c.key()).and_then(Value::as_f64).unwrap();
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(
            json.get("critical_path")
                .and_then(Value::as_arr)
                .map(|a| a.len()),
            Some(2)
        );
        assert!(a.summary().contains("gemm-compute"));
    }
}
