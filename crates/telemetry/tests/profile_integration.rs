//! End-to-end profiling tests: run the full method sweep on a fixed
//! workload and validate the derived report and exported trace.

use flashoverlap::runtime::CommPattern;
use flashoverlap::SystemSpec;
use gpu_sim::gemm::GemmDims;
use telemetry::json::{self, Value};
use telemetry::profile::profile;

fn nvlink_profile() -> telemetry::Profile {
    let dims = GemmDims::new(2048, 4096, 4096);
    let system = SystemSpec::a800(2);
    profile(dims, &CommPattern::AllReduce, &system).expect("profile run")
}

#[test]
fn report_covers_every_method_with_unit_interval_efficiency() {
    let p = nvlink_profile();
    assert_eq!(p.report.methods.len(), 5);
    // On NVLink AllReduce every method applies; every one must yield a
    // latency and an overlap efficiency inside [0, 1].
    for m in &p.report.methods {
        assert!(m.applicable, "{} inapplicable on NVLink AllReduce", m.name);
        assert_eq!(m.error, None, "{} failed", m.name);
        let eff = m
            .overlap_efficiency
            .unwrap_or_else(|| panic!("{} has no efficiency", m.name));
        assert!((0.0..=1.0).contains(&eff), "{}: eff {eff}", m.name);
        assert!(m.latency_us.unwrap_or(0.0) > 0.0, "{}", m.name);
    }
    // The non-overlap reference defines efficiency zero.
    let base = &p.report.methods[0];
    assert_eq!(base.name, "Non-overlap");
    assert_eq!(base.overlap_efficiency, Some(0.0));
    // FlashOverlap must actually overlap on this balanced shape.
    let fo = p.report.methods.last().expect("methods non-empty");
    assert_eq!(fo.name, "FlashOverlap");
    assert!(fo.overlap_efficiency.expect("eff") > 0.0);
}

#[test]
fn per_stream_spans_never_overlap() {
    let p = nvlink_profile();
    let mut checked_runs = 0;
    for run in &p.methods {
        let Some(spans) = &run.spans else { continue };
        checked_runs += 1;
        let mut keys: Vec<(usize, usize)> = spans.iter().map(|s| (s.device, s.stream)).collect();
        keys.sort_unstable();
        keys.dedup();
        for (device, stream) in keys {
            let mut stream_spans: Vec<_> = spans
                .iter()
                .filter(|s| s.device == device && s.stream == stream)
                .collect();
            stream_spans.sort_by_key(|s| s.start);
            for pair in stream_spans.windows(2) {
                assert!(
                    pair[1].start >= pair[0].end,
                    "{}: overlap on dev {device} stream {stream}: {:?} vs {:?}",
                    run.method,
                    pair[0],
                    pair[1]
                );
            }
        }
    }
    assert!(checked_runs >= 4, "expected spans from every simulated run");
}

#[test]
fn signal_links_and_occupancy_are_derived() {
    let p = nvlink_profile();
    let signal = p.report.signal_latency.as_ref().expect("signal stats");
    // One sample per (rank, signaled group).
    assert!(signal.samples.len() >= 2);
    assert!(signal.samples.iter().all(|s| s.total_ns > 0));
    assert!(signal.max_total_ns >= signal.min_total_ns);
    // The ring on 2 ranks drives both directed links.
    assert_eq!(p.report.links.len(), 2);
    for l in &p.report.links {
        assert!(l.bytes > 0 && l.busy_ns > 0);
        let u = l.utilization.expect("peak bandwidth known");
        assert!(u > 0.0 && u <= 1.5, "utilization {u}");
    }
    assert_eq!(p.report.occupancy.len(), 2);
    for o in &p.report.occupancy {
        assert!(o.peak_compute_sms > 0);
        assert!(o.peak_comm_sms > 0, "collectives must occupy comm SMs");
        assert!(o.mean_compute_sms > 0.0);
    }
    assert!(!p.report.streams.is_empty());
    assert!(p.report.streams.iter().any(|s| s.busy_frac > 0.1));
}

#[test]
fn trace_has_all_devices_flows_and_counters() {
    let p = nvlink_profile();
    let text = p.trace_string().expect("flashoverlap trace");
    let doc = json::parse(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");

    let ph = |e: &Value| e.get("ph").and_then(Value::as_str).map(str::to_owned);
    // Spans for every device.
    for d in 0..2 {
        assert!(
            events.iter().any(|e| ph(e).as_deref() == Some("X")
                && e.get("pid").and_then(Value::as_f64) == Some(d as f64)),
            "no slices for device {d}"
        );
    }
    // At least one flow per signaled group, and every flow endpoint must
    // land inside (or at the start of) an existing slice on its track.
    let groups = p
        .report
        .signal_latency
        .as_ref()
        .map_or(0, |s| s.samples.len());
    let flows: Vec<&Value> = events
        .iter()
        .filter(|e| matches!(ph(e).as_deref(), Some("s" | "f")))
        .collect();
    assert!(
        flows.len() >= 2 * groups.min(1) && !flows.is_empty(),
        "expected flow events, got {}",
        flows.len()
    );
    let starts = flows
        .iter()
        .filter(|e| ph(e).as_deref() == Some("s"))
        .count();
    assert!(starts >= groups, "{starts} flow starts for {groups} groups");
    for flow in &flows {
        let pid = flow.get("pid").and_then(Value::as_f64).expect("pid");
        let tid = flow.get("tid").and_then(Value::as_f64).expect("tid");
        let ts = flow.get("ts").and_then(Value::as_f64).expect("ts");
        let enclosed = events.iter().any(|e| {
            ph(e).as_deref() == Some("X")
                && e.get("pid").and_then(Value::as_f64) == Some(pid)
                && e.get("tid").and_then(Value::as_f64) == Some(tid)
                && e.get("ts").and_then(Value::as_f64).expect("slice ts") <= ts + 1e-9
                && e.get("ts").and_then(Value::as_f64).expect("slice ts")
                    + e.get("dur").and_then(Value::as_f64).expect("slice dur")
                    >= ts - 1e-9
        });
        assert!(
            enclosed,
            "flow at ts {ts} references no slice on ({pid},{tid})"
        );
    }
    // Counter tracks for counting-table state and SM occupancy.
    assert!(events.iter().any(|e| ph(e).as_deref() == Some("C")
        && e.get("name")
            .and_then(Value::as_str)
            .is_some_and(|n| n.starts_with("counter t"))));
    assert!(events.iter().any(|e| ph(e).as_deref() == Some("C")
        && e.get("name").and_then(Value::as_str) == Some("sm occupancy")));
    assert!(events.iter().any(|e| ph(e).as_deref() == Some("C")
        && e.get("name")
            .and_then(Value::as_str)
            .is_some_and(|n| n.starts_with("link d"))));
}

/// The golden fixed-seed report: two independent profiling sessions of
/// the same AllReduce config must serialize to byte-identical JSON (the
/// simulator is deterministic), pinning the report schema and values.
#[test]
fn metrics_report_is_deterministic_golden() {
    let a = nvlink_profile().report.to_json().to_json_pretty();
    let b = nvlink_profile().report.to_json().to_json_pretty();
    assert_eq!(a, b);
    // Schema spot checks against the parsed golden document.
    let doc = json::parse(&a).expect("report JSON");
    for key in [
        "workload",
        "nonoverlap_us",
        "theory_us",
        "methods",
        "signal_latency",
        "links",
        "streams",
        "occupancy",
    ] {
        assert!(doc.get(key).is_some(), "missing {key}");
    }
    assert_eq!(
        doc.get("workload")
            .and_then(|w| w.get("pattern"))
            .and_then(Value::as_str),
        Some("AllReduce")
    );
    assert_eq!(
        doc.get("methods")
            .and_then(Value::as_arr)
            .map(<[Value]>::len),
        Some(5)
    );
}

#[test]
fn pcie_profile_marks_p2p_methods_inapplicable() {
    let dims = GemmDims::new(1024, 2048, 2048);
    let system = SystemSpec::rtx4090(2);
    let p = profile(dims, &CommPattern::AllReduce, &system).expect("profile");
    let by_name = |name: &str| {
        p.report
            .methods
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .clone()
    };
    assert!(!by_name("FLUX").applicable);
    assert!(!by_name("Async-TP").applicable);
    assert_eq!(by_name("FLUX").latency_us, None);
    assert!(by_name("FlashOverlap").applicable);
    // Inapplicable methods still appear in the serialized report.
    let doc = json::parse(&p.report.to_json().to_json()).expect("json");
    assert_eq!(
        doc.get("methods")
            .and_then(Value::as_arr)
            .map(<[Value]>::len),
        Some(5)
    );
}
