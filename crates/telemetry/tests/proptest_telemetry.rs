//! Property-based tests for the telemetry metrics and the vendored JSON
//! codec.

use proptest::prelude::*;
use sim::SimDuration;
use telemetry::json::{self, Value};
use telemetry::overlap_efficiency;

/// Characters the string generator draws from — ASCII, the JSON escape
/// set, control characters, and multi-byte UTF-8 (incl. non-BMP).
const PALETTE: [char; 12] = [
    'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '\u{1}', 'µ', '→', '😀',
];

/// Deterministically interprets a word stream as a JSON document of
/// bounded depth, covering every [`Value`] variant.
fn build_value(words: &mut std::slice::Iter<'_, u64>, depth: u32) -> Value {
    let w = *words.next().unwrap_or(&0);
    let variants = if depth == 0 { 4 } else { 6 };
    match w % variants {
        0 => Value::Null,
        1 => Value::Bool(w & 8 != 0),
        2 => {
            let x = (w as f64 / u64::MAX as f64 - 0.5) * 2e12;
            Value::Num(if w & 16 != 0 { x.trunc() } else { x })
        }
        3 => Value::Str(
            (0..w % 9)
                .map(|i| PALETTE[((w >> (4 * i)) % PALETTE.len() as u64) as usize])
                .collect(),
        ),
        4 => Value::Arr((0..w % 5).map(|_| build_value(words, depth - 1)).collect()),
        _ => Value::Obj(
            (0..w % 5)
                .map(|i| (format!("k{i}"), build_value(words, depth - 1)))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serialize → parse is the identity on any JSON document, for both
    /// the compact and the pretty writer.
    #[test]
    fn json_round_trips(words in prop::collection::vec(any::<u64>(), 1..64)) {
        let v = build_value(&mut words.iter(), 3);
        let compact = json::parse(&v.to_json());
        prop_assert_eq!(compact.as_ref(), Ok(&v));
        let pretty = json::parse(&v.to_json_pretty());
        prop_assert_eq!(pretty.as_ref(), Ok(&v));
    }

    /// Overlap efficiency is always in [0, 1] whenever it is defined,
    /// regardless of where the measured latency lands relative to the
    /// reference and the bound.
    #[test]
    fn overlap_efficiency_stays_in_unit_interval(
        measured in 0u64..2_000_000,
        base in 0u64..2_000_000,
        theory in 0u64..2_000_000,
    ) {
        let eff = overlap_efficiency(
            SimDuration::from_nanos(measured),
            SimDuration::from_nanos(base),
            SimDuration::from_nanos(theory),
        );
        match eff {
            Some(e) => {
                prop_assert!((0.0..=1.0).contains(&e), "eff {}", e);
                prop_assert!(base > theory);
            }
            None => prop_assert!(base <= theory),
        }
    }

    /// Efficiency is monotone: a faster measured latency never scores
    /// lower, hitting the bound scores a perfect 1, and matching the
    /// non-overlap reference scores 0.
    #[test]
    fn overlap_efficiency_is_monotone(
        theory_ns in 1u64..1_000_000,
        headroom in 1u64..1_000_000,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let base = SimDuration::from_nanos(theory_ns + headroom);
        let theory = SimDuration::from_nanos(theory_ns);
        let (fast, slow) = (a.min(b), a.max(b));
        let eff = |m: u64| {
            overlap_efficiency(SimDuration::from_nanos(m), base, theory)
                .expect("base > theory")
        };
        prop_assert!(eff(theory_ns + fast) >= eff(theory_ns + slow));
        prop_assert!((eff(theory_ns) - 1.0).abs() < 1e-12);
        prop_assert!(eff(theory_ns + headroom).abs() < 1e-12);
    }
}
