//! Golden recovery-timeline test: an injected lost signal must
//! demonstrably recover through the watchdog → tail-collective path, with
//! the whole timeline — fault, watchdog firing, tail re-issue — visible
//! in the telemetry record and the exported Perfetto trace.

use flashoverlap::resilience::{Fault, FaultPlan, ResilientOutcome, WatchdogConfig};
use flashoverlap::runtime::CommPattern;
use flashoverlap::{ExecOptions, Instrumentation, OverlapPlan, SystemSpec, WavePartition};
use gpu_sim::gemm::{GemmConfig, GemmDims};
use gpu_sim::RuntimeEventKind;
use telemetry::json::{self, Value};
use telemetry::perfetto;
use telemetry::Telemetry;

fn small_plan() -> OverlapPlan {
    let dims = GemmDims::new(256, 256, 64);
    let mut system = SystemSpec::rtx4090(2);
    system.arch.sm_count = 8;
    system.comm_sms = 2;
    let config = GemmConfig::choose(dims, &system.arch);
    let waves = config.grid(dims).num_tiles().div_ceil(system.compute_sms());
    OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system,
        WavePartition::per_wave(waves),
    )
    .expect("valid plan")
}

fn lost_signal_faults() -> FaultPlan {
    FaultPlan::single(Fault::DroppedIncrement {
        rank: 0,
        group: 1,
        count: 1,
    })
}

#[test]
fn dropped_increment_recovery_is_visible_in_the_trace() {
    let plan = small_plan();
    let telemetry = Telemetry::new();
    let instr = Instrumentation {
        monitor: Some(telemetry.monitor()),
        probe: None,
        mutation: None,
    };
    let report = plan
        .execute_with(
            &ExecOptions::new()
                .instrument(&instr)
                .trace()
                .resilient(&lost_signal_faults(), &WatchdogConfig::default()),
        )
        .expect("resilient run");
    let spans = &report.spans;

    // The run recovered through the tail path, and says so.
    match &report.outcome {
        ResilientOutcome::Recovered { tail_groups, .. } => {
            assert!(tail_groups.contains(&1), "{tail_groups:?}");
        }
        other => panic!("expected tail recovery, got {other:?}"),
    }
    assert!(!report.events_of(RuntimeEventKind::FaultInjected).is_empty());
    assert!(!report.events_of(RuntimeEventKind::WatchdogFired).is_empty());
    assert!(!report.events_of(RuntimeEventKind::TailRecovery).is_empty());

    // The recovery collectives appear as their own span kind, after the
    // wedge was broken.
    let tails: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "tail-collective")
        .collect();
    assert!(!tails.is_empty(), "no tail-collective spans recorded");
    let fired_at = report
        .events_of(RuntimeEventKind::WatchdogFired)
        .first()
        .map(|e| e.at)
        .expect("watchdog fired");
    assert!(
        tails.iter().all(|s| s.start >= fired_at),
        "tail collectives must follow the watchdog"
    );

    // The telemetry record carries the same timeline, and the Perfetto
    // export places instant markers plus the tail-collective slice.
    let record = telemetry.take_record();
    assert!(record
        .runtime_events
        .iter()
        .any(|e| e.kind == RuntimeEventKind::TailRecovery && e.group == Some(1)));
    let doc = json::parse(&perfetto::trace_string(spans, Some(&record))).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    let instants: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert!(instants.contains(&"fault-injected"), "{instants:?}");
    assert!(instants.contains(&"watchdog-fired"), "{instants:?}");
    assert!(instants.contains(&"tail-recovery"), "{instants:?}");
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(Value::as_str) == Some("X")
            && e.get("name").and_then(Value::as_str) == Some("tail-collective")
    }));
}

#[test]
fn recovery_timeline_is_deterministic() {
    let plan = small_plan();
    let watchdog = WatchdogConfig::default();
    let run = || {
        plan.execute_with(&ExecOptions::new().resilient(&lost_signal_faults(), &watchdog))
            .expect("resilient run")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.outcome, b.outcome);
    let timeline = |r: &flashoverlap::ExecOutcome| -> Vec<(u64, RuntimeEventKind, Option<usize>)> {
        r.events
            .iter()
            .map(|e| ((e.at - sim::SimTime::ZERO).as_nanos(), e.kind, e.group))
            .collect()
    };
    assert_eq!(timeline(&a), timeline(&b));
    assert_eq!(a.report.latency, b.report.latency);
}
