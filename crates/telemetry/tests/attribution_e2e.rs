//! End-to-end attribution test on real runs: the critical-path walk
//! must tile every executed plan's makespan exactly, and a tuned
//! partition must attribute less critical-path time to signal waits
//! than the naive per-wave (§4.1.1) baseline on the same workload —
//! the paper's argument, stated as an attribution inequality.

use flashoverlap::runtime::CommPattern;
use flashoverlap::{ExecOptions, OverlapPlan, SystemSpec, WavePartition};
use gpu_sim::gemm::GemmDims;
use telemetry::attribution::{attribute, Attribution, Category};
use telemetry::Telemetry;

fn run_attributed(plan: &OverlapPlan) -> Attribution {
    let telemetry = Telemetry::new();
    let instr = telemetry.instrumentation();
    let out = plan
        .execute_with(&ExecOptions::new().instrument(&instr).trace())
        .expect("instrumented run");
    let record = telemetry.take_record();
    let a = attribute(&out.spans, &record);
    assert_eq!(
        a.makespan_ns,
        out.report.latency.as_nanos(),
        "attribution makespan must equal the measured latency"
    );
    a
}

#[test]
fn attribution_tiles_real_runs_exactly() {
    let dims = GemmDims::new(1024, 2048, 2048);
    let system = SystemSpec::a800(2);
    let tuned = OverlapPlan::tuned(dims, CommPattern::AllReduce, system).expect("tuned plan");
    let a = run_attributed(&tuned);
    assert!(a.identity_holds(), "identity: {a:?}");
    assert!(a.total_ns(Category::GemmCompute) > 0, "{}", a.summary());
    assert!(
        a.total_ns(Category::CollectiveTransfer) > 0,
        "{}",
        a.summary()
    );
    for w in a.segments.windows(2) {
        assert_eq!(w[0].end_ns, w[1].start_ns, "segments must abut");
    }
    assert_eq!(a.segments.first().map(|s| s.start_ns), Some(0));
    assert_eq!(a.segments.last().map(|s| s.end_ns), Some(a.makespan_ns));
}

#[test]
fn tuned_plan_attributes_less_signal_wait_than_per_wave() {
    let dims = GemmDims::new(2048, 4096, 4096);
    let system = SystemSpec::a800(2);
    let tuned =
        OverlapPlan::tuned(dims, CommPattern::AllReduce, system.clone()).expect("tuned plan");
    let naive = OverlapPlan::new(
        dims,
        CommPattern::AllReduce,
        system,
        WavePartition::per_wave(tuned.partition.total_waves()),
    )
    .expect("per-wave plan");
    assert_ne!(
        tuned.partition.sizes(),
        naive.partition.sizes(),
        "shape must tune away from the per-wave baseline"
    );
    let a_tuned = run_attributed(&tuned);
    let a_naive = run_attributed(&naive);
    assert!(a_tuned.identity_holds());
    assert!(a_naive.identity_holds());
    assert!(
        a_tuned.total_ns(Category::SignalWait) < a_naive.total_ns(Category::SignalWait),
        "tuned signal-wait {} must beat per-wave {} (tuned: {}; naive: {})",
        a_tuned.total_ns(Category::SignalWait),
        a_naive.total_ns(Category::SignalWait),
        a_tuned.summary(),
        a_naive.summary(),
    );
}
