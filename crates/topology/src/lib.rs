//! Two-tier cluster topology: nodes × GPUs-per-node with distinct link
//! classes per tier.
//!
//! The single-node simulator models one box of N GPUs on a uniform
//! fabric. Scaling past one box introduces the defining asymmetry of real
//! clusters: intra-node links (NVLink-class) and inter-node links
//! (IB/PCIe-class) differ by an order of magnitude in bandwidth and
//! per-call overhead. [`Topology`] captures that as a rank → node map
//! plus one [`FabricSpec`] per tier, and answers the only questions the
//! rest of the system asks: *which node is this rank on*, *which fabric
//! does this pair of ranks cross*, and *does this rank set span nodes at
//! all*. Collective cost models, the latency predictor, the serving
//! router, and telemetry all consume those answers; none of them
//! re-derive placement.
//!
//! Ranks are laid out node-major: ranks `[k·g, (k+1)·g)` live on node
//! `k` for `g` GPUs per node. Rank `k·g` is node `k`'s *leader*, the
//! endpoint of the inter-node ring in hierarchical collectives.

#![warn(missing_docs)]

use interconnect::FabricSpec;

/// Which tier of the two-tier fabric a link belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkTier {
    /// Both endpoints share a node (fast tier).
    Intra,
    /// The endpoints sit on different nodes (slow tier).
    Inter,
}

impl LinkTier {
    /// Stable label used in reports and telemetry ("intra" / "inter").
    pub fn label(&self) -> &'static str {
        match self {
            LinkTier::Intra => "intra",
            LinkTier::Inter => "inter",
        }
    }
}

/// A two-tier cluster topology: `nodes` nodes of `gpus_per_node` GPUs
/// each, with one fabric class per tier.
///
/// A single-node topology (`nodes == 1`) is the degenerate case every
/// pre-existing code path ran on: all links are intra-tier and the inter
/// fabric is never consulted, so costs are bit-identical to the flat
/// model.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Human-readable topology name.
    pub name: &'static str,
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node (homogeneous).
    pub gpus_per_node: usize,
    /// Fabric between GPUs of the same node.
    pub intra: FabricSpec,
    /// Fabric between GPUs of different nodes.
    pub inter: FabricSpec,
}

impl Topology {
    /// A single-node topology over `fabric` — the degenerate case that
    /// reproduces the flat model exactly. The inter tier is set to the
    /// same fabric but is never crossed.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn single_node(fabric: FabricSpec, gpus: usize) -> Self {
        Topology::two_tier(1, gpus, fabric.clone(), fabric)
    }

    /// A `nodes` × `gpus_per_node` topology with explicit per-tier
    /// fabrics.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn two_tier(
        nodes: usize,
        gpus_per_node: usize,
        intra: FabricSpec,
        inter: FabricSpec,
    ) -> Self {
        assert!(nodes >= 1, "topology needs at least one node");
        assert!(
            gpus_per_node >= 1,
            "topology needs at least one GPU per node"
        );
        Topology {
            name: if nodes > 1 { "two-tier" } else { "single-node" },
            nodes,
            gpus_per_node,
            intra,
            inter,
        }
    }

    /// The evaluation-cluster preset: NVLink inside each node, HDR
    /// InfiniBand between nodes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn a800_hdr(nodes: usize, gpus_per_node: usize) -> Self {
        let mut t = Topology::two_tier(
            nodes,
            gpus_per_node,
            FabricSpec::a800_nvlink(),
            FabricSpec::hdr_infiniband(),
        );
        t.name = "A800xHDR";
        t
    }

    /// Total GPU count.
    pub fn n_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Whether the topology has more than one node at all.
    pub fn spans_nodes(&self) -> bool {
        self.nodes > 1
    }

    /// The node rank `rank` lives on (node-major layout).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(rank < self.n_gpus(), "rank {rank} out of range");
        rank / self.gpus_per_node
    }

    /// Whether two ranks share a node.
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The tier the `a` → `b` link belongs to.
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range.
    pub fn tier(&self, a: usize, b: usize) -> LinkTier {
        if self.same_node(a, b) {
            LinkTier::Intra
        } else {
            LinkTier::Inter
        }
    }

    /// The fabric the `a` → `b` link runs over.
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range.
    pub fn link(&self, a: usize, b: usize) -> &FabricSpec {
        match self.tier(a, b) {
            LinkTier::Intra => &self.intra,
            LinkTier::Inter => &self.inter,
        }
    }

    /// Whether a rank set crosses a node boundary.
    pub fn ranks_span_nodes(&self, ranks: &[usize]) -> bool {
        let mut nodes = ranks.iter().map(|&r| self.node_of(r));
        match nodes.next() {
            Some(first) => nodes.any(|n| n != first),
            None => false,
        }
    }

    /// The rank → node map, indexable by device id.
    pub fn node_map(&self) -> Vec<usize> {
        (0..self.n_gpus()).map(|r| self.node_of(r)).collect()
    }

    /// Each node's leader rank (the first rank on the node), the
    /// endpoints of the inter-node ring in hierarchical collectives.
    pub fn leaders(&self) -> Vec<usize> {
        (0..self.nodes).map(|k| k * self.gpus_per_node).collect()
    }

    /// The ranks living on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_ranks(&self, node: usize) -> std::ops::Range<usize> {
        assert!(node < self.nodes, "node {node} out of range");
        node * self.gpus_per_node..(node + 1) * self.gpus_per_node
    }

    /// How many edges of the flat rank-order ring cross a node boundary:
    /// zero on a single node, `nodes` otherwise (one exit per node,
    /// including the wrap-around edge).
    pub fn flat_ring_crossings(&self) -> u64 {
        if self.nodes > 1 {
            self.nodes as u64
        } else {
            0
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn single_node_never_spans() {
        let t = Topology::single_node(FabricSpec::a800_nvlink(), 8);
        assert_eq!(t.n_gpus(), 8);
        assert!(!t.spans_nodes());
        assert_eq!(t.flat_ring_crossings(), 0);
        assert!(!t.ranks_span_nodes(&[0, 3, 7]));
        assert_eq!(t.node_map(), vec![0; 8]);
        assert_eq!(t.leaders(), vec![0]);
    }

    #[test]
    fn node_major_layout_and_leaders() {
        let t = Topology::a800_hdr(2, 4);
        assert_eq!(t.n_gpus(), 8);
        assert!(t.spans_nodes());
        assert_eq!(t.node_map(), vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(t.leaders(), vec![0, 4]);
        assert_eq!(t.node_ranks(1), 4..8);
        assert_eq!(t.flat_ring_crossings(), 2);
    }

    #[test]
    fn tier_and_link_follow_the_node_map() {
        let t = Topology::a800_hdr(2, 4);
        assert_eq!(t.tier(0, 3), LinkTier::Intra);
        assert_eq!(t.tier(3, 4), LinkTier::Inter);
        assert_eq!(t.link(0, 3).name, "A800-NVLink");
        assert_eq!(t.link(3, 4).name, "HDR-IB");
        assert!(t.ranks_span_nodes(&[3, 4]));
        assert!(!t.ranks_span_nodes(&[4, 5, 6]));
    }

    #[test]
    fn tier_labels_are_stable() {
        assert_eq!(LinkTier::Intra.label(), "intra");
        assert_eq!(LinkTier::Inter.label(), "inter");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = Topology::two_tier(
            0,
            4,
            FabricSpec::a800_nvlink(),
            FabricSpec::hdr_infiniband(),
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        let t = Topology::a800_hdr(2, 2);
        let _ = t.node_of(4);
    }
}
