//! CUDA-like streams, events, and the kernel launch protocol.
//!
//! A stream executes its enqueued kernels strictly in order, one at a time.
//! A kernel receives a [`Completion`] token at launch and must fire it
//! exactly once when its work (as modelled in simulated time) is done; the
//! stream then advances to the next kernel. Cross-stream ordering uses
//! [`RecordEvent`]/[`WaitEvent`] pairs, mirroring `cudaEventRecord` /
//! `cudaStreamWaitEvent` — the mechanism FlashOverlap's two-stream runtime
//! (§5) is built on.

use std::collections::VecDeque;

use sim::{SimDuration, SimTime};

use crate::cluster::{Cluster, SpanMeta};
use crate::device::DeviceId;
use crate::ClusterSim;

/// Identifies a stream on a device.
pub type StreamId = usize;

/// Identifies a recordable event on a device.
pub type GpuEventId = usize;

/// A stream operation: anything launchable on a stream.
///
/// Implementations model their duration by scheduling simulator events and
/// must eventually call [`Completion::finish`] exactly once.
pub trait Kernel {
    /// Starts the operation. `ctx.completion` must be fired when done.
    fn launch(self: Box<Self>, ctx: LaunchCtx, world: &mut Cluster, sim: &mut ClusterSim);

    /// Human-readable kernel name for traces and errors.
    fn name(&self) -> &'static str {
        "kernel"
    }

    /// Structured metadata recorded on the kernel's [`OpSpan`]
    /// (bytes/group for collectives, tiles/waves for GEMMs). Control ops
    /// keep the default [`SpanMeta::None`].
    ///
    /// [`OpSpan`]: crate::cluster::OpSpan
    fn span_meta(&self) -> SpanMeta {
        SpanMeta::None
    }
}

/// Launch context handed to a kernel.
#[derive(Debug)]
pub struct LaunchCtx {
    /// Device the kernel launched on.
    pub device: DeviceId,
    /// Stream the kernel occupies.
    pub stream: StreamId,
    /// Completion token; firing it frees the stream.
    pub completion: Completion,
}

/// A one-shot token that marks a stream operation finished.
///
/// Dropping a `Completion` without firing it would wedge its stream
/// forever; the type is deliberately not `Clone` so an op can finish at
/// most once.
#[derive(Debug)]
pub struct Completion {
    device: DeviceId,
    stream: StreamId,
}

impl Completion {
    pub(crate) fn new(device: DeviceId, stream: StreamId) -> Self {
        Completion { device, stream }
    }

    /// Creates a detached token for unit tests of waiter plumbing.
    pub fn for_test(device: DeviceId, stream: StreamId) -> Self {
        Completion { device, stream }
    }

    /// The device this token belongs to.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The stream this token belongs to.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Marks the operation complete and advances its stream.
    pub fn finish(self, world: &mut Cluster, sim: &mut ClusterSim) {
        let stream = &mut world.devices[self.device].streams[self.stream];
        debug_assert!(stream.busy, "completion fired on an idle stream");
        stream.busy = false;
        if let Some((name, meta, start)) = stream.current.take() {
            if let Some(spans) = world.op_spans.as_mut() {
                spans.push(crate::cluster::OpSpan {
                    device: self.device,
                    stream: self.stream,
                    name,
                    meta,
                    start,
                    end: sim.now(),
                });
            }
        }
        advance_stream(world, sim, self.device, self.stream);
    }
}

/// An in-order queue of kernels on one device.
#[derive(Default)]
pub struct Stream {
    pub(crate) queue: VecDeque<Box<dyn Kernel>>,
    pub(crate) busy: bool,
    /// Name, metadata, and start time of the in-flight op (span recording
    /// only).
    pub(crate) current: Option<(&'static str, SpanMeta, SimTime)>,
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stream")
            .field("queued", &self.queue.len())
            .field("busy", &self.busy)
            .finish()
    }
}

/// A recordable synchronization event (cudaEvent analogue).
#[derive(Debug, Default)]
pub struct GpuEvent {
    pub(crate) recorded: Option<SimTime>,
    pub(crate) waiters: Vec<Completion>,
}

/// Enqueues `kernel` on `(device, stream)` and starts it if the stream is
/// idle.
///
/// # Panics
///
/// Panics if the device or stream does not exist.
pub fn enqueue(
    world: &mut Cluster,
    sim: &mut ClusterSim,
    device: DeviceId,
    stream: StreamId,
    kernel: Box<dyn Kernel>,
) {
    world.devices[device].streams[stream]
        .queue
        .push_back(kernel);
    advance_stream(world, sim, device, stream);
}

/// Starts the next queued kernel if the stream is idle.
pub(crate) fn advance_stream(
    world: &mut Cluster,
    sim: &mut ClusterSim,
    device: DeviceId,
    stream: StreamId,
) {
    let st = &mut world.devices[device].streams[stream];
    if st.busy {
        return;
    }
    let Some(kernel) = st.queue.pop_front() else {
        return;
    };
    st.busy = true;
    if world.op_spans.is_some() {
        world.devices[device].streams[stream].current =
            Some((kernel.name(), kernel.span_meta(), sim.now()));
    }
    let ctx = LaunchCtx {
        device,
        stream,
        completion: Completion::new(device, stream),
    };
    kernel.launch(ctx, world, sim);
}

/// A kernel that occupies its stream for a fixed duration (tests, and
/// simple cost-model kernels).
#[derive(Debug, Clone, Copy)]
pub struct Delay(pub SimDuration);

impl Kernel for Delay {
    fn launch(self: Box<Self>, ctx: LaunchCtx, _world: &mut Cluster, sim: &mut ClusterSim) {
        sim.schedule_in(self.0, move |w, s| ctx.completion.finish(w, s));
    }

    fn name(&self) -> &'static str {
        "delay"
    }
}

/// Records an event on the stream: all prior work on the stream is done
/// when it fires, releasing any [`WaitEvent`] waiters.
#[derive(Debug, Clone, Copy)]
pub struct RecordEvent(pub GpuEventId);

impl Kernel for RecordEvent {
    fn launch(self: Box<Self>, ctx: LaunchCtx, world: &mut Cluster, sim: &mut ClusterSim) {
        let ev = &mut world.devices[ctx.device].events[self.0];
        ev.recorded = Some(sim.now());
        let waiters = std::mem::take(&mut ev.waiters);
        if let Some(monitor) = world.monitor.as_deref() {
            monitor.on_event_record(sim.now(), ctx.device, ctx.stream, self.0);
            // Parked waiters synchronize now, at record time.
            for completion in &waiters {
                monitor.on_event_wait(sim.now(), completion.device(), completion.stream(), self.0);
            }
        }
        for completion in waiters {
            // Wake on a fresh event so each waiter's stream advances after
            // the current call stack unwinds.
            sim.schedule_now(move |w, s| completion.finish(w, s));
        }
        ctx.completion.finish(world, sim);
    }

    fn name(&self) -> &'static str {
        "record_event"
    }
}

/// Blocks the stream until the event has been recorded (on this device).
#[derive(Debug, Clone, Copy)]
pub struct WaitEvent(pub GpuEventId);

impl Kernel for WaitEvent {
    fn launch(self: Box<Self>, ctx: LaunchCtx, world: &mut Cluster, sim: &mut ClusterSim) {
        let ev = &mut world.devices[ctx.device].events[self.0];
        if ev.recorded.is_some() {
            if let Some(monitor) = world.monitor.as_deref() {
                monitor.on_event_wait(sim.now(), ctx.device, ctx.stream, self.0);
            }
            ctx.completion.finish(world, sim);
        } else {
            ev.waiters.push(ctx.completion);
        }
    }

    fn name(&self) -> &'static str {
        "wait_event"
    }
}

/// The signaling kernel (§5): blocks the stream until a counting-table slot
/// reaches its threshold, modelling the polling quantum of the real
/// spin-waiting kernel.
#[derive(Debug, Clone, Copy)]
pub struct WaitCounter {
    /// Counting table index on the device.
    pub table: usize,
    /// Group slot to watch.
    pub group: usize,
    /// Count to wait for (the group's tile count).
    pub threshold: u32,
}

impl Kernel for WaitCounter {
    fn launch(self: Box<Self>, ctx: LaunchCtx, world: &mut Cluster, sim: &mut ClusterSim) {
        let device = ctx.device;
        let dev = &mut world.devices[device];
        let poll = dev.signal_poll_delay();
        match dev.counters[self.table].register(self.group, self.threshold, ctx.completion) {
            Some(completion) => {
                // Already satisfied; still pay one polling quantum.
                if let Some(monitor) = world.monitor.as_deref() {
                    monitor.on_counter_satisfied(
                        sim.now(),
                        device,
                        completion.stream(),
                        self.table,
                        self.group,
                        self.threshold,
                    );
                }
                sim.schedule_in(poll, move |w, s| completion.finish(w, s));
            }
            None => {
                // Parked; the incrementing wave will wake it (the wake path
                // adds the polling delay).
            }
        }
    }

    fn name(&self) -> &'static str {
        "wait_counter"
    }
}

/// The closure type a [`Callback`] stream op runs.
pub type CallbackFn = Box<dyn FnOnce(&mut Cluster, &mut ClusterSim)>;

/// Runs an arbitrary closure as a zero-duration stream op (timestamping,
/// test hooks).
pub struct Callback(pub CallbackFn);

impl std::fmt::Debug for Callback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Callback(..)")
    }
}

impl Kernel for Callback {
    fn launch(self: Box<Self>, ctx: LaunchCtx, world: &mut Cluster, sim: &mut ClusterSim) {
        (self.0)(world, sim);
        ctx.completion.finish(world, sim);
    }

    fn name(&self) -> &'static str {
        "callback"
    }
}

/// Resets a counting table for reuse as a zero-duration stream op: every
/// group count returns to zero (steady-state double buffering — a serving
/// loop allocates tables once and ping-pongs between two sets instead of
/// allocating per iteration). The caller must order the reset after the
/// previous user's waits through an event edge; resetting under a parked
/// waiter panics.
#[derive(Debug, Clone, Copy)]
pub struct ResetCounter {
    /// Counting table index on the device.
    pub table: usize,
}

impl Kernel for ResetCounter {
    fn launch(self: Box<Self>, ctx: LaunchCtx, world: &mut Cluster, sim: &mut ClusterSim) {
        world.devices[ctx.device].counters[self.table].reset();
        if let Some(monitor) = world.monitor.as_deref() {
            monitor.on_counter_reset(sim.now(), ctx.device, ctx.stream, self.table);
        }
        ctx.completion.finish(world, sim);
    }

    fn name(&self) -> &'static str {
        "reset_counter"
    }
}

/// Revokes every signal wait parked on `(device, table)` and finishes
/// their completions immediately, unblocking the streams that were
/// starving on lost signals. The counts themselves are untouched — this
/// releases the *waiters*, not the signals. Recovery runtimes call this
/// after clearing the stream queues so the released streams go idle
/// instead of advancing into stale work. Returns the number of waits
/// revoked.
///
/// # Panics
///
/// Panics if the device or table does not exist.
pub fn abort_counter_waits(
    world: &mut Cluster,
    sim: &mut ClusterSim,
    device: DeviceId,
    table: usize,
) -> usize {
    let waiters = world.devices[device].counters[table].take_parked();
    let revoked = waiters.len();
    for waiter in waiters {
        let completion = waiter.completion;
        sim.schedule_now(move |w, s| completion.finish(w, s));
    }
    revoked
}

/// Wakes counter waiters returned by an increment: each parked signaling
/// kernel observes the counter after its polling delay.
pub(crate) fn wake_counter_waiters(
    world: &mut Cluster,
    sim: &mut ClusterSim,
    device: DeviceId,
    table: usize,
    waiters: Vec<crate::counter::Waiter>,
) {
    for waiter in waiters {
        if let Some(monitor) = world.monitor.as_deref() {
            // The parked wait synchronizes now, at the releasing increment.
            monitor.on_counter_satisfied(
                sim.now(),
                device,
                waiter.completion.stream(),
                table,
                waiter.group,
                waiter.threshold,
            );
        }
        let poll = world.devices[device].signal_poll_delay();
        let completion = waiter.completion;
        sim.schedule_in(poll, move |w, s| completion.finish(w, s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuArch;
    use crate::cluster::Cluster;
    use sim::Sim;

    fn one_device() -> (Cluster, ClusterSim) {
        let cluster = Cluster::new(1, GpuArch::rtx4090(), false, 1);
        (cluster, Sim::new())
    }

    #[test]
    fn stream_runs_kernels_in_order() {
        let (mut world, mut sim) = one_device();
        let s = world.devices[0].create_stream();
        enqueue(
            &mut world,
            &mut sim,
            0,
            s,
            Box::new(Delay(SimDuration::from_nanos(100))),
        );
        enqueue(
            &mut world,
            &mut sim,
            0,
            s,
            Box::new(Delay(SimDuration::from_nanos(50))),
        );
        let end = sim.run(&mut world).unwrap();
        assert_eq!(end.as_nanos(), 150);
    }

    #[test]
    fn two_streams_run_concurrently() {
        let (mut world, mut sim) = one_device();
        let s0 = world.devices[0].create_stream();
        let s1 = world.devices[0].create_stream();
        enqueue(
            &mut world,
            &mut sim,
            0,
            s0,
            Box::new(Delay(SimDuration::from_nanos(100))),
        );
        enqueue(
            &mut world,
            &mut sim,
            0,
            s1,
            Box::new(Delay(SimDuration::from_nanos(100))),
        );
        let end = sim.run(&mut world).unwrap();
        assert_eq!(end.as_nanos(), 100, "streams should overlap");
    }

    #[test]
    fn record_wait_event_orders_across_streams() {
        let (mut world, mut sim) = one_device();
        let s0 = world.devices[0].create_stream();
        let s1 = world.devices[0].create_stream();
        let ev = world.devices[0].create_event();
        enqueue(
            &mut world,
            &mut sim,
            0,
            s0,
            Box::new(Delay(SimDuration::from_nanos(100))),
        );
        enqueue(&mut world, &mut sim, 0, s0, Box::new(RecordEvent(ev)));
        enqueue(&mut world, &mut sim, 0, s1, Box::new(WaitEvent(ev)));
        enqueue(
            &mut world,
            &mut sim,
            0,
            s1,
            Box::new(Delay(SimDuration::from_nanos(30))),
        );
        let end = sim.run(&mut world).unwrap();
        assert_eq!(end.as_nanos(), 130);
    }

    #[test]
    fn wait_on_already_recorded_event_does_not_block() {
        let (mut world, mut sim) = one_device();
        let s0 = world.devices[0].create_stream();
        let s1 = world.devices[0].create_stream();
        let ev = world.devices[0].create_event();
        enqueue(&mut world, &mut sim, 0, s0, Box::new(RecordEvent(ev)));
        sim.run(&mut world).unwrap();
        enqueue(&mut world, &mut sim, 0, s1, Box::new(WaitEvent(ev)));
        enqueue(
            &mut world,
            &mut sim,
            0,
            s1,
            Box::new(Delay(SimDuration::from_nanos(10))),
        );
        let end = sim.run(&mut world).unwrap();
        assert_eq!(end.as_nanos(), 10);
    }

    #[test]
    fn wait_counter_blocks_until_threshold() {
        let (mut world, mut sim) = one_device();
        let s0 = world.devices[0].create_stream();
        let s1 = world.devices[0].create_stream();
        let table = world.devices[0].create_counter(1);
        // Stream 1 waits for the counter; stream 0 bumps it at t = 500.
        enqueue(
            &mut world,
            &mut sim,
            0,
            s1,
            Box::new(WaitCounter {
                table,
                group: 0,
                threshold: 4,
            }),
        );
        enqueue(
            &mut world,
            &mut sim,
            0,
            s0,
            Box::new(Delay(SimDuration::from_nanos(500))),
        );
        enqueue(
            &mut world,
            &mut sim,
            0,
            s0,
            Box::new(Callback(Box::new(move |w, s| {
                let woken = w.devices[0].counters[table].increment(0, 4);
                wake_counter_waiters(w, s, 0, table, woken);
            }))),
        );
        let end = sim.run(&mut world).unwrap();
        assert!(
            end.as_nanos() >= 500,
            "waiter released before increment: {end:?}"
        );
        assert!(
            end.as_nanos() <= 500 + world.devices[0].arch.signal_poll_ns,
            "poll delay too large: {end:?}"
        );
    }

    #[test]
    fn op_spans_record_start_and_end() {
        let (mut world, mut sim) = one_device();
        world.enable_op_spans();
        let s = world.devices[0].create_stream();
        enqueue(
            &mut world,
            &mut sim,
            0,
            s,
            Box::new(Delay(SimDuration::from_nanos(40))),
        );
        enqueue(
            &mut world,
            &mut sim,
            0,
            s,
            Box::new(Delay(SimDuration::from_nanos(60))),
        );
        sim.run(&mut world).unwrap();
        let spans = world.op_spans.as_ref().unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "delay");
        assert_eq!(spans[0].start.as_nanos(), 0);
        assert_eq!(spans[0].end.as_nanos(), 40);
        assert_eq!(spans[1].start.as_nanos(), 40);
        assert_eq!(spans[1].end.as_nanos(), 100);
    }

    #[test]
    fn callback_observes_time() {
        let (mut world, mut sim) = one_device();
        let s = world.devices[0].create_stream();
        enqueue(
            &mut world,
            &mut sim,
            0,
            s,
            Box::new(Delay(SimDuration::from_nanos(77))),
        );
        let seen = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let seen2 = seen.clone();
        enqueue(
            &mut world,
            &mut sim,
            0,
            s,
            Box::new(Callback(Box::new(move |_, s| {
                seen2.set(s.now().as_nanos());
            }))),
        );
        sim.run(&mut world).unwrap();
        assert_eq!(seen.get(), 77);
    }
}
