//! Group-wise tile-counting tables (§3.2.4).
//!
//! A counting table has one slot per group `G_1..G_P`. The GEMM epilogue
//! atomically increments the slot of each finished tile's group; a
//! signaling kernel waits until a slot reaches the group's tile count and
//! then lets the corresponding communication proceed. Here the "atomic add"
//! is an ordinary add inside a single-threaded simulation, and a waiting
//! signaling kernel is represented by a registered [`Waiter`] that the
//! increment returns once its threshold is met.
//!
//! This module sits on the per-tile signaling hot path, so unchecked
//! indexing is opted out in favour of explicit bounds handling.
#![warn(clippy::indexing_slicing)]

use sim::SimDuration;

use crate::stream::Completion;

/// A signaling kernel blocked on a counter slot.
#[derive(Debug)]
pub struct Waiter {
    /// The group slot the waiter watches.
    pub group: usize,
    /// The count the waiter is waiting for.
    pub threshold: u32,
    /// The stream-op completion to fire once the threshold is reached.
    pub completion: Completion,
}

/// What an armed fault does to one epilogue increment (fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementFault {
    /// The increment is lost: the count never advances (a lost signal).
    Dropped,
    /// The increment lands late: the count advances only after the delay.
    Delayed(SimDuration),
}

/// An armed increment fault: the next `remaining` increments to `group`
/// take `kind` instead of landing normally.
#[derive(Debug, Clone, Copy)]
struct ArmedFault {
    group: usize,
    kind: IncrementFault,
    remaining: u32,
}

/// A counting table tracking per-group finished-tile counts.
#[derive(Debug, Default)]
pub struct CounterTable {
    counts: Vec<u32>,
    waiters: Vec<Vec<Waiter>>,
    faults: Vec<ArmedFault>,
}

impl CounterTable {
    /// Creates a table with `groups` zero-initialized slots.
    pub fn new(groups: usize) -> Self {
        CounterTable {
            counts: vec![0; groups],
            waiters: (0..groups).map(|_| Vec::new()).collect(),
            faults: Vec::new(),
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.counts.len()
    }

    /// Current count of a group.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn count(&self, group: usize) -> u32 {
        self.counts.get(group).copied().expect("group out of range")
    }

    /// Increments `group` by `by` and returns the waiters whose thresholds
    /// are now satisfied (in registration order).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn increment(&mut self, group: usize, by: u32) -> Vec<Waiter> {
        let slot = self.counts.get_mut(group).expect("group out of range");
        *slot += by;
        let count = *slot;
        let pending = self.waiters.get_mut(group).expect("group out of range");
        pending.extract_if(.., |w| w.threshold <= count).collect()
    }

    /// Registers a waiter for `group` reaching `threshold`.
    ///
    /// If the threshold is already met, the completion is handed straight
    /// back (`Some`) so the caller can fire it; otherwise it is parked and
    /// `None` is returned.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn register(
        &mut self,
        group: usize,
        threshold: u32,
        completion: Completion,
    ) -> Option<Completion> {
        if self.count(group) >= threshold {
            return Some(completion);
        }
        let pending = self.waiters.get_mut(group).expect("group out of range");
        pending.push(Waiter {
            group,
            threshold,
            completion,
        });
        None
    }

    /// Iterates over the still-parked waiters, in registration order per
    /// group. A non-empty result after the event queue drains means the
    /// program lost a signal: some threshold can never be reached.
    pub fn parked_waiters(&self) -> impl Iterator<Item = &Waiter> {
        self.waiters.iter().flatten()
    }

    /// Removes and returns every parked waiter (watchdog recovery: the
    /// caller decides what to do with the revoked completions). The counts
    /// are left untouched.
    pub fn take_parked(&mut self) -> Vec<Waiter> {
        self.waiters.iter_mut().flat_map(std::mem::take).collect()
    }

    /// Arms a fault: the next `count` increments to `group` take `fault`
    /// instead of landing normally (consumed by
    /// [`CounterTable::take_increment_fault`] on the epilogue hot path).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn arm_fault(&mut self, group: usize, fault: IncrementFault, count: u32) {
        assert!(group < self.counts.len(), "group out of range");
        if count > 0 {
            self.faults.push(ArmedFault {
                group,
                kind: fault,
                remaining: count,
            });
        }
    }

    /// Consumes one armed fault application for an increment to `group`,
    /// if any is armed. Returns what the fault does to the increment.
    pub fn take_increment_fault(&mut self, group: usize) -> Option<IncrementFault> {
        let armed = self
            .faults
            .iter_mut()
            .find(|f| f.group == group && f.remaining > 0)?;
        armed.remaining -= 1;
        let kind = armed.kind;
        self.faults.retain(|f| f.remaining > 0);
        Some(kind)
    }

    /// Disarms every armed increment fault and returns how many armed
    /// entries were cleared. Chain recovery quarantines a wedged
    /// segment's leftover fault budget with this before the table is
    /// handed to the next same-parity segment, so a fault armed for
    /// segment `k` can never leak into segment `k + 2`.
    pub fn disarm_faults(&mut self) -> usize {
        let cleared = self.faults.len();
        self.faults.clear();
        cleared
    }

    /// Resets all counts to zero (table reuse across iterations).
    ///
    /// # Panics
    ///
    /// Panics if any waiter is still parked — resetting under a waiter
    /// would deadlock it.
    pub fn reset(&mut self) {
        assert!(
            self.waiters.iter().all(Vec::is_empty),
            "resetting a counter table with parked waiters"
        );
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;

    fn completion() -> Completion {
        Completion::for_test(0, 0)
    }

    #[test]
    fn counts_accumulate() {
        let mut t = CounterTable::new(3);
        t.increment(1, 2);
        t.increment(1, 3);
        assert_eq!(t.count(0), 0);
        assert_eq!(t.count(1), 5);
    }

    #[test]
    fn waiter_wakes_exactly_at_threshold() {
        let mut t = CounterTable::new(1);
        assert!(t.register(0, 4, completion()).is_none());
        assert!(t.increment(0, 3).is_empty());
        let woken = t.increment(0, 1);
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].threshold, 4);
    }

    #[test]
    fn already_met_threshold_returns_completion() {
        let mut t = CounterTable::new(1);
        t.increment(0, 10);
        assert!(t.register(0, 4, completion()).is_some());
    }

    #[test]
    fn multiple_waiters_same_group() {
        let mut t = CounterTable::new(1);
        assert!(t.register(0, 2, completion()).is_none());
        assert!(t.register(0, 5, completion()).is_none());
        let woken = t.increment(0, 2);
        assert_eq!(woken.len(), 1);
        let woken = t.increment(0, 3);
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].threshold, 5);
    }

    #[test]
    fn overshoot_wakes_waiter() {
        let mut t = CounterTable::new(1);
        assert!(t.register(0, 3, completion()).is_none());
        let woken = t.increment(0, 7);
        assert_eq!(woken.len(), 1);
    }

    #[test]
    fn reset_zeroes_counts() {
        let mut t = CounterTable::new(2);
        t.increment(0, 5);
        t.reset();
        assert_eq!(t.count(0), 0);
    }

    #[test]
    #[should_panic(expected = "parked waiters")]
    fn reset_with_waiters_panics() {
        let mut t = CounterTable::new(1);
        t.register(0, 1, completion());
        t.reset();
    }

    #[test]
    fn armed_drop_fault_is_consumed_per_increment() {
        let mut t = CounterTable::new(2);
        t.arm_fault(1, IncrementFault::Dropped, 2);
        assert_eq!(t.take_increment_fault(0), None);
        assert_eq!(t.take_increment_fault(1), Some(IncrementFault::Dropped));
        assert_eq!(t.take_increment_fault(1), Some(IncrementFault::Dropped));
        assert_eq!(t.take_increment_fault(1), None, "fault budget exhausted");
    }

    #[test]
    fn armed_delay_fault_carries_duration() {
        let mut t = CounterTable::new(1);
        let d = SimDuration::from_nanos(750);
        t.arm_fault(0, IncrementFault::Delayed(d), 1);
        assert_eq!(t.take_increment_fault(0), Some(IncrementFault::Delayed(d)));
        assert_eq!(t.take_increment_fault(0), None);
    }

    #[test]
    fn take_parked_revokes_waiters() {
        let mut t = CounterTable::new(2);
        assert!(t.register(0, 3, completion()).is_none());
        assert!(t.register(1, 5, completion()).is_none());
        let parked = t.take_parked();
        assert_eq!(parked.len(), 2);
        assert_eq!(t.parked_waiters().count(), 0);
        // Counts untouched; a later register sees the real state.
        assert_eq!(t.count(0), 0);
    }

    #[test]
    fn disarm_faults_quarantines_leftover_budget() {
        let mut t = CounterTable::new(2);
        t.arm_fault(0, IncrementFault::Dropped, 3);
        t.arm_fault(1, IncrementFault::Delayed(SimDuration::from_nanos(10)), 1);
        assert_eq!(t.take_increment_fault(0), Some(IncrementFault::Dropped));
        assert_eq!(t.disarm_faults(), 2);
        assert_eq!(t.take_increment_fault(0), None, "budget quarantined");
        assert_eq!(t.take_increment_fault(1), None, "budget quarantined");
        assert_eq!(t.disarm_faults(), 0, "idempotent once cleared");
    }

    #[test]
    #[should_panic(expected = "group out of range")]
    fn arming_fault_out_of_range_panics() {
        let mut t = CounterTable::new(1);
        t.arm_fault(3, IncrementFault::Dropped, 1);
    }

    #[test]
    fn fig4_scenario() {
        // Fig. 4: three groups of |G| = 2, 4, 2 tiles. Waves finish tiles
        // in bundles; each group's comm triggers exactly when its count
        // reaches its size.
        let mut t = CounterTable::new(3);
        assert!(t.register(0, 2, completion()).is_none());
        assert!(t.register(1, 4, completion()).is_none());
        assert!(t.register(2, 2, completion()).is_none());
        // Wave 1 finishes 2 tiles of G1.
        assert_eq!(t.increment(0, 2).len(), 1);
        // Wave 2 finishes 2 tiles of G2: not enough yet.
        assert_eq!(t.increment(1, 2).len(), 0);
        // Wave 3 finishes 2 more tiles of G2: triggers.
        assert_eq!(t.increment(1, 2).len(), 1);
        // Wave 4 finishes G3.
        assert_eq!(t.increment(2, 2).len(), 1);
    }
}
