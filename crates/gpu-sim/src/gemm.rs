//! The tiled GEMM kernel model.
//!
//! The main loop is never modified (the paper's interference-free
//! property): the kernel executes its tiles wave by wave, where each wave
//! takes one tile-duration and runs as many tiles as there are SMs
//! *currently available* — communication kernels that grab SMs slow down
//! subsequent waves, which is exactly the contention the predictor has to
//! account for (Alg. 1 line 3). The epilogue is a hook: it can write tiles
//! at reordered positions ([`EpilogueWriter`]) and bump a counting table
//! ([`CounterHook`]) without touching the main loop, mirroring the EVT
//! epilogue integration of §5.

use std::rc::Rc;

use sim::SimDuration;
use tensor::Matrix;

use crate::arch::GpuArch;
use crate::cluster::{Cluster, SpanMeta, TileCompletion};
use crate::device::DeviceId;
use crate::memory::BufferId;
use crate::stream::{Completion, Kernel, LaunchCtx};
use crate::swizzle::Swizzle;
use crate::tile::{TileGrid, TileShape};
use crate::wave::wave_count;
use crate::ClusterSim;

/// GEMM problem dimensions: `A^{M x K} x B^{K x N} = C^{M x N}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmDims {
    /// Output rows.
    pub m: u32,
    /// Output columns.
    pub n: u32,
    /// Accumulation depth.
    pub k: u32,
}

impl GemmDims {
    /// Creates the dimension triple.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub const fn new(m: u32, n: u32, k: u32) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GEMM dimensions must be positive");
        GemmDims { m, n, k }
    }

    /// Output elements (`M * N`).
    pub const fn out_elems(&self) -> u64 {
        self.m as u64 * self.n as u64
    }

    /// Total multiply-accumulate flops (`2 M N K`).
    pub const fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// A GEMM kernel configuration: tile shape and rasterization order.
///
/// In the real system this comes from the CUTLASS profiler (§5); here
/// [`GemmConfig::choose`] plays that role with a small candidate table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Output tile (threadblock tile) shape.
    pub tile: TileShape,
    /// Threadblock swizzling pattern.
    pub swizzle: Swizzle,
}

/// Candidate tile shapes, largest first (CUTLASS-profiler stand-in).
const TILE_CANDIDATES: [(u32, u32); 4] = [(256, 128), (128, 128), (128, 64), (64, 64)];

impl GemmConfig {
    /// Picks the fastest configuration for a problem on an architecture:
    /// minimize `waves x tile-time` (wave quantization), tie-breaking
    /// toward larger tiles, like the offline profiler step of §4.2.1.
    pub fn choose(dims: GemmDims, arch: &GpuArch) -> GemmConfig {
        let mut best: Option<(u64, TileShape)> = None;
        for &(tm, tn) in &TILE_CANDIDATES {
            let tile = TileShape::new(tm, tn);
            let grid = TileGrid::new(dims.m, dims.n, tile);
            let waves = wave_count(grid.num_tiles(), arch.sm_count);
            // Cost: waves x per-tile time — captures both wave
            // quantization waste and the small-tile efficiency penalty.
            // Larger tiles win ties because candidates are ordered
            // largest first and the comparison is strict.
            let cost = waves as u64 * tile_duration(dims.k, tile, arch).as_nanos();
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, tile));
            }
        }
        let (_, tile) = best.expect("candidate table is non-empty");
        let grid = TileGrid::new(dims.m, dims.n, tile);
        GemmConfig {
            tile,
            swizzle: Swizzle::Strip {
                width: grid.tiles_n().clamp(1, 4),
            },
        }
    }

    /// The tile grid this configuration induces for `dims`.
    pub fn grid(&self, dims: GemmDims) -> TileGrid {
        TileGrid::new(dims.m, dims.n, self.tile)
    }
}

/// Duration of one tile's main loop (== one wave) at depth `k`.
///
/// Small tiles sustain a lower fraction of peak (operand reuse shrinks
/// with the tile), modelled by the `tile_eff_half` saturation term.
pub fn tile_duration(k: u32, tile: TileShape, arch: &GpuArch) -> SimDuration {
    let elems = tile.elems() as f64;
    let tile_eff = elems / (elems + arch.tile_eff_half);
    let flops = 2.0 * elems * k as f64;
    SimDuration::from_secs_f64(flops / (arch.per_sm_flops(k) * tile_eff))
}

/// Static (no-contention) estimate of a GEMM's wave count and duration on
/// `sms` available SMs — the offline `gemm_config.duration` of Alg. 1.
pub fn gemm_estimate(
    dims: GemmDims,
    config: &GemmConfig,
    sms: u32,
    arch: &GpuArch,
) -> (u32, SimDuration) {
    let grid = config.grid(dims);
    let waves = wave_count(grid.num_tiles(), sms.max(1));
    let dur = arch.kernel_launch() + tile_duration(dims.k, config.tile, arch) * waves as u64;
    (waves, dur)
}

/// Writes computed tiles into the output buffer. Implementations choose
/// the layout: address order (plain GEMM) or a reordered packing
/// (FlashOverlap's pre-communication reordering).
pub trait EpilogueWriter {
    /// Writes the computed block of tile `t` into `out`.
    fn write_tile(&self, grid: &TileGrid, t: u32, block: &Matrix, out: &mut [f32]);

    /// Required output buffer length in elements.
    fn out_len(&self, grid: &TileGrid) -> usize {
        grid.m() as usize * grid.n() as usize
    }

    /// The output ranges tile `t` writes, for access monitors. The default
    /// matches the address-order layout (one span per tile row); reordered
    /// writers override this to report their packed destinations.
    fn write_spans(&self, grid: &TileGrid, t: u32) -> Vec<std::ops::Range<usize>> {
        let rows = grid.rows_of(t);
        let cols = grid.cols_of(t);
        let n = grid.n() as usize;
        rows.map(|r| {
            let base = r as usize * n;
            base + cols.start as usize..base + cols.end as usize
        })
        .collect()
    }
}

/// The default epilogue: writes each tile at its natural matrix position,
/// producing a row-major `M x N` output.
#[derive(Debug, Clone, Copy, Default)]
pub struct AddressOrderWriter;

impl EpilogueWriter for AddressOrderWriter {
    fn write_tile(&self, grid: &TileGrid, t: u32, block: &Matrix, out: &mut [f32]) {
        let rows = grid.rows_of(t);
        let cols = grid.cols_of(t);
        let n = grid.n() as usize;
        for (br, r) in rows.enumerate() {
            let dst = r as usize * n + cols.start as usize;
            out[dst..dst + block.cols()].copy_from_slice(block.row(br));
        }
    }
}

/// Epilogue counting-table hook: tile `t` increments slot
/// `group_of_tile[t]` of `table` when it completes.
#[derive(Debug, Clone)]
pub struct CounterHook {
    /// Counting table index on the launching device.
    pub table: usize,
    /// Group id per address-order tile index.
    pub group_of_tile: Rc<Vec<u32>>,
}

/// A tiled GEMM stream kernel.
///
/// Buffers: `a` is `M x K` row-major, `b` is `K x N` row-major, `out` is
/// whatever the writer's layout requires (`M x N` row-major for
/// [`AddressOrderWriter`]).
pub struct GemmKernel {
    /// Input A buffer.
    pub a: BufferId,
    /// Input B buffer.
    pub b: BufferId,
    /// Output buffer.
    pub out: BufferId,
    /// Problem dimensions.
    pub dims: GemmDims,
    /// Kernel configuration.
    pub config: GemmConfig,
    /// Epilogue tile writer.
    pub writer: Rc<dyn EpilogueWriter>,
    /// Optional epilogue counting-table hook.
    pub counter: Option<CounterHook>,
}

impl std::fmt::Debug for GemmKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GemmKernel")
            .field("a", &self.a)
            .field("b", &self.b)
            .field("out", &self.out)
            .field("dims", &self.dims)
            .field("config", &self.config)
            .field("counter", &self.counter)
            .finish_non_exhaustive()
    }
}

impl GemmKernel {
    /// Convenience constructor with the default address-order epilogue and
    /// auto-chosen configuration.
    pub fn plain(a: BufferId, b: BufferId, out: BufferId, dims: GemmDims, arch: &GpuArch) -> Self {
        GemmKernel {
            a,
            b,
            out,
            dims,
            config: GemmConfig::choose(dims, arch),
            writer: Rc::new(AddressOrderWriter),
            counter: None,
        }
    }
}

struct GemmRun {
    device: DeviceId,
    a: BufferId,
    b: BufferId,
    out: BufferId,
    dims: GemmDims,
    grid: TileGrid,
    tile_dur: SimDuration,
    issue: Vec<u32>,
    next: usize,
    wave_idx: u32,
    writer: Rc<dyn EpilogueWriter>,
    counter: Option<CounterHook>,
    completion: Completion,
}

impl Kernel for GemmKernel {
    fn launch(self: Box<Self>, ctx: LaunchCtx, world: &mut Cluster, sim: &mut ClusterSim) {
        let arch = world.devices[ctx.device].arch.clone();
        let grid = self.config.grid(self.dims);
        // Per-launch execution noise (positive only): clocks never beat
        // the model.
        let noise = 1.0
            + world.devices[ctx.device]
                .rng
                .uniform(0.0, world.noise.gemm_frac.max(0.0));
        let run = GemmRun {
            device: ctx.device,
            a: self.a,
            b: self.b,
            out: self.out,
            dims: self.dims,
            grid,
            tile_dur: tile_duration(self.dims.k, self.config.tile, &arch).mul_f64(noise),
            issue: self.config.swizzle.issue_order(&grid),
            next: 0,
            wave_idx: 0,
            writer: self.writer,
            counter: self.counter,
            completion: ctx.completion,
        };
        if world.functional {
            let mem = &world.devices[ctx.device].mem;
            assert_eq!(
                mem.len_of(self.a),
                (self.dims.m * self.dims.k) as usize,
                "A buffer length mismatch"
            );
            assert_eq!(
                mem.len_of(self.b),
                (self.dims.k * self.dims.n) as usize,
                "B buffer length mismatch"
            );
            assert!(
                mem.len_of(self.out) >= run.writer.out_len(&run.grid),
                "output buffer too small for epilogue writer"
            );
        }
        let launch = world.devices[ctx.device].arch.kernel_launch();
        sim.schedule_in(launch, move |w, s| start_wave(run, w, s));
    }

    fn name(&self) -> &'static str {
        "gemm"
    }

    fn span_meta(&self) -> SpanMeta {
        // The realized (contended) wave count is unknown at launch; the
        // retire path overwrites `waves` with the runtime value.
        SpanMeta::Gemm {
            tiles: self.config.grid(self.dims).num_tiles(),
            waves: 0,
        }
    }
}

fn start_wave(run: GemmRun, world: &mut Cluster, sim: &mut ClusterSim) {
    // SM availability is sampled at wave start: communication kernels and
    // other compute kernels that arrived since the previous wave shrink
    // this wave. The wave holds its SMs until it retires, so concurrent
    // GEMMs (e.g. micro-batch co-execution) genuinely share the machine.
    let device = &mut world.devices[run.device];
    let avail = device.avail_sms_for_compute() as usize;
    let count = avail.min(run.issue.len() - run.next);
    device.occupy_compute_sms(count as u32);
    world.notify_sm_occupancy(sim.now(), run.device);
    let dur = run.tile_dur;
    sim.schedule_in(dur, move |w, s| finish_wave(run, count, w, s));
}

fn finish_wave(mut run: GemmRun, count: usize, world: &mut Cluster, sim: &mut ClusterSim) {
    world.devices[run.device].release_compute_sms(count as u32);
    world.notify_sm_occupancy(sim.now(), run.device);
    let wave_tiles: Vec<u32> = run.issue[run.next..run.next + count].to_vec();

    // Access monitoring: report each tile's epilogue writes at the wave
    // boundary (emitted in timing mode too — the sanitizer tracks ranges,
    // not values).
    if let Some(monitor) = world.monitor.as_deref() {
        let stream = run.completion.stream();
        for &t in &wave_tiles {
            for range in run.writer.write_spans(&run.grid, t) {
                monitor.on_access(&crate::monitor::Access {
                    device: run.device,
                    stream,
                    buffer: run.out,
                    range,
                    kind: crate::monitor::AccessKind::Write,
                    scope: crate::monitor::AccessScope::TileWrite,
                    tile: Some(t),
                });
            }
        }
    }

    // Functional epilogue: compute each tile's block and write it through
    // the epilogue writer.
    if world.functional {
        for &t in &wave_tiles {
            let block = {
                let mem = &world.devices[run.device].mem;
                compute_tile_block(mem.data(run.a), mem.data(run.b), run.dims, &run.grid, t)
            };
            let mem = &mut world.devices[run.device].mem;
            run.writer
                .write_tile(&run.grid, t, &block, mem.data_mut(run.out));
        }
    }

    // Trace: tiles of a wave complete within a small jitter window before
    // the wave boundary (§3.2.3: "typically within 5% of the wave
    // duration").
    if world.tile_trace.is_some() {
        let jitter_frac = world.devices[run.device].arch.wave_jitter_frac;
        let span = run.tile_dur.as_secs_f64() * jitter_frac;
        let mut records = Vec::with_capacity(wave_tiles.len());
        for (i, &t) in wave_tiles.iter().enumerate() {
            // The last tile of the wave lands exactly on the boundary.
            let jitter = if i + 1 == wave_tiles.len() {
                SimDuration::ZERO
            } else {
                let f = world.devices[run.device].rng.uniform(0.0, span);
                SimDuration::from_secs_f64(f)
            };
            let at = sim.now().duration_since(sim::SimTime::ZERO);
            let at = sim::SimTime::ZERO + at.saturating_sub(jitter);
            records.push((
                at,
                TileCompletion {
                    device: run.device,
                    tile: t,
                    wave: run.wave_idx,
                },
            ));
        }
        if let Some(trace) = world.tile_trace.as_mut() {
            for (at, rec) in records {
                trace.record(at, rec);
            }
        }
    }

    // Epilogue signaling: bump the counting table per finished tile and
    // wake any satisfied signaling kernels (with their polling delay).
    if let Some(hook) = run.counter.clone() {
        let monitor = world.monitor.clone();
        let stream = run.completion.stream();
        let device = run.device;
        let table_idx = hook.table;
        let mut woken = Vec::new();
        for &t in &wave_tiles {
            let group = hook.group_of_tile[t as usize] as usize;
            // Fault injection: an armed fault can drop or delay this
            // increment (the tile's data write above is unaffected — only
            // the signal misbehaves, as when a real epilogue's atomic is
            // lost or lands late across an incoherent interconnect).
            let fault = world.devices[device].counters[table_idx].take_increment_fault(group);
            match fault {
                Some(crate::counter::IncrementFault::Dropped) => {
                    world.notify_runtime_event(&crate::monitor::RuntimeEvent {
                        at: sim.now(),
                        device,
                        kind: crate::monitor::RuntimeEventKind::FaultInjected,
                        group: Some(group),
                        detail: format!("dropped counter increment (tile {t})"),
                    });
                    continue;
                }
                Some(crate::counter::IncrementFault::Delayed(by)) => {
                    world.notify_runtime_event(&crate::monitor::RuntimeEvent {
                        at: sim.now(),
                        device,
                        kind: crate::monitor::RuntimeEventKind::FaultInjected,
                        group: Some(group),
                        detail: format!("delayed counter increment by {by:?} (tile {t})"),
                    });
                    sim.schedule_in(by, move |w, s| {
                        if let Some(monitor) = w.monitor.as_deref() {
                            monitor.on_counter_increment(
                                s.now(),
                                device,
                                stream,
                                table_idx,
                                group,
                                1,
                            );
                        }
                        let late = w.devices[device].counters[table_idx].increment(group, 1);
                        crate::stream::wake_counter_waiters(w, s, device, table_idx, late);
                    });
                    continue;
                }
                None => {}
            }
            if let Some(monitor) = monitor.as_deref() {
                monitor.on_counter_increment(sim.now(), device, stream, table_idx, group, 1);
            }
            let table = &mut world.devices[device].counters[table_idx];
            woken.extend(table.increment(group, 1));
        }
        crate::stream::wake_counter_waiters(world, sim, device, table_idx, woken);
    }

    run.next += count;
    run.wave_idx += 1;
    if run.next == run.issue.len() {
        // Overwrite the launch-time placeholder with the realized wave
        // count before the span retires (contention can stretch the
        // schedule past the static estimate).
        if world.op_spans.is_some() {
            let st = &mut world.devices[run.device].streams[run.completion.stream()];
            if let Some((_, meta, _)) = st.current.as_mut() {
                *meta = SpanMeta::Gemm {
                    tiles: run.grid.num_tiles(),
                    waves: run.wave_idx,
                };
            }
        }
        run.completion.finish(world, sim);
    } else {
        start_wave(run, world, sim);
    }
}

/// Computes the output block of tile `t`: `A[rows, :] x B[:, cols]`.
fn compute_tile_block(a: &[f32], b: &[f32], dims: GemmDims, grid: &TileGrid, t: u32) -> Matrix {
    let rows = grid.rows_of(t);
    let cols = grid.cols_of(t);
    let (k, n) = (dims.k as usize, dims.n as usize);
    let mut block = Matrix::zeros(
        (rows.end - rows.start) as usize,
        (cols.end - cols.start) as usize,
    );
    for (br, r) in rows.clone().enumerate() {
        let a_row = &a[r as usize * k..(r as usize + 1) * k];
        let out_row = block.row_mut(br);
        for (p, &a_rp) in a_row.iter().enumerate() {
            let b_row = &b[p * n..p * n + n];
            for (bc, c) in cols.clone().enumerate() {
                out_row[bc] += a_rp * b_row[c as usize];
            }
        }
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::stream::{enqueue, Callback, Delay};
    use sim::{DetRng, Sim};
    use tensor::{allclose, gemm};

    fn functional_cluster() -> (Cluster, ClusterSim) {
        (Cluster::new(1, GpuArch::rtx4090(), true, 42), Sim::new())
    }

    fn run_gemm(dims: GemmDims, config: Option<GemmConfig>) -> (Matrix, SimDuration) {
        let (mut world, mut sim) = functional_cluster();
        let mut rng = DetRng::new(9);
        let a = Matrix::random(dims.m as usize, dims.k as usize, &mut rng);
        let b = Matrix::random(dims.k as usize, dims.n as usize, &mut rng);
        let dev = &mut world.devices[0];
        let a_id = dev.mem.alloc_init(a.as_slice());
        let b_id = dev.mem.alloc_init(b.as_slice());
        let out_id = dev.mem.alloc((dims.m * dims.n) as usize);
        let stream = dev.create_stream();
        let mut kernel = GemmKernel::plain(a_id, b_id, out_id, dims, &world.devices[0].arch);
        if let Some(c) = config {
            kernel.config = c;
        }
        enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
        let end = sim.run(&mut world).unwrap();
        let out = Matrix::from_vec(
            dims.m as usize,
            dims.n as usize,
            world.devices[0].mem.snapshot(out_id),
        );
        let expected = gemm(&a, &b);
        assert!(allclose(&out, &expected, 1e-3), "GEMM output wrong");
        (out, end - sim::SimTime::ZERO)
    }

    #[test]
    fn functional_gemm_matches_reference_exact_tiles() {
        let dims = GemmDims::new(64, 96, 32);
        let config = GemmConfig {
            tile: TileShape::new(16, 16),
            swizzle: Swizzle::Strip { width: 2 },
        };
        run_gemm(dims, Some(config));
    }

    #[test]
    fn functional_gemm_matches_reference_ragged_tiles() {
        let dims = GemmDims::new(50, 70, 24);
        let config = GemmConfig {
            tile: TileShape::new(16, 32),
            swizzle: Swizzle::Strip { width: 3 },
        };
        run_gemm(dims, Some(config));
    }

    #[test]
    fn functional_gemm_matches_reference_identity_swizzle() {
        let dims = GemmDims::new(48, 48, 16);
        let config = GemmConfig {
            tile: TileShape::new(16, 16),
            swizzle: Swizzle::Identity,
        };
        run_gemm(dims, Some(config));
    }

    #[test]
    fn duration_matches_static_estimate_without_contention() {
        let dims = GemmDims::new(2048, 8192, 8192);
        let (mut world, mut sim) = (Cluster::new(1, GpuArch::rtx4090(), false, 1), Sim::new());
        let dev = &mut world.devices[0];
        let a = dev.mem.alloc((dims.m * dims.k) as usize);
        let b = dev.mem.alloc((dims.k * dims.n) as usize);
        let out = dev.mem.alloc((dims.m * dims.n) as usize);
        let stream = dev.create_stream();
        let arch = world.devices[0].arch.clone();
        let kernel = GemmKernel::plain(a, b, out, dims, &arch);
        let config = kernel.config;
        enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
        let end = sim.run(&mut world).unwrap();
        let (waves, est) = gemm_estimate(dims, &config, arch.sm_count, &arch);
        assert_eq!(waves, 4, "paper example: 512 tiles / 128 SMs");
        assert_eq!(end.as_nanos(), est.as_nanos());
    }

    #[test]
    fn sm_contention_slows_gemm() {
        let dims = GemmDims::new(2048, 8192, 4096);
        let mut durations = Vec::new();
        for comm_sms in [0u32, 64] {
            let mut world = Cluster::new(1, GpuArch::rtx4090(), false, 1);
            let mut sim: ClusterSim = Sim::new();
            let dev = &mut world.devices[0];
            dev.occupy_comm_sms(comm_sms);
            let a = dev.mem.alloc(1);
            let b = dev.mem.alloc(1);
            let out = dev.mem.alloc(1);
            let stream = dev.create_stream();
            let arch = world.devices[0].arch.clone();
            let kernel = GemmKernel::plain(a, b, out, dims, &arch);
            enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
            durations.push(sim.run(&mut world).unwrap().as_nanos());
        }
        assert!(
            durations[1] > durations[0],
            "contended GEMM should be slower: {durations:?}"
        );
    }

    #[test]
    fn mid_run_contention_affects_later_waves() {
        // Occupying SMs halfway through the GEMM stretches only the
        // remaining waves.
        let dims = GemmDims::new(2048, 8192, 4096);
        let arch = GpuArch::rtx4090();
        let config = GemmConfig::choose(dims, &arch);
        let (_, clean) = gemm_estimate(dims, &config, arch.sm_count, &arch);

        let mut world = Cluster::new(1, arch.clone(), false, 1);
        let mut sim: ClusterSim = Sim::new();
        let dev = &mut world.devices[0];
        let a = dev.mem.alloc(1);
        let b = dev.mem.alloc(1);
        let out = dev.mem.alloc(1);
        let s0 = dev.create_stream();
        let s1 = dev.create_stream();
        let kernel = GemmKernel::plain(a, b, out, dims, &arch);
        enqueue(&mut world, &mut sim, 0, s0, Box::new(kernel));
        // Steal half the SMs at 60% of the clean duration.
        enqueue(
            &mut world,
            &mut sim,
            0,
            s1,
            Box::new(Delay(clean.mul_f64(0.6))),
        );
        enqueue(
            &mut world,
            &mut sim,
            0,
            s1,
            Box::new(Callback(Box::new(|w, _| w.devices[0].occupy_comm_sms(64)))),
        );
        let end = sim.run(&mut world).unwrap();
        let stretched = end - sim::SimTime::ZERO;
        assert!(stretched > clean, "late contention should stretch the tail");
        assert!(
            stretched < clean * 2,
            "early waves should be unaffected: {stretched:?} vs {clean:?}"
        );
    }

    #[test]
    fn concurrent_gemms_share_the_machine() {
        // Two identical GEMMs on separate streams must take roughly twice
        // as long as one (they split the SMs), not run for free.
        let dims = GemmDims::new(2048, 8192, 4096);
        let arch = GpuArch::rtx4090();
        let run = |kernels: usize| -> u64 {
            let mut world = Cluster::new(1, arch.clone(), false, 1);
            let mut sim: ClusterSim = Sim::new();
            for _ in 0..kernels {
                let dev = &mut world.devices[0];
                let a = dev.mem.alloc(1);
                let b = dev.mem.alloc(1);
                let out = dev.mem.alloc(1);
                let stream = dev.create_stream();
                let kernel = GemmKernel::plain(a, b, out, dims, &arch);
                enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
            }
            sim.run(&mut world).unwrap().as_nanos()
        };
        let one = run(1);
        let two = run(2);
        let ratio = two as f64 / one as f64;
        assert!(
            (1.5..2.6).contains(&ratio),
            "two concurrent GEMMs took {ratio}x of one"
        );
    }

    #[test]
    fn counter_hook_counts_every_tile() {
        let dims = GemmDims::new(64, 64, 16);
        let config = GemmConfig {
            tile: TileShape::new(16, 16),
            swizzle: Swizzle::Strip { width: 2 },
        };
        let mut world = Cluster::new(1, GpuArch::rtx4090(), true, 3);
        let mut sim: ClusterSim = Sim::new();
        let mut rng = DetRng::new(5);
        let a = Matrix::random(64, 16, &mut rng);
        let b = Matrix::random(16, 64, &mut rng);
        let dev = &mut world.devices[0];
        let a_id = dev.mem.alloc_init(a.as_slice());
        let b_id = dev.mem.alloc_init(b.as_slice());
        let out = dev.mem.alloc(64 * 64);
        let stream = dev.create_stream();
        let table = dev.create_counter(2);
        // Even tiles to group 0, odd tiles to group 1.
        let grid = config.grid(dims);
        let groups: Vec<u32> = (0..grid.num_tiles()).map(|t| t % 2).collect();
        let arch = world.devices[0].arch.clone();
        let mut kernel = GemmKernel::plain(a_id, b_id, out, dims, &arch);
        kernel.config = config;
        kernel.counter = Some(CounterHook {
            table,
            group_of_tile: Rc::new(groups),
        });
        enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
        sim.run(&mut world).unwrap();
        let total = grid.num_tiles();
        assert_eq!(world.devices[0].counter(table).count(0), total / 2);
        assert_eq!(world.devices[0].counter(table).count(1), total / 2);
    }

    #[test]
    fn dropped_increment_fault_loses_exactly_that_many_signals() {
        let dims = GemmDims::new(64, 64, 16);
        let config = GemmConfig {
            tile: TileShape::new(16, 16),
            swizzle: Swizzle::Strip { width: 2 },
        };
        let mut world = Cluster::new(1, GpuArch::rtx4090(), false, 3);
        let mut sim: ClusterSim = Sim::new();
        let dev = &mut world.devices[0];
        let a_id = dev.mem.alloc(1);
        let b_id = dev.mem.alloc(1);
        let out = dev.mem.alloc(1);
        let stream = dev.create_stream();
        let table = dev.create_counter(2);
        dev.counters[table].arm_fault(1, crate::counter::IncrementFault::Dropped, 3);
        let grid = config.grid(dims);
        let groups: Vec<u32> = (0..grid.num_tiles()).map(|t| t % 2).collect();
        let arch = world.devices[0].arch.clone();
        let mut kernel = GemmKernel::plain(a_id, b_id, out, dims, &arch);
        kernel.config = config;
        kernel.counter = Some(CounterHook {
            table,
            group_of_tile: Rc::new(groups),
        });
        enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
        sim.run(&mut world).unwrap();
        let total = grid.num_tiles();
        assert_eq!(world.devices[0].counter(table).count(0), total / 2);
        assert_eq!(world.devices[0].counter(table).count(1), total / 2 - 3);
    }

    #[test]
    fn delayed_increment_fault_lands_late_but_completely() {
        let dims = GemmDims::new(64, 64, 16);
        let config = GemmConfig {
            tile: TileShape::new(16, 16),
            swizzle: Swizzle::Strip { width: 2 },
        };
        let run = |delayed: u32| -> (u32, u64) {
            let mut world = Cluster::new(1, GpuArch::rtx4090(), false, 3);
            let mut sim: ClusterSim = Sim::new();
            let dev = &mut world.devices[0];
            let a_id = dev.mem.alloc(1);
            let b_id = dev.mem.alloc(1);
            let out = dev.mem.alloc(1);
            let stream = dev.create_stream();
            let table = dev.create_counter(1);
            dev.counters[table].arm_fault(
                0,
                crate::counter::IncrementFault::Delayed(SimDuration::from_micros(50)),
                delayed,
            );
            let grid = config.grid(dims);
            let groups: Vec<u32> = (0..grid.num_tiles()).map(|_| 0).collect();
            let arch = world.devices[0].arch.clone();
            let mut kernel = GemmKernel::plain(a_id, b_id, out, dims, &arch);
            kernel.config = config;
            kernel.counter = Some(CounterHook {
                table,
                group_of_tile: Rc::new(groups),
            });
            enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
            let end = sim.run(&mut world).unwrap();
            (world.devices[0].counter(table).count(0), end.as_nanos())
        };
        let (clean_count, clean_end) = run(0);
        let (count, end) = run(2);
        assert_eq!(count, clean_count, "delayed increments still land");
        assert!(
            end >= clean_end + SimDuration::from_micros(50).as_nanos(),
            "delayed increment should push the drain time: {end} vs {clean_end}"
        );
    }

    #[test]
    fn tile_trace_records_waves() {
        let dims = GemmDims::new(64, 64, 16);
        let mut world = Cluster::new(1, GpuArch::rtx4090(), false, 3);
        world.enable_tile_trace();
        let mut sim: ClusterSim = Sim::new();
        let dev = &mut world.devices[0];
        let a = dev.mem.alloc(1);
        let b = dev.mem.alloc(1);
        let out = dev.mem.alloc(1);
        let stream = dev.create_stream();
        let arch = world.devices[0].arch.clone();
        let config = GemmConfig {
            tile: TileShape::new(16, 16),
            swizzle: Swizzle::Strip { width: 2 },
        };
        let mut kernel = GemmKernel::plain(a, b, out, dims, &arch);
        kernel.config = config;
        enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
        sim.run(&mut world).unwrap();
        let trace = world.tile_trace.as_ref().unwrap();
        // 16 tiles on 128 SMs: a single wave.
        assert_eq!(trace.len(), 16);
        assert!(trace.entries().iter().all(|(_, r)| r.wave == 0));
    }

    #[test]
    fn gemm_noise_is_positive_and_bounded() {
        let dims = GemmDims::new(2048, 4096, 4096);
        let arch = GpuArch::rtx4090();
        let config = GemmConfig::choose(dims, &arch);
        let (_, clean) = gemm_estimate(dims, &config, arch.sm_count, &arch);
        let mut noisy_durations = Vec::new();
        for seed in 0..8u64 {
            let mut world = Cluster::new(1, arch.clone(), false, seed);
            world.noise = crate::cluster::NoiseSpec {
                gemm_frac: 0.05,
                comm_frac: 0.0,
            };
            let mut sim: ClusterSim = Sim::new();
            let dev = &mut world.devices[0];
            let a = dev.mem.alloc(1);
            let b = dev.mem.alloc(1);
            let out = dev.mem.alloc(1);
            let stream = dev.create_stream();
            let mut kernel = GemmKernel::plain(a, b, out, dims, &arch);
            kernel.config = config;
            enqueue(&mut world, &mut sim, 0, stream, Box::new(kernel));
            noisy_durations.push(sim.run(&mut world).unwrap().as_nanos());
        }
        for &d in &noisy_durations {
            assert!(d >= clean.as_nanos(), "noise must never speed up");
            assert!(
                d <= clean.mul_f64(1.06).as_nanos(),
                "noise bounded by the configured fraction"
            );
        }
        // Seeds differ, so durations should not all coincide.
        let distinct: std::collections::HashSet<u64> = noisy_durations.iter().copied().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn config_choose_prefers_large_tiles_on_big_shapes() {
        let arch = GpuArch::rtx4090();
        let config = GemmConfig::choose(GemmDims::new(4096, 8192, 8192), &arch);
        assert_eq!(config.tile, TileShape::new(256, 128));
        let grid = config.grid(GemmDims::new(4096, 8192, 8192));
        assert_eq!(grid.num_tiles(), 1024);
    }

    #[test]
    fn config_choose_shrinks_tiles_for_small_m() {
        let arch = GpuArch::rtx4090();
        let config = GemmConfig::choose(GemmDims::new(128, 4096, 4096), &arch);
        // 256-row tiles would waste half of every tile; a smaller tile
        // must win.
        assert!(config.tile.m <= 128);
    }

    #[test]
    fn tile_duration_scales_with_k() {
        let arch = GpuArch::rtx4090();
        let tile = TileShape::new(128, 128);
        let d1 = tile_duration(2048, tile, &arch);
        let d2 = tile_duration(4096, tile, &arch);
        assert!(d2 > d1);
        // Near-linear at large K (efficiency saturates).
        let ratio = d2.as_secs_f64() / d1.as_secs_f64();
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }
}
