//! Simulated multi-GPU substrate.
//!
//! This crate plays the role CUDA + CUTLASS play for the real FlashOverlap:
//! it provides devices with streaming multiprocessors, device memory,
//! CUDA-like streams and events, a tiled GEMM kernel whose tiles execute in
//! waves (with block swizzling and per-tile completion jitter), counting
//! tables the GEMM epilogue can signal through, and element-wise kernels
//! that can fuse a remapping gather. Timing is modelled; data movement is
//! real (`f32` buffers) when a cluster runs in functional mode, so
//! correctness can be verified end to end against the `tensor` oracle.
//!
//! Layering: this crate is pure *mechanism*. Policy — which tiles form a
//! group, what order tiles are packed in, when to call a collective — lives
//! in the `flashoverlap` crate, exactly as the paper layers its runtime on
//! top of stock CUDA machinery.

#![warn(missing_docs)]

pub mod arch;
pub mod cluster;
pub mod counter;
pub mod device;
pub mod elementwise;
pub mod gemm;
pub mod memory;
pub mod monitor;
pub mod stream;
pub mod swizzle;
pub mod tile;
pub mod wave;

pub use arch::GpuArch;
pub use cluster::{Cluster, CommFault, OpSpan, SpanMeta, StuckWait, TileCompletion};
pub use counter::IncrementFault;
pub use device::{Device, DeviceId};
pub use memory::BufferId;
pub use monitor::{
    Access, AccessKind, AccessScope, ClusterMonitor, LinkTransfer, RuntimeEvent, RuntimeEventKind,
};
pub use stream::{Completion, GpuEventId, Kernel, LaunchCtx, StreamId};
pub use tile::{TileGrid, TileShape};
pub use wave::WaveSchedule;

/// The simulator type specialized to a GPU cluster world.
pub type ClusterSim = sim::Sim<Cluster>;
