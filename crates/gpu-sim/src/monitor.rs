//! Observation hooks for dynamic analysis tools.
//!
//! A [`ClusterMonitor`] attached to a [`Cluster`](crate::cluster::Cluster)
//! sees every modelled memory access and every synchronization edge the
//! simulated program creates: GEMM epilogue tile writes, counting-table
//! increments and satisfied signal waits (§3.2.4/§5), event record/wait
//! pairs, collective send/recv accesses, and collective rendezvous points.
//! The `simsan` crate builds its vector-clock happens-before checker on
//! these callbacks; the hooks themselves are policy-free and cost nothing
//! when no monitor is attached.
//!
//! All callbacks take `&self`: monitors keep interior-mutable state and are
//! shared through `Rc`, like the event probes of [`sim::EngineProbe`].

use std::ops::Range;

use sim::SimTime;

use crate::device::DeviceId;
use crate::memory::BufferId;
use crate::stream::{GpuEventId, StreamId};

/// Whether an access reads or writes the buffer range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The range is read.
    Read,
    /// The range is written.
    Write,
}

/// What part of the modelled program produced an access. Used by
/// sanitizers to classify findings (a tile write racing a collective send
/// is a use-before-signal; everything else is a generic data race).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessScope {
    /// GEMM epilogue writing a finished tile (possibly reordered).
    TileWrite,
    /// A collective reading its local send regions on arrival.
    CollectiveSend,
    /// A collective writing its local recv regions on completion.
    CollectiveRecv,
    /// An element-wise kernel reading (possibly remap-gathering) its input.
    RemapRead,
    /// An element-wise kernel writing its output.
    ElementwiseWrite,
}

/// One modelled memory access. Buffers are per-device, so `(device,
/// buffer)` identifies the storage and `(device, stream)` identifies the
/// logical thread that touched it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Device owning the buffer (and issuing the access).
    pub device: DeviceId,
    /// Stream the accessing operation runs on.
    pub stream: StreamId,
    /// The buffer.
    pub buffer: BufferId,
    /// Element range within the buffer.
    pub range: Range<usize>,
    /// Read or write.
    pub kind: AccessKind,
    /// Producing operation class.
    pub scope: AccessScope,
    /// Address-order tile index, when the access belongs to one tile.
    pub tile: Option<u32>,
}

/// One modelled bulk transfer over an inter-GPU link. Collectives emit one
/// interval per (src, dst) link they keep busy, so telemetry can derive
/// per-link bandwidth-utilization timelines (Fig. 8-style curves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTransfer {
    /// Device the bytes leave.
    pub src: DeviceId,
    /// Device the bytes arrive at.
    pub dst: DeviceId,
    /// Bytes moved over this link during the interval.
    pub bytes: u64,
    /// Transfer start (simulated time).
    pub start: SimTime,
    /// Transfer end (simulated time).
    pub end: SimTime,
}

/// The class of a fault-injection or watchdog-recovery occurrence, so
/// traces can distinguish the injected cause from the runtime's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeEventKind {
    /// A fault fired: an injected misbehaviour took effect (dropped or
    /// delayed increment, link stall/degradation, straggler SMs, slow
    /// rank).
    FaultInjected,
    /// A watchdog deadline expired and the runtime escalated.
    WatchdogFired,
    /// Leftover armed fault budget was disarmed before a counting table
    /// was handed to the next same-parity chain segment (the
    /// table-quarantine rule: a fault armed for segment `k` must not
    /// leak into segment `k + 2`).
    FaultQuarantined,
    /// A starved group was recovered through the tail-collective path.
    TailRecovery,
    /// The overlap plan was abandoned; remaining output completed via
    /// bulk non-overlapped collectives.
    DegradedFallback,
}

/// One fault or recovery occurrence, reported by the fault-injection
/// seams and the watchdog so telemetry can place instant events on the
/// trace timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeEvent {
    /// When the event took effect (simulated time).
    pub at: SimTime,
    /// The device the event concerns.
    pub device: DeviceId,
    /// Fault or recovery class.
    pub kind: RuntimeEventKind,
    /// The counter group concerned, when the event targets one.
    pub group: Option<usize>,
    /// Human-readable description (cause, parameters).
    pub detail: String,
}

/// Observer of simulated memory accesses and synchronization edges.
///
/// Default implementations ignore everything, so monitors override only
/// the callbacks they need. Callbacks fire *at the simulated time the
/// modelled effect takes place* (e.g. a parked signal wait is reported
/// when the increment releases it, not when it was enqueued); `at` carries
/// that time so monitors need no access to the engine clock.
pub trait ClusterMonitor {
    /// A buffer range was read or written.
    fn on_access(&self, _access: &Access) {}

    /// A counting-table slot was incremented (GEMM epilogue, §3.2.4).
    fn on_counter_increment(
        &self,
        _at: SimTime,
        _device: DeviceId,
        _stream: StreamId,
        _table: usize,
        _group: usize,
        _by: u32,
    ) {
    }

    /// A signal wait on a counting-table slot was satisfied.
    fn on_counter_satisfied(
        &self,
        _at: SimTime,
        _device: DeviceId,
        _stream: StreamId,
        _table: usize,
        _group: usize,
        _threshold: u32,
    ) {
    }

    /// An event was recorded on a stream.
    fn on_event_record(
        &self,
        _at: SimTime,
        _device: DeviceId,
        _stream: StreamId,
        _event: GpuEventId,
    ) {
    }

    /// A stream's wait on a recorded event was satisfied.
    fn on_event_wait(
        &self,
        _at: SimTime,
        _device: DeviceId,
        _stream: StreamId,
        _event: GpuEventId,
    ) {
    }

    /// All ranks of a collective arrived; the listed `(device, stream)`
    /// threads synchronize with each other at this point.
    fn on_rendezvous(&self, _at: SimTime, _participants: &[(DeviceId, StreamId)]) {}

    /// A collective (or peer copy) occupies an inter-GPU link for the
    /// reported interval. Fired when the transfer is scheduled, which may
    /// be before `transfer.end` arrives on the simulated clock.
    fn on_link_transfer(&self, _transfer: &LinkTransfer) {}

    /// A device's SM allocation changed: `compute_sms` and `comm_sms` are
    /// the occupancy totals *after* the change took effect at `at`.
    fn on_sm_occupancy(&self, _at: SimTime, _device: DeviceId, _compute_sms: u32, _comm_sms: u32) {}

    /// A fault was injected or the watchdog performed a recovery action.
    fn on_runtime_event(&self, _event: &RuntimeEvent) {}

    /// A counting table was reset for reuse (steady-state double
    /// buffering): all slot counts returned to zero, starting a new epoch
    /// for every `(table, group)` label on `device`.
    fn on_counter_reset(&self, _at: SimTime, _device: DeviceId, _stream: StreamId, _table: usize) {}
}
