//! GPU architecture specifications.

use sim::SimDuration;

/// The remap granularities an element-wise kernel can fuse (§3.3, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemapGranularity {
    /// Whole output tiles are gathered (AllReduce reordering).
    Tile,
    /// Row-interleaved sub-tiles are gathered (ReduceScatter reordering).
    Subtile,
    /// Individual token rows are gathered (All-to-All reordering).
    Token,
}

/// A GPU architecture model.
///
/// Only first-order properties matter for the paper's mechanism: how many
/// tiles execute concurrently (one per SM), how long one tile's main loop
/// takes, how big kernel-launch and signal-poll latencies are, and how much
/// a fused remap degrades an element-wise kernel. The two presets are
/// calibrated to the evaluation platforms.
#[derive(Debug, Clone)]
pub struct GpuArch {
    /// Marketing name, e.g. "RTX4090".
    pub name: &'static str,
    /// Number of streaming multiprocessors; one GEMM tile runs per SM, so
    /// this is the wave width (§2.1.1).
    pub sm_count: u32,
    /// Peak fp16 Tensor-Core throughput in TFLOPS.
    pub fp16_tflops: f64,
    /// Sustained fraction of peak a well-tuned GEMM reaches at large K.
    pub gemm_eff_max: f64,
    /// K value at which GEMM efficiency reaches half of `gemm_eff_max`
    /// (prologue/epilogue amortization along the main loop).
    pub gemm_k_half: f64,
    /// Kernel launch latency in nanoseconds.
    pub kernel_launch_ns: u64,
    /// Device-memory bandwidth in GB/s (element-wise kernel speed).
    pub mem_gbps: f64,
    /// Polling quantum of the signaling kernel in nanoseconds: a counter
    /// that reaches its threshold is observed up to this much later.
    pub signal_poll_ns: u64,
    /// Effective contiguous-run gap cost (bytes) of the remap gather
    /// model; see [`GpuArch::remap_penalty`].
    pub remap_gap_bytes: f64,
    /// Architecture-specific cost scale of irregular gathers.
    pub remap_irregularity: f64,
    /// Tile-size efficiency half-point in elements: a tile of `e`
    /// elements sustains `e / (e + tile_eff_half)` of the large-tile
    /// throughput (small tiles reuse operands poorly).
    pub tile_eff_half: f64,
    /// Per-tile completion jitter as a fraction of the wave duration
    /// (tiles of a wave complete "typically within 5% of the wave
    /// duration", §3.2.3).
    pub wave_jitter_frac: f64,
}

impl GpuArch {
    /// NVIDIA RTX 4090 (Ada, consumer): 128 SMs, ~165 TFLOPS fp16.
    pub fn rtx4090() -> Self {
        GpuArch {
            name: "RTX4090",
            sm_count: 128,
            fp16_tflops: 165.0,
            gemm_eff_max: 0.72,
            gemm_k_half: 384.0,
            kernel_launch_ns: 4_000,
            mem_gbps: 1_008.0,
            signal_poll_ns: 1_500,
            remap_gap_bytes: 1_024.0,
            remap_irregularity: 0.085,
            tile_eff_half: 4_096.0,
            wave_jitter_frac: 0.05,
        }
    }

    /// NVIDIA A800 (Ampere, data-center): 108 SMs, ~312 TFLOPS fp16.
    pub fn a800() -> Self {
        GpuArch {
            name: "A800",
            sm_count: 108,
            fp16_tflops: 312.0,
            gemm_eff_max: 0.78,
            gemm_k_half: 512.0,
            kernel_launch_ns: 3_000,
            mem_gbps: 2_039.0,
            signal_poll_ns: 1_200,
            remap_gap_bytes: 1_024.0,
            remap_irregularity: 0.16,
            tile_eff_half: 4_096.0,
            wave_jitter_frac: 0.05,
        }
    }

    /// Effective GEMM flop throughput (fraction of peak) at accumulation
    /// depth `k`: short main loops amortize prologue/epilogue poorly.
    pub fn gemm_efficiency(&self, k: u32) -> f64 {
        let k = k as f64;
        self.gemm_eff_max * k / (k + self.gemm_k_half)
    }

    /// Sustained per-SM flop rate (flops/sec) at accumulation depth `k`.
    pub fn per_sm_flops(&self, k: u32) -> f64 {
        self.fp16_tflops * 1e12 * self.gemm_efficiency(k) / self.sm_count as f64
    }

    /// Kernel launch latency as a duration.
    pub fn kernel_launch(&self) -> SimDuration {
        SimDuration::from_nanos(self.kernel_launch_ns)
    }

    /// Fractional latency increase a fused remap adds to an element-wise
    /// kernel at a given granularity (reproduces the Table 4 overhead
    /// band).
    ///
    /// Model: the gather breaks the kernel's streaming access into
    /// contiguous runs of `run_bytes`; each run boundary costs an
    /// architecture-specific re-activation overhead, giving a penalty of
    /// `irregularity * gap / (gap + run)`.
    pub fn remap_penalty(&self, granularity: RemapGranularity) -> f64 {
        let run_bytes = match granularity {
            RemapGranularity::Tile => 2_048.0,
            RemapGranularity::Subtile => 512.0,
            RemapGranularity::Token => 256.0,
        };
        self.remap_irregularity * self.remap_gap_bytes / (self.remap_gap_bytes + run_bytes)
    }

    /// Time for an element-wise kernel that reads and writes `bytes_moved`
    /// total, with an optional fused remap.
    pub fn elementwise_time(
        &self,
        bytes_moved: u64,
        remap: Option<RemapGranularity>,
    ) -> SimDuration {
        let base_secs = bytes_moved as f64 / (self.mem_gbps * 1e9);
        let penalty = remap.map_or(0.0, |g| self.remap_penalty(g));
        self.kernel_launch() + SimDuration::from_secs_f64(base_secs * (1.0 + penalty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let r = GpuArch::rtx4090();
        let a = GpuArch::a800();
        assert_eq!(r.sm_count, 128);
        assert_eq!(a.sm_count, 108);
        assert!(a.fp16_tflops > r.fp16_tflops);
        assert!(a.mem_gbps > r.mem_gbps);
    }

    #[test]
    fn gemm_efficiency_increases_with_k() {
        let arch = GpuArch::rtx4090();
        let e1 = arch.gemm_efficiency(512);
        let e2 = arch.gemm_efficiency(4096);
        let e3 = arch.gemm_efficiency(16384);
        assert!(e1 < e2 && e2 < e3);
        assert!(e3 < arch.gemm_eff_max);
        assert!(e3 > 0.9 * arch.gemm_eff_max);
    }

    #[test]
    fn remap_penalty_band_matches_table4() {
        // Table 4 reports 3%-13.4% across granularities and GPUs; the
        // model must land in that band, with finer granularity costing
        // more on a given architecture.
        for arch in [GpuArch::rtx4090(), GpuArch::a800()] {
            let tile = arch.remap_penalty(RemapGranularity::Tile);
            let subtile = arch.remap_penalty(RemapGranularity::Subtile);
            let token = arch.remap_penalty(RemapGranularity::Token);
            assert!(tile < subtile && subtile < token, "{}", arch.name);
            assert!(tile > 0.02, "{}: tile {tile}", arch.name);
            assert!(token < 0.14, "{}: token {token}", arch.name);
        }
    }

    #[test]
    fn elementwise_time_scales_with_bytes() {
        let arch = GpuArch::a800();
        let t1 = arch.elementwise_time(1 << 20, None);
        let t2 = arch.elementwise_time(1 << 24, None);
        assert!(t2 > t1);
        let remapped = arch.elementwise_time(1 << 24, Some(RemapGranularity::Token));
        assert!(remapped > t2);
    }

    #[test]
    fn per_sm_flops_positive_and_below_peak_share() {
        let arch = GpuArch::rtx4090();
        let f = arch.per_sm_flops(8192);
        assert!(f > 0.0);
        assert!(f < arch.fp16_tflops * 1e12 / arch.sm_count as f64);
    }
}
