//! Wave structure of tiled GEMM execution.
//!
//! A *wave* is the set of tiles executing concurrently (§2.1.1): with one
//! tile per SM, the `i`-th wave is the `i`-th chunk of the issue order of
//! width `sm_count`. The wave schedule here is the *planned* (static)
//! schedule used for building mapping tables and predicting latency; the
//! runtime in [`crate::gemm`] re-derives actual wave widths dynamically
//! when communication kernels steal SMs.
//!
//! Mapping-table construction walks these schedules per tile, so unchecked
//! indexing is opted out in favour of explicit bounds handling with the
//! invariants written down at each access.
#![warn(clippy::indexing_slicing)]

/// The planned assignment of tiles to waves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveSchedule {
    waves: Vec<Vec<u32>>,
    wave_of_tile: Vec<u32>,
}

impl WaveSchedule {
    /// Chops a tile issue order into waves of `concurrency` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `concurrency` is zero, `issue_order` is empty, or the
    /// order names a tile index `>= issue_order.len()` (valid orders are
    /// permutations of `0..len`, as produced by
    /// [`crate::swizzle::Swizzle::issue_order`]).
    pub fn new(issue_order: &[u32], concurrency: u32) -> Self {
        assert!(concurrency > 0, "concurrency must be positive");
        assert!(!issue_order.is_empty(), "empty issue order");
        let mut wave_of_tile = vec![0u32; issue_order.len()];
        let waves: Vec<Vec<u32>> = issue_order
            .chunks(concurrency as usize)
            .enumerate()
            .map(|(w, chunk)| {
                for &t in chunk {
                    // In bounds for permutations (t < len); a malformed
                    // order is a caller bug surfaced here.
                    let slot = wave_of_tile
                        .get_mut(t as usize)
                        .expect("issue order names a tile outside 0..len");
                    *slot = w as u32;
                }
                chunk.to_vec()
            })
            .collect();
        WaveSchedule {
            waves,
            wave_of_tile,
        }
    }

    /// Number of waves `T`.
    pub fn num_waves(&self) -> u32 {
        self.waves.len() as u32
    }

    /// Tiles of wave `w`, in issue order.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn wave(&self, w: u32) -> &[u32] {
        self.waves.get(w as usize).expect("wave out of range")
    }

    /// All waves.
    pub fn waves(&self) -> &[Vec<u32>] {
        &self.waves
    }

    /// The wave that tile `t` (address-order index) belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn wave_of(&self, t: u32) -> u32 {
        self.wave_of_tile
            .get(t as usize)
            .copied()
            .expect("tile out of range")
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> u32 {
        self.wave_of_tile.len() as u32
    }

    /// Full-wave width (tiles per non-tail wave).
    pub fn wave_width(&self) -> u32 {
        // The constructor rejects empty issue orders, so at least one
        // wave always exists.
        self.waves
            .first()
            .map(Vec::len)
            .expect("constructor guarantees >= 1 wave") as u32
    }
}

/// Number of waves needed for `tiles` tiles at `concurrency` tiles/wave.
///
/// # Panics
///
/// Panics if `concurrency` is zero.
pub fn wave_count(tiles: u32, concurrency: u32) -> u32 {
    assert!(concurrency > 0, "concurrency must be positive");
    tiles.div_ceil(concurrency)
}

#[cfg(test)]
#[allow(clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::swizzle::Swizzle;
    use crate::tile::{TileGrid, TileShape};

    #[test]
    fn exact_multiple_of_concurrency() {
        let order: Vec<u32> = (0..12).collect();
        let ws = WaveSchedule::new(&order, 4);
        assert_eq!(ws.num_waves(), 3);
        assert_eq!(ws.wave(0), &[0, 1, 2, 3]);
        assert_eq!(ws.wave(2), &[8, 9, 10, 11]);
        assert_eq!(ws.wave_width(), 4);
    }

    #[test]
    fn tail_wave_is_partial() {
        let order: Vec<u32> = (0..10).collect();
        let ws = WaveSchedule::new(&order, 4);
        assert_eq!(ws.num_waves(), 3);
        assert_eq!(ws.wave(2).len(), 2);
    }

    #[test]
    fn wave_of_inverts_waves() {
        let grid = TileGrid::new(256, 512, TileShape::new(64, 64));
        let order = Swizzle::Strip { width: 2 }.issue_order(&grid);
        let ws = WaveSchedule::new(&order, 7);
        for w in 0..ws.num_waves() {
            for &t in ws.wave(w) {
                assert_eq!(ws.wave_of(t), w);
            }
        }
    }

    #[test]
    fn waves_partition_all_tiles() {
        let order: Vec<u32> = (0..37).rev().collect();
        let ws = WaveSchedule::new(&order, 8);
        let total: usize = ws.waves().iter().map(Vec::len).sum();
        assert_eq!(total, 37);
        assert_eq!(ws.num_tiles(), 37);
    }

    #[test]
    fn paper_example_four_waves() {
        // Sec. 2.1.1: 512 tiles / 128 SMs = 4 waves.
        assert_eq!(wave_count(512, 128), 4);
        // Sec. 4.1.2: 1024 tiles on 128 SMs gives 8 waves.
        assert_eq!(wave_count(1024, 128), 8);
    }

    #[test]
    fn wave_count_rounds_up() {
        assert_eq!(wave_count(129, 128), 2);
        assert_eq!(wave_count(1, 128), 1);
    }
}
