//! Output-tile geometry for tiled GEMM.

/// The shape of one output tile (threadblock tile) in a GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileShape {
    /// Tile rows (along M).
    pub m: u32,
    /// Tile columns (along N).
    pub n: u32,
}

impl TileShape {
    /// Creates a tile shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub const fn new(m: u32, n: u32) -> Self {
        assert!(m > 0 && n > 0, "tile dimensions must be positive");
        TileShape { m, n }
    }

    /// Elements in a full tile.
    pub const fn elems(&self) -> u64 {
        self.m as u64 * self.n as u64
    }
}

/// The partition of an `M x N` output matrix into tiles.
///
/// Tiles are identified by their *address-order* index: row-major over the
/// `(tiles_m, tiles_n)` grid, i.e. tile `t` covers rows
/// `(t / tiles_n) * tile.m ..` and columns `(t % tiles_n) * tile.n ..`.
/// Edge tiles may be partial when the matrix dimensions are not multiples
/// of the tile shape.
///
/// # Examples
///
/// ```
/// use gpu_sim::{TileGrid, TileShape};
///
/// let grid = TileGrid::new(256, 384, TileShape::new(128, 128));
/// assert_eq!((grid.tiles_m(), grid.tiles_n()), (2, 3));
/// assert_eq!(grid.num_tiles(), 6);
/// assert_eq!(grid.rows_of(4), 128..256);
/// assert_eq!(grid.cols_of(4), 128..256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    m: u32,
    n: u32,
    tile: TileShape,
    tiles_m: u32,
    tiles_n: u32,
}

impl TileGrid {
    /// Partitions an `m x n` output into tiles of shape `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `m` or `n` is zero.
    pub fn new(m: u32, n: u32, tile: TileShape) -> Self {
        assert!(m > 0 && n > 0, "matrix dimensions must be positive");
        TileGrid {
            m,
            n,
            tile,
            tiles_m: m.div_ceil(tile.m),
            tiles_n: n.div_ceil(tile.n),
        }
    }

    /// Output rows (M).
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Output columns (N).
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The tile shape.
    pub fn tile(&self) -> TileShape {
        self.tile
    }

    /// Tiles along M.
    pub fn tiles_m(&self) -> u32 {
        self.tiles_m
    }

    /// Tiles along N.
    pub fn tiles_n(&self) -> u32 {
        self.tiles_n
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> u32 {
        self.tiles_m * self.tiles_n
    }

    /// Grid row of tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn tile_row(&self, t: u32) -> u32 {
        assert!(t < self.num_tiles(), "tile {t} out of range");
        t / self.tiles_n
    }

    /// Grid column of tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn tile_col(&self, t: u32) -> u32 {
        assert!(t < self.num_tiles(), "tile {t} out of range");
        t % self.tiles_n
    }

    /// Tile index at grid position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range.
    pub fn tile_at(&self, row: u32, col: u32) -> u32 {
        assert!(
            row < self.tiles_m && col < self.tiles_n,
            "tile position ({row}, {col}) out of range"
        );
        row * self.tiles_n + col
    }

    /// The matrix-row range tile `t` covers (clipped at the matrix edge).
    pub fn rows_of(&self, t: u32) -> std::ops::Range<u32> {
        let r0 = self.tile_row(t) * self.tile.m;
        r0..(r0 + self.tile.m).min(self.m)
    }

    /// The matrix-column range tile `t` covers (clipped at the edge).
    pub fn cols_of(&self, t: u32) -> std::ops::Range<u32> {
        let c0 = self.tile_col(t) * self.tile.n;
        c0..(c0 + self.tile.n).min(self.n)
    }

    /// Actual element count of tile `t` (smaller for edge tiles).
    pub fn tile_elems(&self, t: u32) -> u64 {
        let rows = self.rows_of(t);
        let cols = self.cols_of(t);
        (rows.end - rows.start) as u64 * (cols.end - cols.start) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_partition() {
        let g = TileGrid::new(512, 1024, TileShape::new(128, 256));
        assert_eq!(g.tiles_m(), 4);
        assert_eq!(g.tiles_n(), 4);
        assert_eq!(g.num_tiles(), 16);
        for t in 0..16 {
            assert_eq!(g.tile_elems(t), 128 * 256);
        }
    }

    #[test]
    fn ragged_partition_clips_edges() {
        let g = TileGrid::new(300, 200, TileShape::new(128, 128));
        assert_eq!(g.tiles_m(), 3);
        assert_eq!(g.tiles_n(), 2);
        // Bottom-right tile covers 44 rows x 72 cols.
        let last = g.num_tiles() - 1;
        assert_eq!(g.rows_of(last), 256..300);
        assert_eq!(g.cols_of(last), 128..200);
        assert_eq!(g.tile_elems(last), 44 * 72);
    }

    #[test]
    fn total_elems_equal_matrix_elems() {
        let g = TileGrid::new(300, 200, TileShape::new(128, 128));
        let total: u64 = (0..g.num_tiles()).map(|t| g.tile_elems(t)).sum();
        assert_eq!(total, 300 * 200);
    }

    #[test]
    fn index_roundtrip() {
        let g = TileGrid::new(512, 512, TileShape::new(128, 128));
        for t in 0..g.num_tiles() {
            assert_eq!(g.tile_at(g.tile_row(t), g.tile_col(t)), t);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_row_out_of_range_panics() {
        let g = TileGrid::new(128, 128, TileShape::new(128, 128));
        let _ = g.tile_row(1);
    }

    #[test]
    fn single_tile_grid() {
        let g = TileGrid::new(64, 64, TileShape::new(128, 128));
        assert_eq!(g.num_tiles(), 1);
        assert_eq!(g.tile_elems(0), 64 * 64);
    }
}
