//! Simulated device memory.

/// Identifies a buffer in one device's memory.
pub type BufferId = usize;

/// One device's memory: a set of `f32` buffers.
///
/// In *functional* mode buffers hold real data so correctness can be
/// verified; in *timing* mode only lengths are tracked, keeping large
/// benchmark shapes cheap. Mixing the modes up is a programming error, so
/// data access in timing mode panics rather than returning fake data.
#[derive(Debug)]
pub struct Memory {
    buffers: Vec<Buffer>,
    functional: bool,
}

#[derive(Debug)]
struct Buffer {
    len: usize,
    data: Vec<f32>,
}

impl Memory {
    /// Creates an empty memory in the given mode.
    pub fn new(functional: bool) -> Self {
        Memory {
            buffers: Vec::new(),
            functional,
        }
    }

    /// Whether buffers carry real data.
    pub fn functional(&self) -> bool {
        self.functional
    }

    /// Allocates a zero-initialized buffer of `len` elements.
    pub fn alloc(&mut self, len: usize) -> BufferId {
        let data = if self.functional {
            vec![0.0; len]
        } else {
            Vec::new()
        };
        self.buffers.push(Buffer { len, data });
        self.buffers.len() - 1
    }

    /// Total elements allocated across all buffers (capacity accounting:
    /// reordered/receive buffers are extra device memory the design
    /// costs, like the real system's staging buffers).
    pub fn elems_allocated(&self) -> usize {
        self.buffers.iter().map(|b| b.len).sum()
    }

    /// Allocates a buffer initialized with `data` (functional mode), or a
    /// length-only buffer (timing mode).
    pub fn alloc_init(&mut self, data: &[f32]) -> BufferId {
        let id = self.alloc(data.len());
        if self.functional {
            self.buffers[id].data.copy_from_slice(data);
        }
        id
    }

    /// Number of buffers allocated.
    pub fn num_buffers(&self) -> usize {
        self.buffers.len()
    }

    /// Element length of a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    pub fn len_of(&self, id: BufferId) -> usize {
        self.buffers[id].len
    }

    /// Borrows a buffer's contents.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid or the memory is in timing mode.
    pub fn data(&self, id: BufferId) -> &[f32] {
        assert!(
            self.functional,
            "buffer data access in timing-only mode (buffer {id})"
        );
        &self.buffers[id].data
    }

    /// Mutably borrows a buffer's contents.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid or the memory is in timing mode.
    pub fn data_mut(&mut self, id: BufferId) -> &mut [f32] {
        assert!(
            self.functional,
            "buffer data access in timing-only mode (buffer {id})"
        );
        &mut self.buffers[id].data
    }

    /// Copies `src` into the buffer.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch, invalid id, or timing mode.
    pub fn write(&mut self, id: BufferId, src: &[f32]) {
        let dst = self.data_mut(id);
        assert_eq!(
            dst.len(),
            src.len(),
            "write length mismatch on buffer {id}: {} vs {}",
            dst.len(),
            src.len()
        );
        dst.copy_from_slice(src);
    }

    /// Returns a copy of the buffer's contents.
    ///
    /// # Panics
    ///
    /// Panics if `id` is invalid or the memory is in timing mode.
    pub fn snapshot(&self, id: BufferId) -> Vec<f32> {
        self.data(id).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_alloc_zeroes() {
        let mut mem = Memory::new(true);
        let id = mem.alloc(8);
        assert_eq!(mem.len_of(id), 8);
        assert!(mem.data(id).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn alloc_init_copies() {
        let mut mem = Memory::new(true);
        let id = mem.alloc_init(&[1.0, 2.0, 3.0]);
        assert_eq!(mem.data(id), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn timing_mode_tracks_lengths_without_data() {
        let mut mem = Memory::new(false);
        let id = mem.alloc(1 << 24);
        assert_eq!(mem.len_of(id), 1 << 24);
        assert!(!mem.functional());
    }

    #[test]
    #[should_panic(expected = "timing-only mode")]
    fn timing_mode_data_access_panics() {
        let mut mem = Memory::new(false);
        let id = mem.alloc(4);
        let _ = mem.data(id);
    }

    #[test]
    fn write_and_snapshot_roundtrip() {
        let mut mem = Memory::new(true);
        let id = mem.alloc(3);
        mem.write(id, &[4.0, 5.0, 6.0]);
        assert_eq!(mem.snapshot(id), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn write_wrong_length_panics() {
        let mut mem = Memory::new(true);
        let id = mem.alloc(3);
        mem.write(id, &[1.0]);
    }

    #[test]
    fn elems_allocated_accounts_every_buffer() {
        let mut mem = Memory::new(false);
        mem.alloc(10);
        mem.alloc(32);
        assert_eq!(mem.elems_allocated(), 42);
    }

    #[test]
    fn buffer_ids_are_sequential() {
        let mut mem = Memory::new(true);
        assert_eq!(mem.alloc(1), 0);
        assert_eq!(mem.alloc(1), 1);
        assert_eq!(mem.num_buffers(), 2);
    }
}
