//! The multi-GPU world.

use std::rc::Rc;

use sim::{DetRng, Trace};

use crate::arch::GpuArch;
use crate::device::{Device, DeviceId};
use crate::monitor::ClusterMonitor;

/// One tile's completion record (Fig. 2 raw data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileCompletion {
    /// Device the tile ran on.
    pub device: DeviceId,
    /// Address-order tile index.
    pub tile: u32,
    /// Runtime wave the tile completed in.
    pub wave: u32,
}

/// Structured metadata a kernel attaches to its [`OpSpan`] at the source
/// (via [`crate::stream::Kernel::span_meta`]), so trace exporters never
/// reverse-engineer kernel names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanMeta {
    /// No metadata (control ops, delays, callbacks).
    #[default]
    None,
    /// A GEMM kernel: its grid's tile and wave totals.
    Gemm {
        /// Total output tiles in the grid.
        tiles: u32,
        /// Contended wave count of the grid.
        waves: u32,
    },
    /// A collective (or peer copy): bytes it moves per rank, and the
    /// signal group it serves when launched by the overlap runtime.
    Collective {
        /// Per-rank payload bytes.
        bytes: u64,
        /// Signal group index, if the collective is group-tagged.
        group: Option<usize>,
    },
}

/// One completed stream operation, for timeline rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpan {
    /// Device the op ran on.
    pub device: DeviceId,
    /// Stream the op occupied.
    pub stream: usize,
    /// Kernel name (from [`crate::stream::Kernel::name`]).
    pub name: &'static str,
    /// Source-attached kernel metadata.
    pub meta: SpanMeta,
    /// When the op started occupying the stream.
    pub start: sim::SimTime,
    /// When it completed.
    pub end: sim::SimTime,
}

/// Positive execution-time noise: every kernel draws a multiplicative
/// factor in `[1, 1 + frac)`, modelling clock/DVFS variance and other
/// non-idealities of real hardware. Zero (the default) gives exactly
/// reproducible analytic timing; the evaluation systems enable it so
/// measured latencies sit slightly above model predictions, as on real
/// machines.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NoiseSpec {
    /// Noise fraction for compute kernels.
    pub gemm_frac: f64,
    /// Noise fraction for communication operations.
    pub comm_frac: f64,
}

/// Injected communication-fabric misbehaviour, consumed by collective
/// kernels at rendezvous: a persistent bandwidth-degradation multiplier
/// and a budget of transient stalls (each stall delays one collective).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommFault {
    /// Multiplier (≥ 1) applied to every collective's duration — models a
    /// persistently underdelivering link. Values below 1 are clamped up.
    pub slowdown: f64,
    /// Extra delay added to the next `stall_count` collectives (transient
    /// link stalls: retransmits, congestion bursts).
    pub stall: sim::SimDuration,
    /// How many upcoming collectives the stall still applies to.
    pub stall_count: u32,
    /// Extra multiplier (≥ 1) applied only to collectives whose
    /// communicator spans nodes — a degraded *inter-node* link. Composes
    /// with `slowdown`; single-node collectives never feel it.
    pub inter_slowdown: f64,
}

impl CommFault {
    /// Consumes one stall application, if any remain.
    pub fn take_stall(&mut self) -> Option<sim::SimDuration> {
        if self.stall_count == 0 || self.stall.as_nanos() == 0 {
            return None;
        }
        self.stall_count -= 1;
        Some(self.stall)
    }

    /// The effective duration multiplier (clamped to ≥ 1).
    pub fn slowdown_factor(&self) -> f64 {
        self.slowdown.max(1.0)
    }

    /// The extra multiplier for node-spanning collectives (clamped to
    /// ≥ 1).
    pub fn inter_slowdown_factor(&self) -> f64 {
        self.inter_slowdown.max(1.0)
    }
}

/// One blocked signal wait, with the full counter context: which rank is
/// stuck, on which table slot, and how far the count is from the unmet
/// threshold. Produced by [`Cluster::stuck_waits`] for deadlock
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckWait {
    /// The blocked rank (device id).
    pub device: DeviceId,
    /// The stream whose signal wait is parked.
    pub stream: usize,
    /// Counting-table index on the device.
    pub table: usize,
    /// The starved group slot.
    pub group: usize,
    /// The count the slot actually reached.
    pub count: u32,
    /// The threshold the wait needs (never met).
    pub threshold: u32,
}

impl std::fmt::Display for StuckWait {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} stream {} blocked on counter table {} group {}: count {} < threshold {}",
            self.device, self.stream, self.table, self.group, self.count, self.threshold
        )
    }
}

/// The simulation world: a homogeneous multi-GPU server.
///
/// `Cluster` is the `W` type of [`sim::Sim`]; every kernel and collective
/// in the reproduction executes as events against it.
pub struct Cluster {
    /// The devices, indexed by rank.
    pub devices: Vec<Device>,
    /// Whether buffers carry real data (functional mode) or only lengths
    /// (timing mode).
    pub functional: bool,
    /// Optional per-tile completion trace (enable for Fig. 2).
    pub tile_trace: Option<Trace<TileCompletion>>,
    /// Execution-time noise (off by default).
    pub noise: NoiseSpec,
    /// Optional per-stream operation spans (enable for timeline
    /// rendering).
    pub op_spans: Option<Vec<OpSpan>>,
    /// Optional access/synchronization observer (see [`ClusterMonitor`]).
    pub monitor: Option<Rc<dyn ClusterMonitor>>,
    /// Injected communication-fabric faults (none by default).
    pub comm_fault: CommFault,
    /// Device → node placement map (all zeros for a single-node box).
    /// Filled in by the topology-aware cluster builders; gpu-sim itself
    /// never interprets it, but telemetry and serving read it to label
    /// devices and place replicas.
    pub node_of: Vec<usize>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("devices", &self.devices.len())
            .field("functional", &self.functional)
            .field("noise", &self.noise)
            .field("monitor", &self.monitor.is_some())
            .finish()
    }
}

impl Cluster {
    /// Creates a cluster of `n` identical devices.
    ///
    /// Per-device randomness is forked deterministically from `seed`, so
    /// equal seeds give bit-identical simulations.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, arch: GpuArch, functional: bool, seed: u64) -> Self {
        assert!(n > 0, "cluster needs at least one device");
        let root = DetRng::new(seed);
        let devices = (0..n)
            .map(|id| Device::new(id, arch.clone(), functional, root.fork(id as u64 + 1)))
            .collect();
        Cluster {
            devices,
            functional,
            tile_trace: None,
            noise: NoiseSpec::default(),
            op_spans: None,
            monitor: None,
            comm_fault: CommFault::default(),
            node_of: vec![0; n],
        }
    }

    /// Records the device → node placement (one entry per device).
    ///
    /// # Panics
    ///
    /// Panics if the map's length differs from the device count.
    pub fn set_node_map(&mut self, node_of: Vec<usize>) {
        assert_eq!(
            node_of.len(),
            self.devices.len(),
            "node map needs one entry per device"
        );
        self.node_of = node_of;
    }

    /// Attaches an access/synchronization observer.
    pub fn set_monitor(&mut self, monitor: Rc<dyn ClusterMonitor>) {
        self.monitor = Some(monitor);
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Immutable access to a device.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id]
    }

    /// Mutable access to a device.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id]
    }

    /// Turns on per-tile completion tracing.
    pub fn enable_tile_trace(&mut self) {
        self.tile_trace = Some(Trace::new());
    }

    /// Turns on per-stream operation span recording.
    pub fn enable_op_spans(&mut self) {
        self.op_spans = Some(Vec::new());
    }

    /// Reports `device`'s SM-occupancy totals to the monitor, if one is
    /// attached. Kernels call this right after an `occupy_*`/`release_*`
    /// edge so telemetry sees every occupancy change.
    pub fn notify_sm_occupancy(&self, at: sim::SimTime, device: DeviceId) {
        if let Some(monitor) = &self.monitor {
            let dev = &self.devices[device];
            monitor.on_sm_occupancy(at, device, dev.compute_sms(), dev.comm_sms());
        }
    }

    /// Every signal wait still parked on a counting table, with its full
    /// counter context (blocked rank, group, reached count, unmet
    /// threshold). After the event queue drains, each entry is a wait
    /// whose threshold can never be met — the precise cause behind a
    /// wedged stream that [`Cluster::check_quiescent`] reports.
    pub fn stuck_waits(&self) -> Vec<StuckWait> {
        let mut waits = Vec::new();
        for device in &self.devices {
            for (table, counters) in device.counter_tables() {
                for waiter in counters.parked_waiters() {
                    waits.push(StuckWait {
                        device: waiter.completion.device(),
                        stream: waiter.completion.stream(),
                        table,
                        group: waiter.group,
                        count: counters.count(waiter.group),
                        threshold: waiter.threshold,
                    });
                }
            }
        }
        waits
    }

    /// Checks that every stream has drained: no in-flight or queued
    /// operations remain.
    ///
    /// A simulation whose event queue empties while streams still hold
    /// work is *deadlocked* — typically a collective some rank never
    /// reached, or a counter threshold that can never be met. Call this
    /// after `sim.run` to turn silent hangs into diagnosable errors.
    ///
    /// # Errors
    ///
    /// Returns one line per wedged stream, naming the in-flight op — and,
    /// when the wedge is a starved signal wait, the blocked rank, counter
    /// group, reached count, and unmet threshold.
    pub fn check_quiescent(&self) -> Result<(), Vec<String>> {
        let stuck_waits = self.stuck_waits();
        let mut stuck = Vec::new();
        for device in &self.devices {
            for (sid, stream) in device.streams.iter().enumerate() {
                if stream.busy || !stream.queue.is_empty() {
                    let what = stream
                        .current
                        .map(|(name, _, _)| name)
                        .unwrap_or("queued work");
                    let mut line = format!(
                        "device {} stream {sid}: {} in flight, {} queued ({what})",
                        device.id,
                        u32::from(stream.busy),
                        stream.queue.len(),
                    );
                    if let Some(wait) = stuck_waits
                        .iter()
                        .find(|w| w.device == device.id && w.stream == sid)
                    {
                        line = format!("{line} — {wait}");
                    }
                    stuck.push(line);
                }
            }
        }
        if stuck.is_empty() {
            Ok(())
        } else {
            Err(stuck)
        }
    }

    /// Drops every not-yet-launched kernel queued on `(device, stream)`
    /// and returns how many were discarded. The NCCL `commAbort` analog
    /// for the watchdog: queued kernels have no completion token yet, so
    /// discarding them is safe; an *in-flight* op is untouched.
    ///
    /// # Panics
    ///
    /// Panics if the device or stream does not exist.
    pub fn abort_stream_queue(&mut self, device: DeviceId, stream: usize) -> usize {
        let queue = &mut self.devices[device].streams[stream].queue;
        let dropped = queue.len();
        queue.clear();
        dropped
    }

    /// Reports a fault/recovery occurrence to the monitor, if one is
    /// attached (see [`crate::monitor::RuntimeEvent`]).
    pub fn notify_runtime_event(&self, event: &crate::monitor::RuntimeEvent) {
        if let Some(monitor) = &self.monitor {
            monitor.on_runtime_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_get_distinct_rngs() {
        let mut c = Cluster::new(2, GpuArch::a800(), false, 7);
        let a = c.devices[0].rng.next_u64();
        let b = c.devices[1].rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_same_cluster_randomness() {
        let mut c1 = Cluster::new(2, GpuArch::a800(), false, 7);
        let mut c2 = Cluster::new(2, GpuArch::a800(), false, 7);
        assert_eq!(c1.devices[1].rng.next_u64(), c2.devices[1].rng.next_u64());
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut c = Cluster::new(1, GpuArch::rtx4090(), false, 1);
        assert!(c.tile_trace.is_none());
        c.enable_tile_trace();
        assert!(c.tile_trace.is_some());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cluster_panics() {
        let _ = Cluster::new(0, GpuArch::rtx4090(), false, 1);
    }

    #[test]
    fn stuck_wait_diagnostic_names_rank_group_count_threshold() {
        use crate::stream::{enqueue, WaitCounter};
        let mut c = Cluster::new(2, GpuArch::rtx4090(), false, 1);
        let mut sim: crate::ClusterSim = sim::Sim::new();
        let s = c.devices[1].create_stream();
        let table = c.devices[1].create_counter(3);
        c.devices[1].counters[table].increment(2, 4);
        enqueue(
            &mut c,
            &mut sim,
            1,
            s,
            Box::new(WaitCounter {
                table,
                group: 2,
                threshold: 9,
            }),
        );
        sim.run(&mut c).unwrap();
        let waits = c.stuck_waits();
        assert_eq!(
            waits,
            vec![StuckWait {
                device: 1,
                stream: s,
                table,
                group: 2,
                count: 4,
                threshold: 9,
            }]
        );
        let stuck = c.check_quiescent().unwrap_err();
        assert_eq!(stuck.len(), 1);
        assert!(
            stuck[0].contains("rank 1")
                && stuck[0].contains("group 2")
                && stuck[0].contains("count 4")
                && stuck[0].contains("threshold 9"),
            "diagnostic missing counter context: {stuck:?}"
        );
    }

    #[test]
    fn abort_stream_queue_discards_queued_work_only() {
        use crate::stream::{enqueue, Delay, WaitEvent};
        let mut c = Cluster::new(1, GpuArch::rtx4090(), false, 1);
        let mut sim: crate::ClusterSim = sim::Sim::new();
        let s = c.devices[0].create_stream();
        let ev = c.devices[0].create_event();
        enqueue(&mut c, &mut sim, 0, s, Box::new(WaitEvent(ev)));
        enqueue(
            &mut c,
            &mut sim,
            0,
            s,
            Box::new(Delay(sim::SimDuration::from_nanos(5))),
        );
        sim.run(&mut c).unwrap();
        // The wait is in flight (wedged); only the delay is queued.
        assert_eq!(c.abort_stream_queue(0, s), 1);
        assert!(c.check_quiescent().is_err(), "in-flight op untouched");
    }

    #[test]
    fn comm_fault_stall_budget_is_consumed() {
        let mut fault = CommFault {
            slowdown: 0.5,
            stall: sim::SimDuration::from_nanos(100),
            stall_count: 2,
            inter_slowdown: 0.0,
        };
        assert_eq!(fault.slowdown_factor(), 1.0, "slowdown clamps to >= 1");
        assert_eq!(fault.inter_slowdown_factor(), 1.0, "inter clamps to >= 1");
        assert!(fault.take_stall().is_some());
        assert!(fault.take_stall().is_some());
        assert!(fault.take_stall().is_none());
    }

    #[test]
    fn quiescence_detects_wedged_streams() {
        use crate::stream::{enqueue, WaitEvent};
        let mut c = Cluster::new(1, GpuArch::rtx4090(), false, 1);
        let mut sim: crate::ClusterSim = sim::Sim::new();
        let s = c.devices[0].create_stream();
        let ev = c.devices[0].create_event();
        assert!(c.check_quiescent().is_ok());
        // Wait on an event nobody ever records: the queue drains with the
        // stream wedged.
        enqueue(&mut c, &mut sim, 0, s, Box::new(WaitEvent(ev)));
        sim.run(&mut c).unwrap();
        let stuck = c.check_quiescent().unwrap_err();
        assert_eq!(stuck.len(), 1);
        assert!(stuck[0].contains("device 0 stream 0"), "{stuck:?}");
    }
}
