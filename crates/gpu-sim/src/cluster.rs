//! The multi-GPU world.

use std::rc::Rc;

use sim::{DetRng, Trace};

use crate::arch::GpuArch;
use crate::device::{Device, DeviceId};
use crate::monitor::ClusterMonitor;

/// One tile's completion record (Fig. 2 raw data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileCompletion {
    /// Device the tile ran on.
    pub device: DeviceId,
    /// Address-order tile index.
    pub tile: u32,
    /// Runtime wave the tile completed in.
    pub wave: u32,
}

/// Structured metadata a kernel attaches to its [`OpSpan`] at the source
/// (via [`crate::stream::Kernel::span_meta`]), so trace exporters never
/// reverse-engineer kernel names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanMeta {
    /// No metadata (control ops, delays, callbacks).
    #[default]
    None,
    /// A GEMM kernel: its grid's tile and wave totals.
    Gemm {
        /// Total output tiles in the grid.
        tiles: u32,
        /// Contended wave count of the grid.
        waves: u32,
    },
    /// A collective (or peer copy): bytes it moves per rank, and the
    /// signal group it serves when launched by the overlap runtime.
    Collective {
        /// Per-rank payload bytes.
        bytes: u64,
        /// Signal group index, if the collective is group-tagged.
        group: Option<usize>,
    },
}

/// One completed stream operation, for timeline rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpan {
    /// Device the op ran on.
    pub device: DeviceId,
    /// Stream the op occupied.
    pub stream: usize,
    /// Kernel name (from [`crate::stream::Kernel::name`]).
    pub name: &'static str,
    /// Source-attached kernel metadata.
    pub meta: SpanMeta,
    /// When the op started occupying the stream.
    pub start: sim::SimTime,
    /// When it completed.
    pub end: sim::SimTime,
}

/// Positive execution-time noise: every kernel draws a multiplicative
/// factor in `[1, 1 + frac)`, modelling clock/DVFS variance and other
/// non-idealities of real hardware. Zero (the default) gives exactly
/// reproducible analytic timing; the evaluation systems enable it so
/// measured latencies sit slightly above model predictions, as on real
/// machines.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NoiseSpec {
    /// Noise fraction for compute kernels.
    pub gemm_frac: f64,
    /// Noise fraction for communication operations.
    pub comm_frac: f64,
}

/// The simulation world: a homogeneous multi-GPU server.
///
/// `Cluster` is the `W` type of [`sim::Sim`]; every kernel and collective
/// in the reproduction executes as events against it.
pub struct Cluster {
    /// The devices, indexed by rank.
    pub devices: Vec<Device>,
    /// Whether buffers carry real data (functional mode) or only lengths
    /// (timing mode).
    pub functional: bool,
    /// Optional per-tile completion trace (enable for Fig. 2).
    pub tile_trace: Option<Trace<TileCompletion>>,
    /// Execution-time noise (off by default).
    pub noise: NoiseSpec,
    /// Optional per-stream operation spans (enable for timeline
    /// rendering).
    pub op_spans: Option<Vec<OpSpan>>,
    /// Optional access/synchronization observer (see [`ClusterMonitor`]).
    pub monitor: Option<Rc<dyn ClusterMonitor>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("devices", &self.devices.len())
            .field("functional", &self.functional)
            .field("noise", &self.noise)
            .field("monitor", &self.monitor.is_some())
            .finish()
    }
}

impl Cluster {
    /// Creates a cluster of `n` identical devices.
    ///
    /// Per-device randomness is forked deterministically from `seed`, so
    /// equal seeds give bit-identical simulations.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, arch: GpuArch, functional: bool, seed: u64) -> Self {
        assert!(n > 0, "cluster needs at least one device");
        let root = DetRng::new(seed);
        let devices = (0..n)
            .map(|id| Device::new(id, arch.clone(), functional, root.fork(id as u64 + 1)))
            .collect();
        Cluster {
            devices,
            functional,
            tile_trace: None,
            noise: NoiseSpec::default(),
            op_spans: None,
            monitor: None,
        }
    }

    /// Attaches an access/synchronization observer.
    pub fn set_monitor(&mut self, monitor: Rc<dyn ClusterMonitor>) {
        self.monitor = Some(monitor);
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Immutable access to a device.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id]
    }

    /// Mutable access to a device.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id]
    }

    /// Turns on per-tile completion tracing.
    pub fn enable_tile_trace(&mut self) {
        self.tile_trace = Some(Trace::new());
    }

    /// Turns on per-stream operation span recording.
    pub fn enable_op_spans(&mut self) {
        self.op_spans = Some(Vec::new());
    }

    /// Reports `device`'s SM-occupancy totals to the monitor, if one is
    /// attached. Kernels call this right after an `occupy_*`/`release_*`
    /// edge so telemetry sees every occupancy change.
    pub fn notify_sm_occupancy(&self, at: sim::SimTime, device: DeviceId) {
        if let Some(monitor) = &self.monitor {
            let dev = &self.devices[device];
            monitor.on_sm_occupancy(at, device, dev.compute_sms(), dev.comm_sms());
        }
    }

    /// Checks that every stream has drained: no in-flight or queued
    /// operations remain.
    ///
    /// A simulation whose event queue empties while streams still hold
    /// work is *deadlocked* — typically a collective some rank never
    /// reached, or a counter threshold that can never be met. Call this
    /// after `sim.run` to turn silent hangs into diagnosable errors.
    ///
    /// # Errors
    ///
    /// Returns one line per wedged stream, naming the in-flight op.
    pub fn check_quiescent(&self) -> Result<(), Vec<String>> {
        let mut stuck = Vec::new();
        for device in &self.devices {
            for (sid, stream) in device.streams.iter().enumerate() {
                if stream.busy || !stream.queue.is_empty() {
                    let what = stream
                        .current
                        .map(|(name, _, _)| name)
                        .unwrap_or("queued work");
                    stuck.push(format!(
                        "device {} stream {sid}: {} in flight, {} queued ({what})",
                        device.id,
                        u32::from(stream.busy),
                        stream.queue.len(),
                    ));
                }
            }
        }
        if stuck.is_empty() {
            Ok(())
        } else {
            Err(stuck)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_get_distinct_rngs() {
        let mut c = Cluster::new(2, GpuArch::a800(), false, 7);
        let a = c.devices[0].rng.next_u64();
        let b = c.devices[1].rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_same_cluster_randomness() {
        let mut c1 = Cluster::new(2, GpuArch::a800(), false, 7);
        let mut c2 = Cluster::new(2, GpuArch::a800(), false, 7);
        assert_eq!(c1.devices[1].rng.next_u64(), c2.devices[1].rng.next_u64());
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut c = Cluster::new(1, GpuArch::rtx4090(), false, 1);
        assert!(c.tile_trace.is_none());
        c.enable_tile_trace();
        assert!(c.tile_trace.is_some());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cluster_panics() {
        let _ = Cluster::new(0, GpuArch::rtx4090(), false, 1);
    }

    #[test]
    fn quiescence_detects_wedged_streams() {
        use crate::stream::{enqueue, WaitEvent};
        let mut c = Cluster::new(1, GpuArch::rtx4090(), false, 1);
        let mut sim: crate::ClusterSim = sim::Sim::new();
        let s = c.devices[0].create_stream();
        let ev = c.devices[0].create_event();
        assert!(c.check_quiescent().is_ok());
        // Wait on an event nobody ever records: the queue drains with the
        // stream wedged.
        enqueue(&mut c, &mut sim, 0, s, Box::new(WaitEvent(ev)));
        sim.run(&mut c).unwrap();
        let stuck = c.check_quiescent().unwrap_err();
        assert_eq!(stuck.len(), 1);
        assert!(stuck[0].contains("device 0 stream 0"), "{stuck:?}");
    }
}
