//! A single simulated GPU.

use sim::{DetRng, SimDuration};

use crate::arch::GpuArch;
use crate::counter::CounterTable;
use crate::memory::Memory;
use crate::stream::{GpuEvent, Stream, StreamId};

/// Identifies a device within a cluster (== its rank).
pub type DeviceId = usize;

/// A simulated GPU: architecture, memory, streams, events, counting
/// tables, and the SM-occupancy ledger communication kernels use.
#[derive(Debug)]
pub struct Device {
    /// The device id (cluster rank).
    pub id: DeviceId,
    /// Architecture model.
    pub arch: GpuArch,
    /// Device memory.
    pub mem: Memory,
    pub(crate) streams: Vec<Stream>,
    pub(crate) events: Vec<GpuEvent>,
    pub(crate) counters: Vec<CounterTable>,
    comm_sms: u32,
    compute_sms: u32,
    /// Deterministic per-device randomness (tile jitter, poll phase).
    pub rng: DetRng,
}

impl Device {
    /// Minimum SMs always left to compute kernels even under heavy
    /// communication occupancy: 1/16 of the machine, at least one.
    pub fn min_compute_sms(sm_count: u32) -> u32 {
        (sm_count / 16).max(1)
    }

    /// Creates a device.
    pub fn new(id: DeviceId, arch: GpuArch, functional: bool, rng: DetRng) -> Self {
        Device {
            id,
            arch,
            mem: Memory::new(functional),
            streams: Vec::new(),
            events: Vec::new(),
            counters: Vec::new(),
            comm_sms: 0,
            compute_sms: 0,
            rng,
        }
    }

    /// Creates a new stream and returns its id.
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.push(Stream::default());
        self.streams.len() - 1
    }

    /// Creates a new synchronization event and returns its id.
    pub fn create_event(&mut self) -> usize {
        self.events.push(GpuEvent::default());
        self.events.len() - 1
    }

    /// Creates a counting table with `groups` slots and returns its index.
    pub fn create_counter(&mut self, groups: usize) -> usize {
        self.counters.push(CounterTable::new(groups));
        self.counters.len() - 1
    }

    /// Immutable access to a counting table.
    ///
    /// # Panics
    ///
    /// Panics if the table does not exist.
    pub fn counter(&self, table: usize) -> &CounterTable {
        &self.counters[table]
    }

    /// Iterates over the device's counting tables with their indices
    /// (post-run inspection, e.g. for lost-signal diagnosis).
    pub fn counter_tables(&self) -> impl Iterator<Item = (usize, &CounterTable)> {
        self.counters.iter().enumerate()
    }

    /// Mutable access to a counting table (fault-injection hook: arming
    /// dropped/delayed increments before a run).
    ///
    /// # Panics
    ///
    /// Panics if the table does not exist.
    pub fn counter_mut(&mut self, table: usize) -> &mut CounterTable {
        &mut self.counters[table]
    }

    /// SMs currently available to compute kernels: total minus those held
    /// by communication kernels, floored at [`Device::min_compute_sms`].
    pub fn avail_sms(&self) -> u32 {
        (self.arch.sm_count.saturating_sub(self.comm_sms))
            .max(Self::min_compute_sms(self.arch.sm_count))
    }

    /// SMs a *new* compute wave can claim right now: total minus
    /// communication SMs minus SMs other in-flight compute waves hold,
    /// floored at [`Device::min_compute_sms`] (kernels time-share when
    /// oversubscribed rather than starving).
    pub fn avail_sms_for_compute(&self) -> u32 {
        (self
            .arch
            .sm_count
            .saturating_sub(self.comm_sms)
            .saturating_sub(self.compute_sms))
        .max(Self::min_compute_sms(self.arch.sm_count))
    }

    /// SMs currently held by in-flight compute waves.
    pub fn compute_sms(&self) -> u32 {
        self.compute_sms
    }

    /// Marks `n` SMs as held by a compute wave.
    pub fn occupy_compute_sms(&mut self, n: u32) {
        self.compute_sms += n;
    }

    /// Releases `n` compute SMs.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than currently held.
    pub fn release_compute_sms(&mut self, n: u32) {
        assert!(
            n <= self.compute_sms,
            "releasing {n} compute SMs but only {} held",
            self.compute_sms
        );
        self.compute_sms -= n;
    }

    /// SMs currently held by communication kernels.
    pub fn comm_sms(&self) -> u32 {
        self.comm_sms
    }

    /// Marks `n` SMs as held by a communication kernel (NCCL-style
    /// kernels occupy a constant SM count, §4.2.1; communication has
    /// priority, §4.1.4).
    pub fn occupy_comm_sms(&mut self, n: u32) {
        self.comm_sms += n;
    }

    /// Releases `n` communication SMs.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than currently held.
    pub fn release_comm_sms(&mut self, n: u32) {
        assert!(
            n <= self.comm_sms,
            "releasing {n} comm SMs but only {} held",
            self.comm_sms
        );
        self.comm_sms -= n;
    }

    /// A randomized polling delay of the signaling kernel: the counter is
    /// observed up to one polling quantum after it reaches the threshold.
    pub fn signal_poll_delay(&mut self) -> SimDuration {
        let ns = self.rng.uniform(0.0, self.arch.signal_poll_ns as f64);
        SimDuration::from_nanos(ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::new(0, GpuArch::rtx4090(), false, DetRng::new(1))
    }

    #[test]
    fn resource_ids_are_sequential() {
        let mut d = device();
        assert_eq!(d.create_stream(), 0);
        assert_eq!(d.create_stream(), 1);
        assert_eq!(d.create_event(), 0);
        assert_eq!(d.create_counter(4), 0);
        assert_eq!(d.counter(0).num_groups(), 4);
    }

    #[test]
    fn comm_sm_ledger() {
        let mut d = device();
        assert_eq!(d.avail_sms(), 128);
        d.occupy_comm_sms(16);
        assert_eq!(d.avail_sms(), 112);
        assert_eq!(d.comm_sms(), 16);
        d.occupy_comm_sms(16);
        assert_eq!(d.avail_sms(), 96);
        d.release_comm_sms(32);
        assert_eq!(d.avail_sms(), 128);
    }

    #[test]
    fn compute_ledger_shares_the_machine() {
        let mut d = device();
        assert_eq!(d.avail_sms_for_compute(), 128);
        d.occupy_compute_sms(100);
        assert_eq!(d.avail_sms_for_compute(), 28);
        d.occupy_comm_sms(16);
        assert_eq!(d.avail_sms_for_compute(), 12);
        d.occupy_compute_sms(12);
        // Oversubscribed: time-sharing floor applies.
        assert_eq!(d.avail_sms_for_compute(), Device::min_compute_sms(128));
        d.release_compute_sms(112);
        d.release_comm_sms(16);
        assert_eq!(d.avail_sms_for_compute(), 128);
    }

    #[test]
    fn avail_sms_floors_under_oversubscription() {
        let mut d = device();
        d.occupy_comm_sms(1000);
        assert_eq!(d.avail_sms(), Device::min_compute_sms(128));
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut d = device();
        d.release_comm_sms(1);
    }

    #[test]
    fn poll_delay_is_bounded() {
        let mut d = device();
        for _ in 0..100 {
            let delay = d.signal_poll_delay();
            assert!(delay.as_nanos() < d.arch.signal_poll_ns);
        }
    }
}
